#include "src/cli/driver.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/workload/campus.h"
#include "src/workload/trace.h"

namespace webcc {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult RunCli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = RunCliDriver(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

TEST(CliDriverTest, HelpPrintsUsage) {
  const CliResult result = RunCli({"--help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("--workload="), std::string::npos);
  EXPECT_NE(result.out.find("--policy="), std::string::npos);
  EXPECT_EQ(CliHelpText(), result.out);
}

TEST(CliDriverTest, DefaultRunWorks) {
  // Shrink the Worrell workload so the test stays fast.
  const CliResult result = RunCli({"--files=50", "--days=5", "--rps=0.02"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("workload: worrell"), std::string::npos);
  EXPECT_NE(result.out.find("alex(threshold=10%)"), std::string::npos);
  EXPECT_NE(result.out.find("requests="), std::string::npos);
}

TEST(CliDriverTest, CampusWorkloadAndTtlPolicy) {
  const CliResult result = RunCli({"--workload=fas", "--policy=ttl", "--ttl-hours=100"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("workload: FAS"), std::string::npos);
  EXPECT_NE(result.out.find("ttl(100.0h)"), std::string::npos);
}

TEST(CliDriverTest, InvalidationPolicy) {
  const CliResult result = RunCli({"--workload=fas", "--policy=invalidation"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("stale=0.000%"), std::string::npos);
}

TEST(CliDriverTest, BaseModeAndColdCache) {
  const CliResult result = RunCli(
      {"--files=40", "--days=4", "--rps=0.02", "--mode=base", "--no-preload"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("base retrieval, cold cache"), std::string::npos);
}

TEST(CliDriverTest, SweepPrintsThreeTables) {
  const CliResult result = RunCli({"--workload=fas", "--sweep=ttl"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("Bandwidth"), std::string::npos);
  EXPECT_NE(result.out.find("Miss/stale rates"), std::string::npos);
  EXPECT_NE(result.out.find("Server load"), std::string::npos);
  EXPECT_NE(result.out.find("TTL (hours)"), std::string::npos);
}

TEST(CliDriverTest, CsvSweepWritesFile) {
  const std::string csv = ::testing::TempDir() + "/webcc_cli_sweep.csv";
  const CliResult result = RunCli({"--workload=fas", "--sweep=alex", "--csv=" + csv});
  EXPECT_EQ(result.code, 0) << result.err;
  std::ifstream is(csv);
  EXPECT_TRUE(is.good());
}

TEST(CliDriverTest, TraceFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/webcc_cli_trace.txt";
  const auto generated = GenerateCampusWorkload(CampusServerProfile::Fas());
  ASSERT_TRUE(WriteTraceFile(generated.trace, path));
  const CliResult result =
      RunCli({"--workload=trace", "--trace-file=" + path, "--policy=alex", "--threshold=5"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("workload: FAS"), std::string::npos);
}

TEST(CliDriverTest, ErrorsAreDiagnosed) {
  EXPECT_EQ(RunCli({"--workload=nope"}).code, 2);
  EXPECT_NE(RunCli({"--workload=nope"}).err.find("unknown --workload"), std::string::npos);
  EXPECT_EQ(RunCli({"--policy=nope", "--workload=fas"}).code, 2);
  EXPECT_EQ(RunCli({"--workload=fas", "--mode=sideways"}).code, 2);
  EXPECT_EQ(RunCli({"--workload=trace"}).code, 2);  // missing --trace-file
  EXPECT_EQ(RunCli({"--workload=trace", "--trace-file=/nonexistent"}).code, 2);
  EXPECT_EQ(RunCli({"--workload=fas", "--sweep=sideways"}).code, 2);
  EXPECT_EQ(RunCli({"positional"}).code, 2);
}

TEST(CliDriverTest, SquidPolicyWiresClamps) {
  const CliResult result = RunCli({"--workload=hcs", "--policy=squid", "--threshold=20",
                                   "--min-hours=1", "--max-hours=72"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("alex(threshold=20%)"), std::string::npos);
}

TEST(CliDriverTest, ByTypeFlagPrintsBreakdown) {
  const CliResult result = RunCli({"--workload=hcs", "--policy=alex", "--by-type"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("Per-file-type behaviour"), std::string::npos);
  EXPECT_NE(result.out.find("gif"), std::string::npos);
}

TEST(CliDriverTest, AnalyzeModePrintsStatsWithoutSimulating) {
  const CliResult result = RunCli({"--workload=hcs", "--analyze"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("Mutability statistics"), std::string::npos);
  EXPECT_NE(result.out.find("File-type mix"), std::string::npos);
  // No simulation output.
  EXPECT_EQ(result.out.find("policy:"), std::string::npos);
}

TEST(CliDriverTest, SweepChartFlag) {
  const CliResult result = RunCli({"--workload=fas", "--sweep=alex", "--chart"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("(log scale)"), std::string::npos);
  EXPECT_NE(result.out.find("* alex"), std::string::npos);
}

TEST(CliDriverTest, ClfTraceFormat) {
  const std::string path = ::testing::TempDir() + "/webcc_cli_clf.log";
  {
    std::ofstream os(path);
    os << R"(local1.campus.edu - - [01/Jan/1996:09:00:00 +0000] "GET /a.html HTTP/1.0" 200 100 "Mon, 01 Jan 1996 03:00:00 GMT")"
       << "\n";
    os << R"(remote1.com - - [02/Jan/1996:10:00:00 +0000] "GET /a.html HTTP/1.0" 200 100 "Mon, 01 Jan 1996 03:00:00 GMT")"
       << "\n";
  }
  const CliResult result =
      RunCli({"--workload=trace", "--trace-file=" + path, "--trace-format=clf",
              "--local-suffix=.campus.edu", "--policy=ttl", "--ttl-hours=10"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.err.find("clf: 2 records"), std::string::npos);
  EXPECT_NE(result.out.find("2 requests"), std::string::npos);
}

TEST(CliDriverTest, ClfFormatErrors) {
  EXPECT_EQ(RunCli({"--workload=trace", "--trace-file=/nonexistent",
                    "--trace-format=clf"})
                .code,
            2);
  const std::string path = ::testing::TempDir() + "/webcc_cli_clf_empty.log";
  { std::ofstream os(path); os << "garbage\n"; }
  EXPECT_EQ(RunCli({"--workload=trace", "--trace-file=" + path, "--trace-format=clf"}).code, 2);
  EXPECT_EQ(
      RunCli({"--workload=trace", "--trace-file=" + path, "--trace-format=sideways"}).code, 2);
}

TEST(CliDriverTest, UnknownFlagRejected) {
  const CliResult result = RunCli({"--workload=fas", "--tresshold=5"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--tresshold"), std::string::npos);
}

TEST(CliDriverTest, NumericFlagBoundsRejected) {
  // Each bad flag must produce exit code 2 and a one-line diagnostic on
  // stderr — never a crash, a silent clamp, or a garbage run.
  struct Case {
    std::vector<std::string> args;
    const char* expect_in_err;
  };
  const std::vector<Case> cases = {
      {{"--workload=fas", "--jobs=-1"}, "--jobs"},
      {{"--workload=fas", "--jobs=5000"}, "--jobs"},
      {{"--workload=fas", "--jobs=99999999999999999999"}, "--jobs"},  // overflows int64
      {{"--workload=fas", "--jobs=two"}, "--jobs"},
      {{"--workload=fas", "--capacity-bytes=-5"}, "--capacity-bytes"},
      {{"--workload=fas", "--loss-rate=1.5"}, "--loss-rate"},
      {{"--workload=fas", "--loss-rate=-0.1"}, "--loss-rate"},
      {{"--workload=fas", "--retry-max=0"}, "--retry-max"},
      {{"--workload=fas", "--retry-max=101"}, "--retry-max"},
      {{"--workload=fas", "--recovery=sideways"}, "--recovery"},
      {{"--workload=fas", "--mtbf=1h"}, "--mttr"},  // must be given together
      {{"--workload=fas", "--policy=invalidation", "--lease=-3h"}, "duration"},
      {{"--workload=fas", "--retry-timeout=abc"}, "duration"},
      {{"--workload=fas", "--downtime=5q"}, "duration"},
  };
  for (const Case& c : cases) {
    const CliResult result = RunCli(c.args);
    EXPECT_EQ(result.code, 2) << c.args.back();
    EXPECT_NE(result.err.find(c.expect_in_err), std::string::npos)
        << c.args.back() << " -> " << result.err;
    EXPECT_LE(std::count(result.err.begin(), result.err.end(), '\n'), 2)
        << "diagnostic should be short: " << result.err;
  }
}

TEST(CliDriverTest, FaultRunPrintsFailureSummary) {
  const CliResult result = RunCli({"--files=50", "--days=5", "--rps=0.02",
                                   "--policy=invalidation", "--loss-rate=0.1",
                                   "--cache-crash=2d"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("faults:"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("crashes=1"), std::string::npos) << result.out;
}

TEST(CliDriverTest, FaultRunsAreSeedReproducible) {
  const std::vector<std::string> args = {"--files=50", "--days=5",  "--rps=0.02",
                                         "--policy=invalidation",  "--loss-rate=0.2",
                                         "--fault-seed=99",        "--downtime-start=1d",
                                         "--downtime=6h"};
  const CliResult first = RunCli(args);
  const CliResult second = RunCli(args);
  EXPECT_EQ(first.code, 0) << first.err;
  EXPECT_EQ(first.out, second.out);
}

TEST(CliDriverTest, LeaseFlagChangesInvalidationDescription) {
  const CliResult result =
      RunCli({"--workload=fas", "--policy=invalidation", "--lease=12h"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("invalidation(lease=12h 0m 0s)"), std::string::npos) << result.out;
}

TEST(CliDriverTest, CapacityFlagPlumbs) {
  const CliResult result =
      RunCli({"--workload=fas", "--policy=ttl", "--capacity-bytes=100000", "--no-preload"});
  EXPECT_EQ(result.code, 0) << result.err;
  // A 100 KB cache on a multi-MB working set must evict.
  EXPECT_EQ(result.out.find("0 evictions"), std::string::npos);
}

}  // namespace
}  // namespace webcc
