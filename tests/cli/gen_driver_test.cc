#include "src/cli/gen_driver.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/workload/clf.h"
#include "src/workload/trace.h"

namespace webcc {
namespace {

struct GenResult {
  int code = 0;
  std::string out;
  std::string err;
};

GenResult RunGen(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  GenResult result;
  result.code = RunGenDriver(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

TEST(GenDriverTest, HelpText) {
  const GenResult result = RunGen({"--help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_EQ(result.out, GenHelpText());
  EXPECT_NE(result.out.find("--profile="), std::string::npos);
}

TEST(GenDriverTest, RequiresOutPath) {
  const GenResult result = RunGen({"--profile=fas"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--out"), std::string::npos);
}

TEST(GenDriverTest, GeneratesCampusTrace) {
  const std::string path = ::testing::TempDir() + "/webcc_gen_fas.trace";
  const GenResult result = RunGen({"--profile=fas", "--out=" + path});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("generated FAS"), std::string::npos);
  const auto trace = ReadTraceFile(path);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->records.size(), 56660u);
}

TEST(GenDriverTest, GeneratesWorrellTraceWithOverrides) {
  const std::string path = ::testing::TempDir() + "/webcc_gen_worrell.trace";
  const GenResult result = RunGen(
      {"--profile=worrell", "--files=50", "--days=3", "--rps=0.01", "--out=" + path});
  EXPECT_EQ(result.code, 0) << result.err;
  const auto trace = ReadTraceFile(path);
  ASSERT_TRUE(trace.has_value());
  EXPECT_GT(trace->records.size(), 1000u);
  const Workload load = CompileTrace(*trace);
  EXPECT_EQ(load.objects.size(), 50u);
}

TEST(GenDriverTest, ClfOutputRoundTripsThroughClfReader) {
  const std::string path = ::testing::TempDir() + "/webcc_gen_fas.log";
  ASSERT_EQ(RunGen({"--profile=fas", "--format=clf", "--out=" + path}).code, 0);
  ClfParseOptions options;
  options.local_suffix = ".campus.edu";
  ClfReadStats stats;
  const auto trace = ReadClfTraceFile(path, options, &stats);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(stats.skipped_malformed, 0u);
  EXPECT_EQ(trace->records.size(), 56660u);
  // Remote split survives the round trip approximately (39% for FAS).
  uint64_t remote = 0;
  for (const auto& record : trace->records) {
    remote += record.remote ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(remote) / static_cast<double>(trace->records.size()), 0.39,
              0.02);
}

TEST(GenDriverTest, SeedChangesOutput) {
  const std::string a = ::testing::TempDir() + "/webcc_gen_a.trace";
  const std::string b = ::testing::TempDir() + "/webcc_gen_b.trace";
  ASSERT_EQ(RunGen({"--profile=worrell", "--files=20", "--days=2", "--rps=0.01", "--seed=1",
                    "--out=" + a})
                .code,
            0);
  ASSERT_EQ(RunGen({"--profile=worrell", "--files=20", "--days=2", "--rps=0.01", "--seed=2",
                    "--out=" + b})
                .code,
            0);
  const auto ta = ReadTraceFile(a);
  const auto tb = ReadTraceFile(b);
  ASSERT_TRUE(ta && tb);
  EXPECT_NE(ta->records.size(), tb->records.size());
}

TEST(GenDriverTest, ErrorsDiagnosed) {
  EXPECT_EQ(RunGen({"--profile=nope", "--out=/tmp/x"}).code, 2);
  EXPECT_EQ(RunGen({"--profile=fas", "--out=/tmp/x", "--format=nope"}).code, 2);
  EXPECT_EQ(RunGen({"--profile=fas", "--out=/nonexistent/dir/x"}).code, 1);
  EXPECT_EQ(RunGen({"--profile=fas", "--out=/tmp/x", "--bogus"}).code, 2);
  EXPECT_EQ(RunGen({"positional"}).code, 2);
}

}  // namespace
}  // namespace webcc
