#include "src/cli/serve_driver.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

struct RunResult {
  int code = 0;
  std::string out;
  std::string err;
};

RunResult RunServe(const std::vector<std::string>& args) {
  std::stringstream out;
  std::stringstream err;
  RunResult result;
  result.code = RunServeCliDriver(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

TEST(ServeFlagsTest, HelpPrintsAndExitsZero) {
  const RunResult result = RunServe({"--help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("webcc-serve"), std::string::npos);
  EXPECT_NE(result.out.find("--expect-breaker"), std::string::npos);
  EXPECT_EQ(result.out, ServeCliHelpText());
}

// Every malformed flag gets the one-line error + exit 2 contract.
void ExpectRejected(const std::vector<std::string>& args, const std::string& needle) {
  const RunResult result = RunServe(args);
  EXPECT_EQ(result.code, 2) << "args rejected wrong: " << needle;
  EXPECT_NE(result.err.find("error:"), std::string::npos);
  EXPECT_NE(result.err.find(needle), std::string::npos) << "got: " << result.err;
  // One line, trailing newline included.
  EXPECT_EQ(result.err.find('\n'), result.err.size() - 1) << "got: " << result.err;
}

TEST(ServeFlagsTest, RejectsMalformedNumbers) {
  ExpectRejected({"--rate=banana"}, "--rate");
  ExpectRejected({"--rate=nan"}, "--rate");
  ExpectRejected({"--rate=-50"}, "--rate");
  ExpectRejected({"--rate=0"}, "--rate");
  ExpectRejected({"--time-scale=0"}, "--time-scale");
  ExpectRejected({"--time-scale=-2"}, "--time-scale");
  ExpectRejected({"--time-scale=inf"}, "--time-scale");
}

TEST(ServeFlagsTest, RejectsMalformedWallDurations) {
  ExpectRejected({"--deadline=soon"}, "--deadline");
  ExpectRejected({"--deadline=-5ms"}, "--deadline");
  ExpectRejected({"--deadline=5parsecs"}, "--deadline");
  ExpectRejected({"--deadline=0"}, "--deadline");
  ExpectRejected({"--duration=0"}, "--duration");
  ExpectRejected({"--service-time=nan"}, "--service-time");
}

TEST(ServeFlagsTest, RejectsOutOfRangeIntegers) {
  ExpectRejected({"--files=0"}, "--files");
  ExpectRejected({"--files=-3"}, "--files");
  ExpectRejected({"--queue-depth=0"}, "--queue-depth");
  ExpectRejected({"--retry-max=0"}, "--retry-max");
  ExpectRejected({"--retry-max=101"}, "--retry-max");
  ExpectRejected({"--workers-min=0"}, "--workers-min");
  ExpectRejected({"--workers-min=4", "--workers-max=2"}, "--workers-m");
  ExpectRejected({"--breaker-threshold=0"}, "--breaker-threshold");
}

TEST(ServeFlagsTest, RejectsInconsistentOutageFlags) {
  ExpectRejected({"--outage-start=100ms"}, "--outage-duration");
  ExpectRejected({"--outage-duration=100ms"}, "--outage-start");
}

TEST(ServeFlagsTest, RejectsUnknownPolicyModeAndFlags) {
  ExpectRejected({"--policy=lru"}, "--policy");
  ExpectRejected({"--mode=turbo"}, "--mode");
  ExpectRejected({"--not-a-flag=1"}, "not-a-flag");
  ExpectRejected({"--retry-jitter=maybe"}, "--retry-jitter");
  ExpectRejected({"positional"}, "positional");
}

TEST(ServeFlagsTest, ShortQuietRunExitsZeroAndEmitsJson) {
  const std::string json_path = ::testing::TempDir() + "/webcc_serve_flags_test_metrics.json";
  const RunResult result = RunServe({"--rate=100", "--duration=120ms", "--snapshot-interval=0",
                                "--policy=ttl", "--ttl-hours=1",
                                "--metrics-json=" + json_path});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\"admission\""), std::string::npos);
  EXPECT_NE(result.out.find("\"breaker\""), std::string::npos);
  std::ifstream file(json_path);
  ASSERT_TRUE(file.good());
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_NE(line.find("\"outcomes\""), std::string::npos);
}

TEST(ServeFlagsTest, UnmetExpectationExitsOne) {
  // A quiet in-capacity run sheds nothing, so --expect-shed must fail.
  const RunResult result = RunServe({"--rate=50", "--duration=80ms", "--snapshot-interval=0",
                                "--policy=ttl", "--ttl-hours=1", "--expect-shed"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("expectation failed"), std::string::npos);
}

TEST(ServeFlagsTest, UnwritableMetricsJsonPathExitsTwo) {
  const RunResult result = RunServe({"--rate=50", "--duration=60ms", "--snapshot-interval=0",
                                "--metrics-json=/nonexistent-dir/metrics.json"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("metrics-json"), std::string::npos);
}

}  // namespace
}  // namespace webcc
