// The --fleet/--hierarchy topology modes and the per-link fault knobs
// (--fleet-loss-rate/--fleet-jitter/--fleet-crash, --tier-*): happy paths
// through RunCliDriver plus the one-line-error + exit 2 contract for every
// malformed input class. ParseTopologyFaultFlags is shared with webcc-chaos,
// so the error text asserted here is what both binaries print.

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cli/args.h"
#include "src/cli/driver.h"

namespace webcc {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult RunCli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = RunCliDriver(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

// Small Worrell workload so the topology runs stay fast.
std::vector<std::string> WithSmallWorkload(std::vector<std::string> extra) {
  std::vector<std::string> args = {"--files=50", "--days=5", "--rps=0.02"};
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

// Every rejection is the documented contract: exit 2 and exactly one
// error line on stderr.
void ExpectOneLineError(const CliResult& result, const std::string& needle) {
  EXPECT_EQ(result.code, 2) << result.err;
  EXPECT_EQ(std::count(result.err.begin(), result.err.end(), '\n'), 1) << result.err;
  EXPECT_EQ(result.err.rfind("error: ", 0), 0u) << result.err;
  EXPECT_NE(result.err.find(needle), std::string::npos) << result.err;
}

TEST(TopologyFlagsTest, FleetRunPrintsPerMemberSpread) {
  const CliResult result =
      RunCli(WithSmallWorkload({"--policy=invalidation", "--fleet=3"}));
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("fleet of 3"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("Per-member spread:"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("subscriptions:"), std::string::npos) << result.out;
}

TEST(TopologyFlagsTest, FleetCrashDarkensTargetedMember) {
  const CliResult result = RunCli(WithSmallWorkload(
      {"--policy=invalidation", "--fleet=3", "--fleet-crash=1:2d"}));
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("1 dark members"), std::string::npos) << result.out;
}

TEST(TopologyFlagsTest, HierarchyRunPrintsPerTierSpread) {
  const CliResult result = RunCli(WithSmallWorkload({"--policy=invalidation", "--hierarchy"}));
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("two-level tree"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("Per-tier spread:"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("L1a"), std::string::npos) << result.out;
}

TEST(TopologyFlagsTest, FleetRunsAreReproducible) {
  const std::vector<std::string> args = WithSmallWorkload(
      {"--policy=invalidation", "--fleet=4", "--fleet-loss-rate=2:0.3",
       "--fleet-crash=0:2d", "--fault-seed=7"});
  const CliResult first = RunCli(args);
  const CliResult second = RunCli(args);
  EXPECT_EQ(first.code, 0) << first.err;
  EXPECT_EQ(first.out, second.out);
}

TEST(TopologyFlagsTest, FleetSizeOutOfRangeRejected) {
  ExpectOneLineError(RunCli({"--fleet=1"}), "--fleet expects a member count in [2, 4096]");
  ExpectOneLineError(RunCli({"--fleet=4097"}), "--fleet expects a member count in [2, 4096]");
  ExpectOneLineError(RunCli({"--fleet=0"}), "--fleet expects a member count in [2, 4096]");
}

TEST(TopologyFlagsTest, FleetAndHierarchyAreMutuallyExclusive) {
  ExpectOneLineError(RunCli({"--fleet=3", "--hierarchy"}), "mutually exclusive");
}

TEST(TopologyFlagsTest, MemberKnobsRequireFleet) {
  ExpectOneLineError(RunCli({"--fleet-crash=1:2h"}), "--fleet-crash requires --fleet=N");
  ExpectOneLineError(RunCli({"--hierarchy", "--fleet-jitter=0:90s"}),
                     "--fleet-jitter requires --fleet=N");
}

TEST(TopologyFlagsTest, TierKnobsRequireHierarchy) {
  ExpectOneLineError(RunCli({"--tier-loss-rate=l2:0.5"}),
                     "--tier-loss-rate requires --hierarchy");
  ExpectOneLineError(RunCli({"--fleet=3", "--tier-crash=l1a:2h"}),
                     "--tier-crash requires --hierarchy");
}

TEST(TopologyFlagsTest, MalformedMemberIndexRejected) {
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-crash=7:2h"}),
                     "member index '7' is not in [0, 3)");
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-crash=-1:2h"}),
                     "member index '-1' is not in [0, 3)");
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-loss-rate=abc:0.5"}),
                     "member index 'abc' is not in [0, 3)");
}

TEST(TopologyFlagsTest, UnknownTierLinkRejected) {
  ExpectOneLineError(RunCli({"--hierarchy", "--tier-crash=l9:2h"}),
                     "link 'l9' is not l2, l1a, or l1b");
  ExpectOneLineError(RunCli({"--hierarchy", "--tier-jitter=0:90s"}),
                     "link '0' is not l2, l1a, or l1b");
}

TEST(TopologyFlagsTest, MalformedEntriesRejected) {
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-crash=nocolon"}),
                     "entries look like TARGET:VALUE");
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-crash=1:"}),
                     "entries look like TARGET:VALUE");
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-crash=:2h"}),
                     "entries look like TARGET:VALUE");
  // A bad entry anywhere in the comma-separated list fails the whole flag.
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-crash=1:2h,bogus"}),
                     "entries look like TARGET:VALUE");
}

TEST(TopologyFlagsTest, MalformedDurationsRejected) {
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-crash=1:xyz"}), "expects a duration");
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-jitter=1:-5s"}), "expects a duration");
  ExpectOneLineError(RunCli({"--hierarchy", "--tier-crash=l2:2w"}), "expects a duration");
}

TEST(TopologyFlagsTest, LossRateOutOfRangeRejected) {
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-loss-rate=1:1.5"}), "must be in [0, 1]");
  ExpectOneLineError(RunCli({"--fleet=3", "--fleet-loss-rate=1:-0.1"}), "must be in [0, 1]");
  ExpectOneLineError(RunCli({"--hierarchy", "--tier-loss-rate=l2:nan"}), "must be in [0, 1]");
}

TEST(TopologyFlagsTest, TopologyModesRejectIncompatibleFlags) {
  ExpectOneLineError(RunCli({"--fleet=3", "--sweep=alex"}),
                     "--fleet cannot be combined with --sweep");
  ExpectOneLineError(RunCli({"--hierarchy", "--analyze"}),
                     "--hierarchy cannot be combined with --analyze");
  ExpectOneLineError(RunCli({"--fleet=3", "--capacity-bytes=1000"}),
                     "--fleet cannot be combined with --capacity-bytes");
}

// Unit-level coverage of the shared parser: webcc-chaos consumes the same
// flags through the same function, so what is validated here holds there.
TEST(TopologyFlagsTest, ParserAccumulatesSameLinkEntries) {
  ArgParser args({"--fleet=4", "--fleet-loss-rate=2:0.25", "--fleet-jitter=2:90s",
                  "--fleet-crash=2:1h,2:5h"});
  FaultConfig faults;
  CliTopologySelection topo;
  std::ostringstream err;
  ASSERT_TRUE(ParseTopologyFaultFlags(args, faults, topo, err)) << err.str();
  EXPECT_EQ(topo.mode, CliTopology::kFleet);
  EXPECT_EQ(topo.fleet_size, 4u);
  ASSERT_EQ(faults.link_overrides.size(), 1u);
  const LinkFaultOverride& over = faults.link_overrides[0];
  EXPECT_EQ(over.link, 2u);
  EXPECT_EQ(over.loss_rate.value_or(0.0), 0.25);
  EXPECT_EQ(over.jitter_max.value_or(SimDuration(0)), Seconds(90));
  ASSERT_EQ(over.crashes.size(), 2u);
  EXPECT_EQ(over.crashes[0].at, SimTime::Epoch() + Hours(1));
  EXPECT_EQ(over.crashes[1].at, SimTime::Epoch() + Hours(5));
}

TEST(TopologyFlagsTest, ParserMapsTierNamesToHierarchyLinks) {
  ArgParser args({"--hierarchy", "--tier-loss-rate=l2:0.1,l1a:0.2,l1b:0.3"});
  FaultConfig faults;
  CliTopologySelection topo;
  std::ostringstream err;
  ASSERT_TRUE(ParseTopologyFaultFlags(args, faults, topo, err)) << err.str();
  EXPECT_EQ(topo.mode, CliTopology::kHierarchy);
  ASSERT_EQ(faults.link_overrides.size(), 3u);
  for (uint32_t link = 0; link < 3; ++link) {
    const double expected = 0.1 * static_cast<double>(link + 1);
    EXPECT_NEAR(faults.link_overrides[link].loss_rate.value_or(-1.0), expected, 1e-12);
    EXPECT_EQ(faults.link_overrides[link].link, link);
  }
}

TEST(TopologyFlagsTest, ParserHonorsCrashOutage) {
  ArgParser args({"--fleet=2", "--fleet-crash=0:1h", "--crash-outage=30m"});
  FaultConfig faults;
  CliTopologySelection topo;
  std::ostringstream err;
  ASSERT_TRUE(ParseTopologyFaultFlags(args, faults, topo, err)) << err.str();
  ASSERT_EQ(faults.link_overrides.size(), 1u);
  ASSERT_EQ(faults.link_overrides[0].crashes.size(), 1u);
  EXPECT_EQ(faults.link_overrides[0].crashes[0].outage, Minutes(30));
}

TEST(TopologyFlagsTest, ParserIsNoOpWithoutTopologyFlags) {
  ArgParser args({"--policy=alex"});
  FaultConfig faults;
  CliTopologySelection topo;
  std::ostringstream err;
  ASSERT_TRUE(ParseTopologyFaultFlags(args, faults, topo, err)) << err.str();
  EXPECT_EQ(topo.mode, CliTopology::kSingle);
  EXPECT_TRUE(faults.link_overrides.empty());
  EXPECT_FALSE(faults.Enabled());
}

}  // namespace
}  // namespace webcc
