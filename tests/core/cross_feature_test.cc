// Cross-feature integration: combinations the single-feature suites don't
// reach — the adaptive tuner under live simulation, snapshots of adaptive
// state, fleets in base mode, and the HTTP path inside a hierarchy.

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "src/cache/http_upstream.h"
#include "src/cache/origin_upstream.h"
#include "src/cache/snapshot.h"
#include "src/core/fleet.h"
#include "src/core/live_simulation.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

TEST(CrossFeatureTest, AdaptiveTunerUnderLiveSimulation) {
  LiveSimulationConfig config;
  config.policy = PolicyConfig::Adaptive();
  config.num_files = 200;
  config.duration = Days(21);
  config.requests_per_second = 0.1;
  config.seed = 91;
  const auto result = RunLiveSimulation(config);
  EXPECT_GT(result.metrics.requests, 100000u);
  // The tuner keeps staleness moderate on the churny Worrell workload while
  // validating far less than always-poll would.
  EXPECT_LT(result.metrics.StaleRate(), 0.20);
  EXPECT_LT(result.metrics.validations, result.metrics.requests / 2);
  EXPECT_EQ(result.cache.LinkBytes(), result.server.TotalBytes());
}

TEST(CrossFeatureTest, SnapshotPreservesAdaptiveEntriesAcrossRestart) {
  OriginServer server;
  const ObjectId obj =
      server.store().Create("/a.gif", FileType::kGif, 2000, SimTime::Epoch() - Days(40));
  OriginUpstream upstream(&server);
  ProxyCache before("a", &upstream, MakePolicy(PolicyConfig::Adaptive()), CacheConfig{},
                    &server.store());
  before.HandleRequest(obj, SimTime::Epoch());
  before.HandleRequest(obj, SimTime::Epoch() + Hours(1));
  std::stringstream snapshot;
  SaveCacheSnapshot(before, snapshot);

  ProxyCache after("b", &upstream, MakePolicy(PolicyConfig::Adaptive()), CacheConfig{},
                   &server.store());
  ASSERT_EQ(LoadCacheSnapshot(after, snapshot, SnapshotRecovery::kTrustSnapshot), 1);
  // The restored window (10% of 40 days = 4 days) still holds.
  const ServeResult result = after.HandleRequest(obj, SimTime::Epoch() + Days(2));
  EXPECT_EQ(result.kind, ServeKind::kHitFresh);
}

TEST(CrossFeatureTest, FleetInBaseModeStillConserves) {
  WorrellConfig wc;
  wc.num_files = 40;
  wc.duration = Days(5);
  wc.requests_per_second = 0.03;
  wc.seed = 12;
  const Workload load = GenerateWorrellWorkload(wc);
  FleetConfig config;
  config.policy = PolicyConfig::Ttl(Hours(12));
  config.num_caches = 4;
  config.refresh_mode = RefreshMode::kFullRefetch;
  const FleetResult result = RunFleetSimulation(load, config);
  EXPECT_EQ(result.requests, load.requests.size());
  EXPECT_EQ(result.server.ims_queries, 0u);  // base mode never validates
  EXPECT_GT(result.misses, 0u);
}

TEST(CrossFeatureTest, HierarchyOverHttpUpstream) {
  // Leaf cache -> parent cache -> HTTP text -> origin: the serialized path
  // composes with cache chaining.
  OriginServer server;
  const ObjectId obj =
      server.store().Create("/h.html", FileType::kHtml, 4000, SimTime::Epoch() - Days(5));
  HttpFrontend frontend(&server);
  HttpUpstream http(&frontend);
  ProxyCache parent("parent", &http, MakePolicy(PolicyConfig::Ttl(Hours(2))), CacheConfig{},
                    &server.store());
  ProxyCache leaf("leaf", &parent, MakePolicy(PolicyConfig::Ttl(Hours(2))), CacheConfig{},
                  &server.store());

  EXPECT_EQ(leaf.HandleRequest(obj, SimTime::Epoch()).kind, ServeKind::kMissCold);
  EXPECT_EQ(frontend.requests_handled(), 1u);
  EXPECT_EQ(leaf.HandleRequest(obj, SimTime::Epoch() + Hours(1)).kind, ServeKind::kHitFresh);

  server.ModifyObject(obj, SimTime::Epoch() + Hours(1) + Minutes(30), 4100);
  const ServeResult result = leaf.HandleRequest(obj, SimTime::Epoch() + Hours(3));
  EXPECT_EQ(result.kind, ServeKind::kMissRefetched);
  EXPECT_EQ(result.hops, 2);  // leaf -> parent -> (http) origin
  EXPECT_EQ(leaf.Find(obj)->size_bytes, 4100);
  EXPECT_FALSE(result.stale);
}

TEST(CrossFeatureTest, WarmupComposesWithCapacity) {
  WorrellConfig wc;
  wc.num_files = 60;
  wc.duration = Days(6);
  wc.requests_per_second = 0.05;
  wc.seed = 77;
  const Workload load = GenerateWorrellWorkload(wc);
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(24)));
  config.preload = false;
  config.warmup = Days(1);
  config.cache_capacity_bytes = 120000;  // tight
  const auto result = RunSimulation(load, config);
  EXPECT_GT(result.metrics.requests, 0u);
  EXPECT_EQ(result.cache.LinkBytes(), result.server.TotalBytes());
  // Capacity honored (stored bytes live on the cache object, not the stats;
  // evictions prove the bound was enforced).
  EXPECT_GT(result.cache.evictions, 0u);
}

}  // namespace
}  // namespace webcc
