// Deep cache chains: ProxyCache implements Upstream, so caches compose to
// arbitrary depth (the Harvest-style hierarchies of [7] that Worrell's
// simulator modeled). These tests run a three-level chain
// server -> L3 -> L2 -> L1 and check propagation through every level.

#include <memory>

#include <gtest/gtest.h>

#include "src/cache/origin_upstream.h"
#include "src/cache/policy_factory.h"
#include "src/cache/proxy_cache.h"
#include "src/http/message.h"

namespace webcc {
namespace {

class DeepChainTest : public ::testing::Test {
 protected:
  DeepChainTest() : origin_(&server_) {
    obj_ = server_.store().Create("/deep.html", FileType::kHtml, 9000,
                                  SimTime::Epoch() - Days(30));
  }

  void Build(PolicyConfig policy) {
    l3_ = std::make_unique<ProxyCache>("L3", &origin_, MakePolicy(policy), CacheConfig{},
                                       &server_.store());
    l2_ = std::make_unique<ProxyCache>("L2", l3_.get(), MakePolicy(policy), CacheConfig{},
                                       &server_.store());
    l1_ = std::make_unique<ProxyCache>("L1", l2_.get(), MakePolicy(policy), CacheConfig{},
                                       &server_.store());
  }

  OriginServer server_;
  OriginUpstream origin_;
  std::unique_ptr<ProxyCache> l3_;
  std::unique_ptr<ProxyCache> l2_;
  std::unique_ptr<ProxyCache> l1_;
  ObjectId obj_ = kInvalidObjectId;
};

TEST_F(DeepChainTest, ColdMissPopulatesEveryLevel) {
  Build(PolicyConfig::Ttl(Hours(24)));
  const ServeResult result = l1_->HandleRequest(obj_, SimTime::Epoch());
  EXPECT_EQ(result.kind, ServeKind::kMissCold);
  EXPECT_TRUE(l1_->Contains(obj_));
  EXPECT_TRUE(l2_->Contains(obj_));
  EXPECT_TRUE(l3_->Contains(obj_));
  EXPECT_EQ(server_.stats().get_requests, 1u);
}

TEST_F(DeepChainTest, SecondRequestServedAtTopLevel) {
  Build(PolicyConfig::Ttl(Hours(24)));
  l1_->HandleRequest(obj_, SimTime::Epoch());
  const int64_t server_bytes = server_.stats().TotalBytes();
  const ServeResult result = l1_->HandleRequest(obj_, SimTime::Epoch() + Hours(1));
  EXPECT_EQ(result.kind, ServeKind::kHitFresh);
  EXPECT_EQ(server_.stats().TotalBytes(), server_bytes);
  EXPECT_EQ(l2_->stats().requests, 1u);  // never consulted again
}

TEST_F(DeepChainTest, UniformTtlExpiresWholeChainTogether) {
  Build(PolicyConfig::Ttl(Hours(1)));
  l1_->HandleRequest(obj_, SimTime::Epoch());
  // All levels expire in lockstep; every revalidation walks the full chain.
  l1_->HandleRequest(obj_, SimTime::Epoch() + Hours(2));
  l1_->HandleRequest(obj_, SimTime::Epoch() + Hours(3) + Minutes(30));
  EXPECT_EQ(server_.stats().ims_queries, 2u);
  EXPECT_EQ(l2_->stats().validations_sent, 2u);
  EXPECT_EQ(l3_->stats().validations_sent, 2u);
}

TEST_F(DeepChainTest, ValidationStopsAtFirstFreshLevel) {
  // Impatient edge cache (1 h TTL) in front of relaxed inner caches (10 h):
  // the edge revalidates often, but the queries terminate at L2 and the
  // origin never hears about them — the hierarchy's whole point.
  l3_ = std::make_unique<ProxyCache>("L3", &origin_, MakePolicy(PolicyConfig::Ttl(Hours(10))),
                                     CacheConfig{}, &server_.store());
  l2_ = std::make_unique<ProxyCache>("L2", l3_.get(), MakePolicy(PolicyConfig::Ttl(Hours(10))),
                                     CacheConfig{}, &server_.store());
  l1_ = std::make_unique<ProxyCache>("L1", l2_.get(), MakePolicy(PolicyConfig::Ttl(Hours(1))),
                                     CacheConfig{}, &server_.store());
  l1_->HandleRequest(obj_, SimTime::Epoch());
  const uint64_t gets_after_cold = server_.stats().get_requests;
  l1_->HandleRequest(obj_, SimTime::Epoch() + Hours(2));
  l1_->HandleRequest(obj_, SimTime::Epoch() + Hours(4));
  EXPECT_EQ(l1_->stats().validations_sent, 2u);
  EXPECT_EQ(l2_->stats().validations_sent, 0u);  // L2 stayed fresh
  EXPECT_EQ(server_.stats().ims_queries, 0u);
  EXPECT_EQ(server_.stats().get_requests, gets_after_cold);
}

TEST_F(DeepChainTest, InvalidationDescendsThreeLevels) {
  Build(PolicyConfig::Invalidation());
  l1_->HandleRequest(obj_, SimTime::Epoch());
  server_.ModifyObject(obj_, SimTime::Epoch() + Hours(1));
  EXPECT_FALSE(l3_->Find(obj_)->valid);
  EXPECT_FALSE(l2_->Find(obj_)->valid);
  EXPECT_FALSE(l1_->Find(obj_)->valid);
  EXPECT_EQ(l3_->child_invalidations_sent(), 1u);
  EXPECT_EQ(l2_->child_invalidations_sent(), 1u);
}

TEST_F(DeepChainTest, RefetchAfterDeepInvalidationIsConsistent) {
  Build(PolicyConfig::Invalidation());
  l1_->HandleRequest(obj_, SimTime::Epoch());
  server_.ModifyObject(obj_, SimTime::Epoch() + Hours(1), 11000);
  const ServeResult result = l1_->HandleRequest(obj_, SimTime::Epoch() + Hours(2));
  EXPECT_EQ(result.kind, ServeKind::kMissRefetched);
  EXPECT_FALSE(result.stale);
  for (ProxyCache* cache : {l1_.get(), l2_.get(), l3_.get()}) {
    EXPECT_EQ(cache->Find(obj_)->size_bytes, 11000) << cache->name();
    EXPECT_TRUE(cache->Find(obj_)->valid) << cache->name();
  }
  EXPECT_EQ(l1_->stats().stale_hits, 0u);
}

TEST_F(DeepChainTest, StaleServesPossibleAtEveryTimeBasedLevel) {
  Build(PolicyConfig::Ttl(Hours(100)));
  l1_->HandleRequest(obj_, SimTime::Epoch());
  server_.ModifyObject(obj_, SimTime::Epoch() + Hours(1));
  const ServeResult result = l1_->HandleRequest(obj_, SimTime::Epoch() + Hours(2));
  EXPECT_EQ(result.kind, ServeKind::kHitFresh);
  EXPECT_TRUE(result.stale);
}

TEST_F(DeepChainTest, ChainByteAccountingIsPerLink) {
  Build(PolicyConfig::Ttl(Hours(24)));
  l1_->HandleRequest(obj_, SimTime::Epoch());
  // Each link moved one request message and one document.
  const int64_t per_link = ControlWireBytes() + DocumentWireBytes(9000);
  EXPECT_EQ(l1_->stats().LinkBytes(), per_link);
  EXPECT_EQ(l2_->stats().LinkBytes(), per_link);
  EXPECT_EQ(l3_->stats().LinkBytes(), per_link);
  EXPECT_EQ(server_.stats().TotalBytes(), per_link);
}

}  // namespace
}  // namespace webcc
