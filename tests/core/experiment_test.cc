#include "src/core/experiment.h"

#include <gtest/gtest.h>

#include "src/workload/worrell.h"

namespace webcc {
namespace {

Workload TinyWorkload() {
  WorrellConfig config;
  config.num_files = 50;
  config.duration = Days(7);
  config.requests_per_second = 0.02;
  config.seed = 99;
  return GenerateWorrellWorkload(config);
}

TEST(LinSpaceTest, EndpointsAndSpacing) {
  const auto v = LinSpace(0.0, 100.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 100.0);
  EXPECT_DOUBLE_EQ(v[1], 25.0);
}

TEST(LinSpaceTest, SinglePoint) {
  const auto v = LinSpace(7.0, 100.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 7.0);
}

TEST(PaperAxesTest, MatchFigureRanges) {
  const auto thresholds = PaperThresholdPercents();
  EXPECT_DOUBLE_EQ(thresholds.front(), 0.0);
  EXPECT_DOUBLE_EQ(thresholds.back(), 100.0);
  const auto ttls = PaperTtlHours();
  EXPECT_DOUBLE_EQ(ttls.front(), 0.0);
  EXPECT_DOUBLE_EQ(ttls.back(), 500.0);
}

TEST(SweepTest, AlexSweepLabelsAndParams) {
  const Workload load = TinyWorkload();
  const SweepSeries series =
      SweepAlexThreshold(load, SimulationConfig::Optimized(PolicyConfig::Alex(0)), {0, 50, 100});
  EXPECT_EQ(series.label, "alex");
  EXPECT_EQ(series.param_name, "threshold_pct");
  ASSERT_EQ(series.points.size(), 3u);
  EXPECT_DOUBLE_EQ(series.points[1].param, 50.0);
  EXPECT_EQ(series.points[1].result.policy_desc, "alex(threshold=50%)");
}

TEST(SweepTest, TtlSweepUsesHours) {
  const Workload load = TinyWorkload();
  const SweepSeries series =
      SweepTtlHours(load, SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(1))), {0, 125});
  ASSERT_EQ(series.points.size(), 2u);
  EXPECT_EQ(series.points[1].result.policy_desc, "ttl(125.0h)");
}

TEST(SweepTest, AllPointsReplaySameRequestStream) {
  const Workload load = TinyWorkload();
  const SweepSeries series =
      SweepAlexThreshold(load, SimulationConfig::Optimized(PolicyConfig::Alex(0)), {0, 25, 100});
  for (const SweepPoint& point : series.points) {
    EXPECT_EQ(point.result.metrics.requests, load.requests.size());
  }
}

TEST(SweepTest, InvalidationRunIgnoresPolicyInBaseConfig) {
  const Workload load = TinyWorkload();
  const auto result = RunInvalidation(load, SimulationConfig::Optimized(PolicyConfig::Alex(0.5)));
  EXPECT_EQ(result.policy_desc, "invalidation");
  EXPECT_EQ(result.metrics.stale_hits, 0u);
}

TEST(AverageTest, AverageMetricsIsPointwiseMean) {
  ConsistencyMetrics a;
  a.requests = 100;
  a.total_bytes = 1000;
  a.stale_hits = 10;
  ConsistencyMetrics b;
  b.requests = 200;
  b.total_bytes = 3000;
  b.stale_hits = 20;
  const ConsistencyMetrics avg = AverageMetrics({a, b});
  EXPECT_EQ(avg.requests, 150u);
  EXPECT_EQ(avg.total_bytes, 2000);
  EXPECT_EQ(avg.stale_hits, 15u);
}

TEST(AverageTest, AverageMetricsEmpty) {
  const ConsistencyMetrics avg = AverageMetrics({});
  EXPECT_EQ(avg.requests, 0u);
}

TEST(AverageTest, AverageSeriesAlignsByParam) {
  const Workload load = TinyWorkload();
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const SweepSeries s1 = SweepAlexThreshold(load, config, {0, 50});
  const SweepSeries s2 = SweepAlexThreshold(load, config, {0, 50});
  const SweepSeries avg = AverageSeries({s1, s2});
  ASSERT_EQ(avg.points.size(), 2u);
  EXPECT_DOUBLE_EQ(avg.points[1].param, 50.0);
  // Averaging two identical runs reproduces the run.
  EXPECT_EQ(avg.points[1].result.metrics.total_bytes,
            s1.points[1].result.metrics.total_bytes);
  EXPECT_EQ(avg.label, "alex(avg)");
}

}  // namespace
}  // namespace webcc
