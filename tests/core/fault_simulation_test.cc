// End-to-end tests of the fault-injected simulation path: the armed-but-idle
// no-op property, fixed-seed reproducibility, and the observable behaviours
// of loss, downtime, and crash/restart (docs/ROBUSTNESS.md).

#include <vector>

#include <gtest/gtest.h>

#include "src/core/simulation.h"
#include "src/workload/campus.h"

namespace webcc {
namespace {

SimTime At(int64_t hours) { return SimTime::Epoch() + Hours(hours); }

// One 6000-byte object modified at hour 10, requests at hours 1, 2, 12, 20
// (the same micro-workload the accounting tests hand-verify).
Workload MicroWorkload(std::vector<int64_t> request_hours = {1, 2, 12, 20}) {
  Workload load;
  load.name = "micro";
  load.objects.push_back(ObjectSpec{"/m.html", FileType::kHtml, 6000, Days(10)});
  load.horizon = SimTime::Epoch() + Days(2);
  load.modifications.push_back(ModificationEvent{At(10), 0, -1});
  for (int64_t h : request_hours) {
    load.requests.push_back(RequestEvent{At(h), 0, 0, false});
  }
  load.Finalize();
  return load;
}

// Field-exact comparison across both endpoints' accounting and the derived
// metrics. Every counter the simulator can produce is asserted, so a fault
// path that silently perturbs ANY statistic fails loudly.
void ExpectIdenticalResults(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.policy_desc, b.policy_desc);

  EXPECT_EQ(a.server.get_requests, b.server.get_requests);
  EXPECT_EQ(a.server.ims_queries, b.server.ims_queries);
  EXPECT_EQ(a.server.ims_not_modified, b.server.ims_not_modified);
  EXPECT_EQ(a.server.invalidations_sent, b.server.invalidations_sent);
  EXPECT_EQ(a.server.invalidation_retries, b.server.invalidation_retries);
  EXPECT_EQ(a.server.invalidations_lost, b.server.invalidations_lost);
  EXPECT_EQ(a.server.invalidations_queued, b.server.invalidations_queued);
  EXPECT_EQ(a.server.invalidations_redelivered, b.server.invalidations_redelivered);
  EXPECT_EQ(a.server.files_transferred, b.server.files_transferred);
  EXPECT_EQ(a.server.bytes_sent, b.server.bytes_sent);
  EXPECT_EQ(a.server.bytes_received, b.server.bytes_received);

  EXPECT_EQ(a.cache.requests, b.cache.requests);
  EXPECT_EQ(a.cache.hits_fresh, b.cache.hits_fresh);
  EXPECT_EQ(a.cache.hits_validated, b.cache.hits_validated);
  EXPECT_EQ(a.cache.misses_cold, b.cache.misses_cold);
  EXPECT_EQ(a.cache.misses_refetched, b.cache.misses_refetched);
  EXPECT_EQ(a.cache.stale_hits, b.cache.stale_hits);
  EXPECT_EQ(a.cache.validations_sent, b.cache.validations_sent);
  EXPECT_EQ(a.cache.full_fetches, b.cache.full_fetches);
  EXPECT_EQ(a.cache.invalidations_received, b.cache.invalidations_received);
  EXPECT_EQ(a.cache.invalidations_dropped, b.cache.invalidations_dropped);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a.cache.upstream_retries, b.cache.upstream_retries);
  EXPECT_EQ(a.cache.retry_wait_seconds, b.cache.retry_wait_seconds);
  EXPECT_EQ(a.cache.degraded_serves, b.cache.degraded_serves);
  EXPECT_EQ(a.cache.failed_requests, b.cache.failed_requests);
  EXPECT_EQ(a.cache.crashes, b.cache.crashes);
  EXPECT_EQ(a.cache.unavailable_seconds, b.cache.unavailable_seconds);
  EXPECT_EQ(a.cache.bytes_to_upstream, b.cache.bytes_to_upstream);
  EXPECT_EQ(a.cache.bytes_from_upstream, b.cache.bytes_from_upstream);
  EXPECT_EQ(a.cache.total_hops, b.cache.total_hops);
  EXPECT_EQ(a.cache.max_hops, b.cache.max_hops);
  for (size_t t = 0; t < a.cache.by_type.size(); ++t) {
    EXPECT_EQ(a.cache.by_type[t].requests, b.cache.by_type[t].requests) << t;
    EXPECT_EQ(a.cache.by_type[t].stale_hits, b.cache.by_type[t].stale_hits) << t;
    EXPECT_EQ(a.cache.by_type[t].misses, b.cache.by_type[t].misses) << t;
    EXPECT_EQ(a.cache.by_type[t].validations, b.cache.by_type[t].validations) << t;
    EXPECT_EQ(a.cache.by_type[t].payload_bytes, b.cache.by_type[t].payload_bytes) << t;
  }

  EXPECT_EQ(a.metrics.requests, b.metrics.requests);
  EXPECT_EQ(a.metrics.cache_misses, b.metrics.cache_misses);
  EXPECT_EQ(a.metrics.stale_hits, b.metrics.stale_hits);
  EXPECT_EQ(a.metrics.validations, b.metrics.validations);
  EXPECT_EQ(a.metrics.invalidations, b.metrics.invalidations);
  EXPECT_EQ(a.metrics.files_transferred, b.metrics.files_transferred);
  EXPECT_EQ(a.metrics.server_operations, b.metrics.server_operations);
  EXPECT_EQ(a.metrics.control_bytes, b.metrics.control_bytes);
  EXPECT_EQ(a.metrics.payload_bytes, b.metrics.payload_bytes);
  EXPECT_EQ(a.metrics.total_bytes, b.metrics.total_bytes);
  EXPECT_DOUBLE_EQ(a.metrics.mean_round_trips, b.metrics.mean_round_trips);
  EXPECT_EQ(a.metrics.degraded_serves, b.metrics.degraded_serves);
  EXPECT_EQ(a.metrics.failed_requests, b.metrics.failed_requests);
  EXPECT_EQ(a.metrics.upstream_retries, b.metrics.upstream_retries);
  EXPECT_EQ(a.metrics.invalidations_lost, b.metrics.invalidations_lost);
  EXPECT_EQ(a.metrics.invalidations_queued, b.metrics.invalidations_queued);
  EXPECT_EQ(a.metrics.invalidations_redelivered, b.metrics.invalidations_redelivered);
  EXPECT_EQ(a.metrics.cache_crashes, b.metrics.cache_crashes);
  EXPECT_EQ(a.metrics.unavailable_seconds, b.metrics.unavailable_seconds);
  EXPECT_EQ(a.metrics.retry_wait_seconds, b.metrics.retry_wait_seconds);
}

// Three objects with co-timed modification bursts (all rewritten at the same
// instant, twice), plus a straggler. Exercises the one-RunUntil-per-burst
// batching in the faulted merge-walk: every burst member must land before
// the next request regardless of how the engine groups them.
Workload BurstWorkload() {
  Workload load;
  load.name = "burst";
  for (int i = 0; i < 3; ++i) {
    load.objects.push_back(
        ObjectSpec{"/b" + std::to_string(i) + ".html", FileType::kHtml, 4000, Days(10)});
  }
  load.horizon = SimTime::Epoch() + Days(2);
  for (uint32_t obj = 0; obj < 3; ++obj) {
    load.modifications.push_back(ModificationEvent{At(10), obj, -1});
  }
  load.modifications.push_back(ModificationEvent{At(16), 0, 2000});
  load.modifications.push_back(ModificationEvent{At(16), 1, -1});
  load.modifications.push_back(ModificationEvent{At(30), 2, -1});  // trailing burst of one
  for (int64_t h : {1, 2, 12, 20}) {
    for (uint32_t obj = 0; obj < 3; ++obj) {
      load.requests.push_back(RequestEvent{At(h), obj, 0, false});
    }
  }
  load.Finalize();
  return load;
}

// Co-timed bursts must be invisible to the statistics: the armed (event
// queue, batched RunUntil) and plain (merge-walk) paths agree field-exactly
// on a workload built from same-timestamp modification groups.
TEST(FaultNoOpPropertyTest, CoTimedModificationBurstsBatchIdentically) {
  const Workload load = BurstWorkload();
  const std::vector<PolicyConfig> policies = {
      PolicyConfig::Ttl(Hours(5)), PolicyConfig::Alex(0.1), PolicyConfig::Invalidation()};
  for (const PolicyConfig& policy : policies) {
    SimulationConfig plain = SimulationConfig::Optimized(policy);
    SimulationConfig armed = plain;
    armed.faults.armed = true;
    const SimulationResult want = RunSimulation(load, plain);
    const SimulationResult got = RunSimulation(load, armed);
    SCOPED_TRACE(policy.Describe());
    ExpectIdenticalResults(want, got);
  }
}

// The headline no-op property: arming the fault machinery with every knob at
// zero must be invisible — the event-queue replay produces the exact same
// statistics as the plain merge-walk, for every policy and retrieval mode.
TEST(FaultNoOpPropertyTest, ArmedZeroFaultsMatchFaultFreePathExactly) {
  const Workload campus = GenerateCampusWorkload(CampusServerProfile::Fas()).workload;
  const Workload micro = MicroWorkload();
  const std::vector<PolicyConfig> policies = {
      PolicyConfig::Ttl(Hours(5)), PolicyConfig::Alex(0.1), PolicyConfig::Invalidation()};
  for (const Workload* load : {&micro, &campus}) {
    for (const PolicyConfig& policy : policies) {
      for (const bool base : {false, true}) {
        SimulationConfig plain =
            base ? SimulationConfig::Base(policy) : SimulationConfig::Optimized(policy);
        SimulationConfig armed = plain;
        armed.faults.armed = true;  // every knob still zero
        ASSERT_FALSE(plain.faults.Enabled());
        ASSERT_TRUE(armed.faults.Enabled());
        const SimulationResult want = RunSimulation(*load, plain);
        const SimulationResult got = RunSimulation(*load, armed);
        SCOPED_TRACE(load->name + " / " + policy.Describe() + (base ? " / base" : " / optimized"));
        ExpectIdenticalResults(want, got);
      }
    }
  }
}

TEST(FaultSimulationTest, FixedSeedRunsAreBitReproducible) {
  const Workload load = GenerateCampusWorkload(CampusServerProfile::Fas()).workload;
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Invalidation());
  config.faults.loss_rate = 0.3;
  config.faults.seed = 42;
  config.faults.server_downtime.push_back({At(24), At(30)});
  config.faults.cache_crashes.push_back({At(48), Hours(1)});
  const SimulationResult first = RunSimulation(load, config);
  const SimulationResult second = RunSimulation(load, config);
  ExpectIdenticalResults(first, second);
  EXPECT_GT(first.metrics.upstream_retries, 0u);  // the faults actually fired
}

TEST(FaultSimulationTest, LossCausesRetriesAndRetryWait) {
  const Workload load = GenerateCampusWorkload(CampusServerProfile::Fas()).workload;
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(10)));
  config.faults.loss_rate = 0.3;
  const SimulationResult result = RunSimulation(load, config);
  EXPECT_GT(result.metrics.upstream_retries, 0u);
  EXPECT_GT(result.metrics.retry_wait_seconds, 0);
  // Retransmitted control messages cost real wire bytes: the faulted run
  // must be strictly more expensive than the clean one.
  SimulationConfig clean = config;
  clean.faults = FaultConfig{};
  EXPECT_GT(result.cache.bytes_to_upstream, RunSimulation(load, clean).cache.bytes_to_upstream);
}

TEST(FaultSimulationTest, TotalLossDegradesToLocalServes) {
  // Every exchange fails: the h12 and h20 TTL refreshes cannot reach the
  // origin, so the cache serves its (by then stale) local copy and flags it.
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(5)));
  config.faults.loss_rate = 1.0;
  const SimulationResult result = RunSimulation(MicroWorkload(), config);
  EXPECT_EQ(result.metrics.degraded_serves, 2u);
  EXPECT_GE(result.metrics.stale_hits, 1u);  // the h12 serve is oracle-stale
  EXPECT_EQ(result.metrics.cache_misses, 0u);
  EXPECT_EQ(result.server.get_requests, 0u);
}

TEST(FaultSimulationTest, DowntimeQueuesInvalidationsAndRedelivers) {
  // Origin down for [h9, h11): the h10 invalidation cannot be sent, is
  // parked, and the redelivery timer flushes it once the origin is back —
  // before the h12 request, which therefore re-fetches instead of serving
  // stale.
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Invalidation());
  config.faults.server_downtime.push_back({At(9), At(11)});
  const SimulationResult result = RunSimulation(MicroWorkload(), config);
  EXPECT_GE(result.metrics.invalidations_queued, 1u);
  EXPECT_GE(result.metrics.invalidations_redelivered, 1u);
  EXPECT_EQ(result.metrics.stale_hits, 0u);
  EXPECT_EQ(result.metrics.cache_misses, 1u);  // the h12 refetch
}

TEST(FaultSimulationTest, LostInvalidationCausesBoundedStaleWindow) {
  // The notice itself is lost in transit (counted), parked, and redriven by
  // the retry timer 5 minutes later — the cache is stale only inside that
  // window, and the h12 request already sees the redelivered notice.
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Invalidation());
  config.faults.loss_rate = 1.0;
  config.faults.retry.max_attempts = 1;  // keep fetch accounting simple
  // Only the h10 invalidation talks upstream in this schedule before h12;
  // all requests before the change are free local hits.
  const SimulationResult result = RunSimulation(MicroWorkload({1, 2}), config);
  EXPECT_GE(result.metrics.invalidations_lost, 1u);
  EXPECT_GE(result.metrics.invalidations_queued, 1u);
  EXPECT_EQ(result.metrics.stale_hits, 0u);  // no request fell in the window
}

TEST(FaultSimulationTest, CrashDuringOutageFailsRequestsAndCounts) {
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(48)));
  config.faults.cache_crashes.push_back({At(5), Hours(1)});
  // Request in the middle of the outage (hour 5.5 = minute 330).
  Workload load = MicroWorkload({1, 12, 20});
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Minutes(330), 0, 0, false});
  load.Finalize();
  const SimulationResult result = RunSimulation(load, config);
  EXPECT_EQ(result.metrics.cache_crashes, 1u);
  EXPECT_EQ(result.metrics.failed_requests, 1u);
  EXPECT_EQ(result.metrics.unavailable_seconds, Hours(1).seconds());
}

TEST(FaultSimulationTest, TrustSnapshotRecoveryServesWithoutTraffic) {
  // TTL 48h: the snapshot restored at h6 still covers the h12 request, so a
  // trusted recovery serves it locally (stale: the h10 change is invisible).
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(48)));
  config.faults.cache_crashes.push_back({At(5), Hours(1)});
  config.faults.crash_recovery = CrashRecovery::kTrustSnapshot;
  const SimulationResult result = RunSimulation(MicroWorkload(), config);
  EXPECT_EQ(result.metrics.cache_misses, 0u);
  EXPECT_GE(result.metrics.stale_hits, 1u);
  EXPECT_EQ(result.server.get_requests, 0u);
}

TEST(FaultSimulationTest, RevalidateAllRecoveryIssuesConditionalGets) {
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(48)));
  config.faults.cache_crashes.push_back({At(5), Hours(1)});
  config.faults.crash_recovery = CrashRecovery::kRevalidateAll;
  const SimulationResult result = RunSimulation(MicroWorkload(), config);
  // h12: revalidation catches the h10 change (full body over IMS).
  EXPECT_EQ(result.metrics.validations, 1u);
  EXPECT_EQ(result.metrics.cache_misses, 1u);
  EXPECT_EQ(result.metrics.stale_hits, 0u);
}

TEST(FaultSimulationTest, ColdStartRecoveryRefetchesEverything) {
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(48)));
  config.faults.cache_crashes.push_back({At(5), Hours(1)});
  config.faults.crash_recovery = CrashRecovery::kColdStart;
  const SimulationResult result = RunSimulation(MicroWorkload(), config);
  EXPECT_GE(result.cache.misses_cold, 1u);  // h12 starts from an empty cache
  EXPECT_EQ(result.metrics.stale_hits, 0u);
}

TEST(FaultSimulationTest, AutoRecoveryIsConservativeForInvalidation) {
  // §6: after a crash an invalidation cache cannot know which notices it
  // missed while dark (here: the h5.5 change), so kAuto revalidates all.
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Invalidation());
  config.faults.cache_crashes.push_back({At(5), Hours(1)});
  Workload load = MicroWorkload();
  load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Minutes(330), 0, -1});
  load.Finalize();
  const SimulationResult result = RunSimulation(load, config);
  EXPECT_EQ(result.metrics.stale_hits, 0u);
  // The undeliverable mid-outage notice was parked and redriven at restart.
  EXPECT_GE(result.metrics.invalidations_queued, 1u);
  EXPECT_GE(result.metrics.invalidations_redelivered, 1u);
}

TEST(FaultSimulationTest, LeaseTurnsSilentStalenessIntoDegradedServes) {
  // Origin dark for [h9, h13): the h10 notice is undeliverable and the h12
  // request falls inside the partition. Plain invalidation trusts its copy
  // and serves silently stale; a 1-hour lease has expired by h12, so the
  // cache tries to revalidate, fails, and at least flags the serve.
  Workload load = MicroWorkload();
  SimulationConfig silent = SimulationConfig::Optimized(PolicyConfig::Invalidation());
  silent.faults.server_downtime.push_back({At(9), At(13)});
  const SimulationResult trusting = RunSimulation(load, silent);
  EXPECT_GE(trusting.metrics.stale_hits, 1u);
  EXPECT_EQ(trusting.metrics.degraded_serves, 0u);  // silent: nobody noticed

  SimulationConfig leased = silent;
  leased.policy = PolicyConfig::Invalidation(Hours(1));
  const SimulationResult hedged = RunSimulation(load, leased);
  EXPECT_GE(hedged.metrics.degraded_serves, 1u);  // detected, not silent
}

}  // namespace
}  // namespace webcc
