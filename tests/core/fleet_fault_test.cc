// Per-link fault plans through RunFleetSimulation: the armed-all-zero
// no-op, member-targeted fault isolation, crash/restart through the
// snapshot path, and the bit-identical --jobs sharding guarantee with
// faults enabled (the fault-free sharding identity lives in fleet_test.cc).

#include "src/core/fleet.h"

#include <gtest/gtest.h>

#include "src/core/simulation.h"
#include "src/core/sweep_runner.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

const Workload& FaultFleetLoad() {
  static const Workload load = [] {
    WorrellConfig config;
    config.num_files = 80;
    config.duration = Days(10);
    config.requests_per_second = 0.05;
    config.num_clients = 64;
    config.seed = 777;
    return GenerateWorrellWorkload(config);
  }();
  return load;
}

FleetConfig MakeConfig(PolicyConfig policy, uint32_t caches) {
  FleetConfig config;
  config.policy = policy;
  config.num_caches = caches;
  return config;
}

LinkFaultOverride MemberCrash(uint32_t member, SimDuration at, SimDuration outage) {
  LinkFaultOverride over;
  over.link = member;
  over.crashes.push_back({SimTime::Epoch() + at, outage});
  return over;
}

void ExpectMembersIdentical(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.members.size(), b.members.size());
  for (size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].requests, b.members[i].requests) << i;
    EXPECT_EQ(a.members[i].stale_hits, b.members[i].stale_hits) << i;
    EXPECT_EQ(a.members[i].degraded_serves, b.members[i].degraded_serves) << i;
    EXPECT_EQ(a.members[i].failed_requests, b.members[i].failed_requests) << i;
    EXPECT_EQ(a.members[i].crashes, b.members[i].crashes) << i;
    EXPECT_EQ(a.members[i].unavailable_seconds, b.members[i].unavailable_seconds) << i;
  }
}

void ExpectFleetsIdentical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.policy_desc, b.policy_desc);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.stale_hits, b.stale_hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.total_link_bytes, b.total_link_bytes);
  EXPECT_EQ(a.final_subscriptions, b.final_subscriptions);
  EXPECT_EQ(a.peak_subscriptions, b.peak_subscriptions);
  EXPECT_EQ(a.server.invalidations_sent, b.server.invalidations_sent);
  EXPECT_EQ(a.server.invalidations_delivered, b.server.invalidations_delivered);
  EXPECT_EQ(a.server.bytes_sent, b.server.bytes_sent);
  ExpectMembersIdentical(a, b);
}

TEST(FleetFaultTest, ArmedAllZeroFaultsAreAFleetNoOp) {
  // Routing member worlds through the faulted engine with every knob zero
  // must be invisible, field by field, including the per-member spread.
  for (const PolicyConfig& policy :
       {PolicyConfig::Alex(0.2), PolicyConfig::Invalidation()}) {
    const FleetConfig plain = MakeConfig(policy, 4);
    FleetConfig armed = plain;
    armed.faults.armed = true;
    const FleetResult base = RunFleetSimulation(FaultFleetLoad(), plain);
    const FleetResult faulted = RunFleetSimulation(FaultFleetLoad(), armed);
    ExpectFleetsIdentical(base, faulted);
  }
}

TEST(FleetFaultTest, FaultedShardingIsFieldIdenticalAtAnyJobCount) {
  FleetConfig config = MakeConfig(PolicyConfig::Invalidation(), 4);
  config.faults.loss_rate = 0.1;
  LinkFaultOverride lossy;
  lossy.link = 2;
  lossy.loss_rate = 0.6;
  config.faults.link_overrides.push_back(lossy);
  config.faults.link_overrides.push_back(MemberCrash(0, Days(3), Hours(6)));
  const FleetResult serial = RunFleetSimulation(FaultFleetLoad(), config);
  SweepRunner one_job(1);
  SweepRunner eight_jobs(8);
  const FleetResult sharded1 = RunFleetSimulation(FaultFleetLoad(), config, one_job);
  const FleetResult sharded8 = RunFleetSimulation(FaultFleetLoad(), config, eight_jobs);
  ExpectFleetsIdentical(serial, sharded1);
  ExpectFleetsIdentical(serial, sharded8);
}

TEST(FleetFaultTest, MemberTargetedCrashDarkensOnlyThatMember) {
  FleetConfig config = MakeConfig(PolicyConfig::Invalidation(), 3);
  config.faults.link_overrides.push_back(MemberCrash(1, Days(4), Hours(12)));
  const FleetResult result = RunFleetSimulation(FaultFleetLoad(), config);
  ASSERT_EQ(result.members.size(), 3u);
  EXPECT_EQ(result.members[1].crashes, 1u);
  EXPECT_GT(result.members[1].unavailable_seconds, 0);
  for (uint32_t m : {0u, 2u}) {
    EXPECT_EQ(result.members[m].crashes, 0u) << m;
    EXPECT_EQ(result.members[m].unavailable_seconds, 0) << m;
    EXPECT_EQ(result.members[m].failed_requests, 0u) << m;
  }
  EXPECT_EQ(result.DarkMembers(), 1u);
}

TEST(FleetFaultTest, MemberTargetedTotalLossIsolatesStaleness) {
  // Member 0's link drops everything — including its invalidation
  // notices, so it silently serves stale from its preloaded copies (the
  // §1 weakness, confined to one holder). Siblings keep a perfect
  // network and stay perfectly consistent.
  FleetConfig config = MakeConfig(PolicyConfig::Invalidation(), 3);
  LinkFaultOverride dead;
  dead.link = 0;
  dead.loss_rate = 1.0;
  config.faults.link_overrides.push_back(dead);
  const FleetResult result = RunFleetSimulation(FaultFleetLoad(), config);
  ASSERT_EQ(result.members.size(), 3u);
  EXPECT_GT(result.members[0].stale_hits, 0u);
  for (uint32_t m : {1u, 2u}) {
    EXPECT_EQ(result.members[m].stale_hits, 0u) << m;
    EXPECT_EQ(result.members[m].degraded_serves, 0u) << m;
    EXPECT_EQ(result.members[m].failed_requests, 0u) << m;
  }
  EXPECT_GT(result.WorstMemberStaleRate(), 0.0);
}

TEST(FleetFaultTest, LinkFaultsDrawIndependentPerMemberStreams) {
  // The same base loss rate must not replay the same loss pattern on every
  // link: members fork their own substreams, so their degradation differs
  // (while totals stay deterministic — asserted by the sharding test).
  FleetConfig config = MakeConfig(PolicyConfig::Invalidation(), 4);
  config.faults.loss_rate = 0.35;
  const FleetResult result = RunFleetSimulation(FaultFleetLoad(), config);
  ASSERT_EQ(result.members.size(), 4u);
  bool any_difference = false;
  for (size_t i = 1; i < result.members.size(); ++i) {
    if (result.members[i].degraded_serves != result.members[0].degraded_serves ||
        result.members[i].stale_hits != result.members[0].stale_hits) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FleetFaultTest, CrashedMemberRestartsAndServesAgain) {
  // A mid-run crash with a bounded outage: the member loses requests while
  // dark but serves the tail of its shard after restart.
  FleetConfig config = MakeConfig(PolicyConfig::Invalidation(), 2);
  config.faults.link_overrides.push_back(MemberCrash(1, Days(5), Hours(2)));
  const FleetResult result = RunFleetSimulation(FaultFleetLoad(), config);
  ASSERT_EQ(result.members.size(), 2u);
  EXPECT_EQ(result.members[1].crashes, 1u);
  EXPECT_GT(result.members[1].failed_requests, 0u);
  // The member came back: it served more requests than it failed.
  EXPECT_GT(result.members[1].requests,
            result.members[1].failed_requests);
  // Aggregate conservation: every sharded request is accounted somewhere.
  EXPECT_EQ(result.requests, FaultFleetLoad().requests.size());
}

}  // namespace
}  // namespace webcc
