#include "src/core/fleet.h"

#include <gtest/gtest.h>

#include "src/core/simulation.h"
#include "src/core/sweep_runner.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

const Workload& FleetLoad() {
  static const Workload load = [] {
    WorrellConfig config;
    config.num_files = 80;
    config.duration = Days(10);
    config.requests_per_second = 0.05;
    config.num_clients = 64;
    config.seed = 555;
    return GenerateWorrellWorkload(config);
  }();
  return load;
}

FleetConfig MakeConfig(PolicyConfig policy, uint32_t caches) {
  FleetConfig config;
  config.policy = policy;
  config.num_caches = caches;
  return config;
}

TEST(FleetTest, AllRequestsServedAcrossMembers) {
  const FleetResult result = RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Ttl(Hours(24)), 8));
  EXPECT_EQ(result.requests, FleetLoad().requests.size());
  EXPECT_EQ(result.num_caches, 8u);
}

TEST(FleetTest, SingleCacheFleetMatchesCollapsedSimulation) {
  const FleetResult fleet =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Alex(0.2), 1));
  const SimulationResult solo =
      RunSimulation(FleetLoad(), SimulationConfig::Optimized(PolicyConfig::Alex(0.2)));
  EXPECT_EQ(fleet.total_link_bytes, solo.metrics.total_bytes);
  EXPECT_EQ(fleet.stale_hits, solo.metrics.stale_hits);
  EXPECT_EQ(fleet.misses, solo.metrics.cache_misses);
}

TEST(FleetTest, InvalidationBookkeepingScalesWithFleetSize) {
  // §1: the server must track every (cache, object) pair. Preloaded fleets
  // subscribe everything everywhere: N * objects live subscriptions.
  const size_t objects = FleetLoad().objects.size();
  for (uint32_t n : {1u, 4u, 16u}) {
    const FleetResult result =
        RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), n));
    EXPECT_EQ(result.peak_subscriptions, n * objects) << n;
    EXPECT_EQ(result.final_subscriptions, n * objects) << n;
  }
}

TEST(FleetTest, TimeBasedNeedsNoBookkeeping) {
  const FleetResult result =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Alex(0.1), 16));
  EXPECT_EQ(result.peak_subscriptions, 0u);
}

TEST(FleetTest, InvalidationFanOutScalesWithHolders) {
  // Every change notifies every subscribed cache: notices = changes * N for
  // a preloaded fleet.
  const uint64_t changes = FleetLoad().modifications.size();
  const FleetResult one =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), 1));
  const FleetResult sixteen =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), 16));
  EXPECT_EQ(one.server.invalidations_sent, changes);
  EXPECT_EQ(sixteen.server.invalidations_sent, 16 * changes);
}

TEST(FleetTest, TimeBasedServerOpsScaleWithRequestsNotFleetSize) {
  // Same request stream split across more caches costs the server MORE for
  // time-based protocols too (less sharing), but bounded by the request
  // count — not multiplied by the holder population like invalidation.
  const FleetResult small =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Alex(0.1), 2));
  const FleetResult large =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Alex(0.1), 16));
  EXPECT_GE(large.server.TotalOperations(), small.server.TotalOperations());
  EXPECT_LE(large.server.TotalOperations(), FleetLoad().requests.size());
}

TEST(FleetTest, MembersAreIndependentCaches) {
  // A change invalidates everyone; each member refetches on ITS next touch,
  // so misses can exceed a single shared cache's.
  const FleetResult fleet =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), 8));
  const SimulationResult solo =
      RunSimulation(FleetLoad(), SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  EXPECT_GE(fleet.misses, solo.metrics.cache_misses);
  EXPECT_EQ(fleet.stale_hits, 0u);
}

TEST(FleetTest, PerfectConsistencyAcrossWholeFleet) {
  for (uint32_t n : {2u, 8u}) {
    const FleetResult result =
        RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), n));
    EXPECT_EQ(result.stale_hits, 0u) << n;
  }
}

void ExpectFleetResultsIdentical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.policy_desc, b.policy_desc);
  EXPECT_EQ(a.num_caches, b.num_caches);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.stale_hits, b.stale_hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.total_link_bytes, b.total_link_bytes);
  EXPECT_EQ(a.final_subscriptions, b.final_subscriptions);
  EXPECT_EQ(a.peak_subscriptions, b.peak_subscriptions);
  EXPECT_EQ(a.server.get_requests, b.server.get_requests);
  EXPECT_EQ(a.server.ims_queries, b.server.ims_queries);
  EXPECT_EQ(a.server.ims_not_modified, b.server.ims_not_modified);
  EXPECT_EQ(a.server.files_transferred, b.server.files_transferred);
  EXPECT_EQ(a.server.bytes_sent, b.server.bytes_sent);
  EXPECT_EQ(a.server.bytes_received, b.server.bytes_received);
  EXPECT_EQ(a.server.invalidations_sent, b.server.invalidations_sent);
  EXPECT_EQ(a.server.invalidations_delivered, b.server.invalidations_delivered);
}

TEST(FleetTest, ShardedExecutionIsFieldIdenticalAtAnyJobCount) {
  // The sharded walk must be a pure scheduling change: member worlds are
  // independent and summed in member order, so jobs=8 equals jobs=1 equals
  // the runner-free serial path, field by field.
  for (const PolicyConfig& policy :
       {PolicyConfig::Alex(0.2), PolicyConfig::Invalidation()}) {
    const FleetConfig config = MakeConfig(policy, 8);
    const FleetResult serial = RunFleetSimulation(FleetLoad(), config);
    SweepRunner one_job(1);
    SweepRunner eight_jobs(8);
    const FleetResult sharded1 = RunFleetSimulation(FleetLoad(), config, one_job);
    const FleetResult sharded8 = RunFleetSimulation(FleetLoad(), config, eight_jobs);
    ExpectFleetResultsIdentical(serial, sharded1);
    ExpectFleetResultsIdentical(serial, sharded8);
  }
}

}  // namespace
}  // namespace webcc
