#include "src/core/fleet.h"

#include <gtest/gtest.h>

#include "src/core/simulation.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

const Workload& FleetLoad() {
  static const Workload load = [] {
    WorrellConfig config;
    config.num_files = 80;
    config.duration = Days(10);
    config.requests_per_second = 0.05;
    config.num_clients = 64;
    config.seed = 555;
    return GenerateWorrellWorkload(config);
  }();
  return load;
}

FleetConfig MakeConfig(PolicyConfig policy, uint32_t caches) {
  FleetConfig config;
  config.policy = policy;
  config.num_caches = caches;
  return config;
}

TEST(FleetTest, AllRequestsServedAcrossMembers) {
  const FleetResult result = RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Ttl(Hours(24)), 8));
  EXPECT_EQ(result.requests, FleetLoad().requests.size());
  EXPECT_EQ(result.num_caches, 8u);
}

TEST(FleetTest, SingleCacheFleetMatchesCollapsedSimulation) {
  const FleetResult fleet =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Alex(0.2), 1));
  const SimulationResult solo =
      RunSimulation(FleetLoad(), SimulationConfig::Optimized(PolicyConfig::Alex(0.2)));
  EXPECT_EQ(fleet.total_link_bytes, solo.metrics.total_bytes);
  EXPECT_EQ(fleet.stale_hits, solo.metrics.stale_hits);
  EXPECT_EQ(fleet.misses, solo.metrics.cache_misses);
}

TEST(FleetTest, InvalidationBookkeepingScalesWithFleetSize) {
  // §1: the server must track every (cache, object) pair. Preloaded fleets
  // subscribe everything everywhere: N * objects live subscriptions.
  const size_t objects = FleetLoad().objects.size();
  for (uint32_t n : {1u, 4u, 16u}) {
    const FleetResult result =
        RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), n));
    EXPECT_EQ(result.peak_subscriptions, n * objects) << n;
    EXPECT_EQ(result.final_subscriptions, n * objects) << n;
  }
}

TEST(FleetTest, TimeBasedNeedsNoBookkeeping) {
  const FleetResult result =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Alex(0.1), 16));
  EXPECT_EQ(result.peak_subscriptions, 0u);
}

TEST(FleetTest, InvalidationFanOutScalesWithHolders) {
  // Every change notifies every subscribed cache: notices = changes * N for
  // a preloaded fleet.
  const uint64_t changes = FleetLoad().modifications.size();
  const FleetResult one =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), 1));
  const FleetResult sixteen =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), 16));
  EXPECT_EQ(one.server.invalidations_sent, changes);
  EXPECT_EQ(sixteen.server.invalidations_sent, 16 * changes);
}

TEST(FleetTest, TimeBasedServerOpsScaleWithRequestsNotFleetSize) {
  // Same request stream split across more caches costs the server MORE for
  // time-based protocols too (less sharing), but bounded by the request
  // count — not multiplied by the holder population like invalidation.
  const FleetResult small =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Alex(0.1), 2));
  const FleetResult large =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Alex(0.1), 16));
  EXPECT_GE(large.server.TotalOperations(), small.server.TotalOperations());
  EXPECT_LE(large.server.TotalOperations(), FleetLoad().requests.size());
}

TEST(FleetTest, MembersAreIndependentCaches) {
  // A change invalidates everyone; each member refetches on ITS next touch,
  // so misses can exceed a single shared cache's.
  const FleetResult fleet =
      RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), 8));
  const SimulationResult solo =
      RunSimulation(FleetLoad(), SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  EXPECT_GE(fleet.misses, solo.metrics.cache_misses);
  EXPECT_EQ(fleet.stale_hits, 0u);
}

TEST(FleetTest, PerfectConsistencyAcrossWholeFleet) {
  for (uint32_t n : {2u, 8u}) {
    const FleetResult result =
        RunFleetSimulation(FleetLoad(), MakeConfig(PolicyConfig::Invalidation(), n));
    EXPECT_EQ(result.stale_hits, 0u) << n;
  }
}

}  // namespace
}  // namespace webcc
