// Per-link fault plans through RunHierarchySimulation: a trunk (server->L2)
// fault stales BOTH leaves, leaf-link faults stay isolated, queued child
// invalidations redeliver when a leaf comes back, and the armed-all-zero
// no-op holds for the whole tree.

#include "src/core/hierarchy.h"

#include <gtest/gtest.h>

#include "src/core/simulation.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

const Workload& TreeLoad() {
  static const Workload load = [] {
    WorrellConfig config;
    config.num_files = 60;
    config.duration = Days(10);
    config.requests_per_second = 0.05;
    config.num_clients = 64;
    config.seed = 4242;
    return GenerateWorrellWorkload(config);
  }();
  return load;
}

LinkFaultOverride LinkLoss(HierarchyLink link, double rate) {
  LinkFaultOverride over;
  over.link = static_cast<uint32_t>(link);
  over.loss_rate = rate;
  return over;
}

void ExpectTierIdentical(const CacheStats& a, const CacheStats& b, const char* tier) {
  EXPECT_EQ(a.requests, b.requests) << tier;
  EXPECT_EQ(a.stale_hits, b.stale_hits) << tier;
  EXPECT_EQ(a.hits_fresh, b.hits_fresh) << tier;
  EXPECT_EQ(a.hits_validated, b.hits_validated) << tier;
  EXPECT_EQ(a.Misses(), b.Misses()) << tier;
  EXPECT_EQ(a.invalidations_received, b.invalidations_received) << tier;
  EXPECT_EQ(a.degraded_serves, b.degraded_serves) << tier;
  EXPECT_EQ(a.failed_requests, b.failed_requests) << tier;
  EXPECT_EQ(a.crashes, b.crashes) << tier;
  EXPECT_EQ(a.LinkBytes(), b.LinkBytes()) << tier;
}

void ExpectTreesIdentical(const HierarchyResult& a, const HierarchyResult& b) {
  ExpectTierIdentical(a.l2, b.l2, "l2");
  ExpectTierIdentical(a.l1a, b.l1a, "l1a");
  ExpectTierIdentical(a.l1b, b.l1b, "l1b");
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.child_invalidations_sent, b.child_invalidations_sent);
  EXPECT_EQ(a.child_invalidations_delivered, b.child_invalidations_delivered);
  EXPECT_EQ(a.child_invalidations_dropped, b.child_invalidations_dropped);
  EXPECT_EQ(a.child_invalidations_queued, b.child_invalidations_queued);
  EXPECT_EQ(a.child_invalidations_redelivered, b.child_invalidations_redelivered);
  EXPECT_EQ(a.pending_child_invalidations, b.pending_child_invalidations);
}

TEST(HierarchyFaultTest, ArmedAllZeroFaultsAreATreeNoOp) {
  for (const PolicyConfig& policy :
       {PolicyConfig::Alex(0.2), PolicyConfig::Invalidation()}) {
    HierarchyConfig plain;
    plain.policy = policy;
    HierarchyConfig armed = plain;
    armed.faults.armed = true;
    const HierarchyResult base = RunHierarchySimulation(TreeLoad(), plain);
    const HierarchyResult faulted = RunHierarchySimulation(TreeLoad(), armed);
    ExpectTreesIdentical(base, faulted);
  }
}

TEST(HierarchyFaultTest, TrunkLossStalesBothLeaves) {
  // Invalidations lost on the server->L2 trunk never reach the tree at
  // all: cache-2 keeps serving its stale copy and both leaves inherit the
  // staleness — the §1 weakness amplified by sharing a parent.
  HierarchyConfig config;
  config.policy = PolicyConfig::Invalidation();
  config.faults.link_overrides.push_back(LinkLoss(HierarchyLink::kServerL2, 1.0));
  const HierarchyResult result = RunHierarchySimulation(TreeLoad(), config);
  EXPECT_GT(result.l1a.stale_hits + result.l1a.degraded_serves, 0u);
  EXPECT_GT(result.l1b.stale_hits + result.l1b.degraded_serves, 0u);
  EXPECT_GT(result.WorstLeafStaleRate(), 0.0);
}

TEST(HierarchyFaultTest, LeafLinkLossIsIsolatedToThatLeaf) {
  // Only the L2->L1a edge is lossy: leaf B and the parent keep a perfect
  // network, so whatever staleness appears is A's alone.
  HierarchyConfig config;
  config.policy = PolicyConfig::Invalidation();
  config.faults.link_overrides.push_back(LinkLoss(HierarchyLink::kL2L1a, 1.0));
  const HierarchyResult result = RunHierarchySimulation(TreeLoad(), config);
  EXPECT_GT(result.l1a.stale_hits + result.l1a.degraded_serves, 0u);
  EXPECT_EQ(result.l1b.stale_hits, 0u);
  EXPECT_EQ(result.l1b.degraded_serves, 0u);
  EXPECT_EQ(result.l2.stale_hits, 0u);
  // The parent's delivery ledger records the losses on the A edge.
  EXPECT_GT(result.child_invalidations_dropped + result.child_invalidations_queued, 0u);
}

TEST(HierarchyFaultTest, LeafCrashQueuesAndRedeliversChildInvalidations) {
  // Leaf A goes dark mid-run; cache-2 queues notices for the unreachable
  // child and redelivers them after restart, so A is consistent again by
  // the end of the run instead of permanently stale.
  HierarchyConfig config;
  config.policy = PolicyConfig::Invalidation();
  LinkFaultOverride crash;
  crash.link = static_cast<uint32_t>(HierarchyLink::kL2L1a);
  crash.crashes.push_back({SimTime::Epoch() + Days(4), Hours(12)});
  config.faults.link_overrides.push_back(crash);
  const HierarchyResult result = RunHierarchySimulation(TreeLoad(), config);
  EXPECT_EQ(result.l1a.crashes, 1u);
  EXPECT_GT(result.l1a.unavailable_seconds, 0);
  EXPECT_EQ(result.l1b.crashes, 0u);
  EXPECT_EQ(result.l2.crashes, 0u);
  EXPECT_GT(result.child_invalidations_queued, 0u);
  EXPECT_GT(result.child_invalidations_redelivered, 0u);
  EXPECT_EQ(result.DarkTiers(), 1u);
}

TEST(HierarchyFaultTest, FaultedTreeIsSeedReproducible) {
  HierarchyConfig config;
  config.policy = PolicyConfig::Invalidation();
  config.faults.loss_rate = 0.2;
  config.faults.seed = 99;
  config.faults.link_overrides.push_back(LinkLoss(HierarchyLink::kL2L1b, 0.5));
  const HierarchyResult first = RunHierarchySimulation(TreeLoad(), config);
  const HierarchyResult second = RunHierarchySimulation(TreeLoad(), config);
  ExpectTreesIdentical(first, second);
}

TEST(HierarchyFaultTest, LinksDrawIndependentFaultStreams) {
  // One base loss rate, three links: the forked per-link substreams must
  // not mirror each other, so the two leaves degrade differently.
  HierarchyConfig config;
  config.policy = PolicyConfig::Invalidation();
  config.faults.loss_rate = 0.35;
  const HierarchyResult result = RunHierarchySimulation(TreeLoad(), config);
  EXPECT_NE(result.l1a.degraded_serves * 1000000 + result.l1a.stale_hits,
            result.l1b.degraded_serves * 1000000 + result.l1b.stale_hits);
}

TEST(HierarchyFaultTest, RequestSplitIsConservedUnderFaults) {
  HierarchyConfig config;
  config.policy = PolicyConfig::Invalidation();
  config.faults.loss_rate = 0.3;
  LinkFaultOverride crash;
  crash.link = static_cast<uint32_t>(HierarchyLink::kL2L1b);
  crash.crashes.push_back({SimTime::Epoch() + Days(3), Hours(6)});
  config.faults.link_overrides.push_back(crash);
  const HierarchyResult result = RunHierarchySimulation(TreeLoad(), config);
  EXPECT_EQ(result.LeafRequests(), result.requests);
  EXPECT_EQ(result.requests, TreeLoad().requests.size());
}

}  // namespace
}  // namespace webcc
