#include "src/core/hierarchy.h"

#include "src/core/simulation.h"

#include <gtest/gtest.h>

#include "src/http/message.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

Workload TwoClientWorkload() {
  // One object; client 0 requests through cache-1a, client 1 through 1b.
  Workload load;
  load.objects.push_back(ObjectSpec{"/h.html", FileType::kHtml, 6000, Days(10)});
  load.horizon = SimTime::Epoch() + Days(1);
  load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Hours(2), 0, -1});
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(3), 0, 0, false});
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(3) + Minutes(30), 0, 1, false});
  load.Finalize();
  return load;
}

TEST(HierarchyTest, RequestsRoutedByClientParity) {
  HierarchyConfig config;
  config.policy = PolicyConfig::Ttl(Hours(1));
  const HierarchyResult result = RunHierarchySimulation(TwoClientWorkload(), config);
  EXPECT_EQ(result.l1a.requests, 1u);
  EXPECT_EQ(result.l1b.requests, 1u);
  EXPECT_EQ(result.requests, 2u);
}

TEST(HierarchyTest, InvalidationPropagatesDownTheTree) {
  HierarchyConfig config;
  config.policy = PolicyConfig::Invalidation();
  const HierarchyResult result = RunHierarchySimulation(TwoClientWorkload(), config);
  // The change reached cache-2 and both preloaded leaves.
  EXPECT_EQ(result.l2.invalidations_received, 1u);
  EXPECT_EQ(result.l1a.invalidations_received, 1u);
  EXPECT_EQ(result.l1b.invalidations_received, 1u);
  // Perfect consistency end to end.
  EXPECT_EQ(result.LeafStaleHits(), 0u);
}

TEST(HierarchyTest, LeafMissFlowsThroughParent) {
  HierarchyConfig config;
  config.policy = PolicyConfig::Invalidation();
  const HierarchyResult result = RunHierarchySimulation(TwoClientWorkload(), config);
  // First leaf request after the change pulls the file down two links; the
  // second leaf pulls it across its own link only (parent now fresh).
  EXPECT_EQ(result.LeafMisses(), 2u);
  EXPECT_EQ(result.l2.Misses(), 1u);
}

TEST(HierarchyTest, SecondLeafServedFromParentCache) {
  HierarchyConfig config;
  config.policy = PolicyConfig::Ttl(Hours(1));
  config.refresh_mode = RefreshMode::kConditionalGet;
  const HierarchyResult result = RunHierarchySimulation(TwoClientWorkload(), config);
  // TTL 1h, preloaded at epoch: both leaf requests (h3, h3:30) find expired
  // copies and validate through cache-2. Cache-2 itself validates upstream
  // once at h3; at h4 its copy is fresh again.
  EXPECT_EQ(result.server.ims_queries + result.server.get_requests, 1u);
}

TEST(HierarchyTest, TimeBasedHierarchyHasNoIdleTraffic) {
  // No requests at all: time-based protocols cost nothing; invalidation
  // still pays notices on every link (scenario (a) writ small).
  Workload load = TwoClientWorkload();
  load.requests.clear();
  HierarchyConfig ttl_config;
  ttl_config.policy = PolicyConfig::Ttl(Hours(1));
  EXPECT_EQ(RunHierarchySimulation(load, ttl_config).TotalLinkBytes(), 0);

  HierarchyConfig inval_config;
  inval_config.policy = PolicyConfig::Invalidation();
  // 3 notices: server->cache2, cache2->1a, cache2->1b.
  EXPECT_EQ(RunHierarchySimulation(load, inval_config).TotalLinkBytes(),
            3 * kControlMessageBytes);
}

TEST(Figure1ScenarioTest, ProducesAllFourScenarios) {
  const auto outcomes = RunFigure1Scenarios();
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].scenario, "a");
  EXPECT_EQ(outcomes[3].scenario, "d");
}

TEST(Figure1ScenarioTest, ScenarioA_TimeBasedFreeInvalPays) {
  const auto outcomes = RunFigure1Scenarios();
  const auto& a = outcomes[0];
  EXPECT_EQ(a.hier_timebased_bytes, 0);
  EXPECT_EQ(a.collapsed_timebased_bytes, 0);
  EXPECT_EQ(a.hier_invalidation_bytes, 3 * kControlMessageBytes);
  EXPECT_EQ(a.collapsed_invalidation_bytes, kControlMessageBytes);
}

TEST(Figure1ScenarioTest, ScenarioB_StaleServeIsFree) {
  // Keep the vector alive: a reference into a temporary's operator[] result
  // dangles at the end of the statement (found by ASan).
  const auto outcomes = RunFigure1Scenarios();
  const auto& b = outcomes[1];
  EXPECT_EQ(b.hier_timebased_bytes, 0);
  EXPECT_EQ(b.collapsed_timebased_bytes, 0);
  // Invalidation: notices down the tree plus the access re-fetch.
  EXPECT_GT(b.hier_invalidation_bytes, b.collapsed_invalidation_bytes);
  EXPECT_GT(b.collapsed_invalidation_bytes, 0);
}

TEST(Figure1ScenarioTest, ScenarioC_HierarchySavesTimeBasedOnIdleBranch) {
  const auto outcomes = RunFigure1Scenarios();
  const auto& c = outcomes[2];
  // Both protocols move the file; in the hierarchy, invalidation also paid
  // a notice to the idle cache-1b, so time-based is relatively cheaper
  // there (the figure's bias argument).
  EXPECT_GT(c.hier_timebased_bytes, 0);
  EXPECT_GT(c.collapsed_timebased_bytes, 0);
  EXPECT_LE(c.HierRatio(), c.CollapsedRatio());
}

TEST(Figure1ScenarioTest, ScenarioD_OnlyTimeBasedPays) {
  const auto outcomes = RunFigure1Scenarios();
  const auto& d = outcomes[3];
  EXPECT_EQ(d.hier_invalidation_bytes, 0);
  EXPECT_EQ(d.collapsed_invalidation_bytes, 0);
  // Queries up the chain, 304s back: 2 levels * (query + 304) hierarchical,
  // 1 level collapsed.
  EXPECT_EQ(d.hier_timebased_bytes, 4 * kControlMessageBytes);
  EXPECT_EQ(d.collapsed_timebased_bytes, 2 * kControlMessageBytes);
}

TEST(Figure1ScenarioTest, CollapseNeverFavorsTimeBased) {
  // The paper's claim quantified: for every scenario, the time-based-to-
  // invalidation byte ratio in the collapsed topology is >= the ratio in
  // the hierarchy (collapsing biases AGAINST time-based protocols).
  for (const auto& outcome : RunFigure1Scenarios()) {
    if (outcome.hier_invalidation_bytes == 0 || outcome.collapsed_invalidation_bytes == 0) {
      // Scenario (d): invalidation free in both; time-based pays in both —
      // the bias claim is trivially about the time-based side.
      EXPECT_GE(outcome.collapsed_timebased_bytes == 0 ? 0 : 1,
                outcome.hier_timebased_bytes == 0 ? 0 : 1);
      continue;
    }
    EXPECT_GE(outcome.CollapsedRatio(), outcome.HierRatio()) << outcome.scenario;
  }
}

TEST(HierarchyTest, FullWorkloadCollapseBiasOnSynthetic) {
  // End-to-end check on a non-trivial workload: collapsing the hierarchy
  // does not make the time-based protocol look relatively better.
  WorrellConfig wc;
  wc.num_files = 60;
  wc.duration = Days(7);
  wc.requests_per_second = 0.05;
  wc.seed = 17;
  const Workload load = GenerateWorrellWorkload(wc);

  HierarchyConfig ttl_config;
  ttl_config.policy = PolicyConfig::Ttl(Hours(24));
  HierarchyConfig inval_config;
  inval_config.policy = PolicyConfig::Invalidation();
  const double hier_ratio =
      static_cast<double>(RunHierarchySimulation(load, ttl_config).TotalLinkBytes()) /
      static_cast<double>(RunHierarchySimulation(load, inval_config).TotalLinkBytes());

  const auto collapsed_ttl =
      RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(24))));
  const auto collapsed_inval =
      RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  const double collapsed_ratio = static_cast<double>(collapsed_ttl.metrics.total_bytes) /
                                 static_cast<double>(collapsed_inval.metrics.total_bytes);

  EXPECT_GE(collapsed_ratio, hier_ratio * 0.95);  // small tolerance for noise
}

}  // namespace
}  // namespace webcc
