#include "src/core/live_simulation.h"

#include <gtest/gtest.h>

#include "src/origin/server.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

LiveSimulationConfig SmallLiveConfig(PolicyConfig policy) {
  LiveSimulationConfig config;
  config.policy = policy;
  config.num_files = 150;
  config.duration = Days(14);
  config.requests_per_second = 0.05;
  config.seed = 1234;
  return config;
}

TEST(LiveSimulationTest, ProducesPlausibleVolumes) {
  const auto result = RunLiveSimulation(SmallLiveConfig(PolicyConfig::Ttl(Hours(48))));
  // Poisson(0.05/s over 14 days) ~ 60480 expected requests.
  EXPECT_GT(result.metrics.requests, 55000u);
  EXPECT_LT(result.metrics.requests, 66000u);
  EXPECT_GT(result.metrics.total_bytes, 0);
}

TEST(LiveSimulationTest, ChangeRateMatchesLifetimeModel) {
  // Flat lifetimes averaging ~5.85 days over 150 files for 14 days
  // -> ~359 changes expected; invalidation counts one notice per change.
  const auto result = RunLiveSimulation(SmallLiveConfig(PolicyConfig::Invalidation()));
  EXPECT_GT(result.metrics.invalidations, 250u);
  EXPECT_LT(result.metrics.invalidations, 480u);
  EXPECT_EQ(result.metrics.stale_hits, 0u);
}

TEST(LiveSimulationTest, DeterministicInSeed) {
  const auto a = RunLiveSimulation(SmallLiveConfig(PolicyConfig::Alex(0.2)));
  const auto b = RunLiveSimulation(SmallLiveConfig(PolicyConfig::Alex(0.2)));
  EXPECT_EQ(a.metrics.requests, b.metrics.requests);
  EXPECT_EQ(a.metrics.total_bytes, b.metrics.total_bytes);
  EXPECT_EQ(a.metrics.stale_hits, b.metrics.stale_hits);
  auto seeded = SmallLiveConfig(PolicyConfig::Alex(0.2));
  seeded.seed = 4321;
  const auto c = RunLiveSimulation(seeded);
  EXPECT_NE(a.metrics.total_bytes, c.metrics.total_bytes);
}

TEST(LiveSimulationTest, StatisticallyMatchesScriptedWorrell) {
  // The live engine-driven run and the scripted replay implement the same
  // stochastic model; aggregate metrics must agree within sampling noise.
  LiveSimulationConfig live_config = SmallLiveConfig(PolicyConfig::Ttl(Hours(48)));
  live_config.num_files = 300;
  live_config.requests_per_second = 0.08;
  const auto live = RunLiveSimulation(live_config);

  WorrellConfig scripted_config;
  scripted_config.num_files = 300;
  scripted_config.duration = live_config.duration;
  scripted_config.requests_per_second = 0.08;
  scripted_config.seed = 777;  // different stream, same distribution
  const Workload load = GenerateWorrellWorkload(scripted_config);
  const auto scripted =
      RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(48))));

  const double live_mb = live.metrics.TotalMB();
  const double scripted_mb = scripted.metrics.TotalMB();
  EXPECT_NEAR(live_mb / scripted_mb, 1.0, 0.20);
  EXPECT_NEAR(live.metrics.StaleRate(), scripted.metrics.StaleRate(), 0.05);
  EXPECT_NEAR(live.metrics.MissRate(), scripted.metrics.MissRate(), 0.01);
}

TEST(LiveSimulationTest, ZipfSkewConcentratesTraffic) {
  LiveSimulationConfig uniform = SmallLiveConfig(PolicyConfig::Ttl(Hours(24)));
  LiveSimulationConfig skewed = uniform;
  skewed.zipf_skew = 1.1;
  const auto u = RunLiveSimulation(uniform);
  const auto z = RunLiveSimulation(skewed);
  // Skewed popularity re-requests the same objects: more fresh hits, fewer
  // validation round trips per request.
  EXPECT_LT(z.metrics.mean_round_trips, u.metrics.mean_round_trips);
}

TEST(LiveSimulationTest, SeedLivePopulationIsDeterministicInConfigAndRng) {
  // The serve frontend reuses this seeding path, so equal (config, rng)
  // must build bit-identical worlds no matter who calls it.
  const LiveSimulationConfig config = SmallLiveConfig(PolicyConfig::Ttl(Hours(48)));
  OriginServer server_a;
  OriginServer server_b;
  Rng rng_a(config.seed);
  Rng rng_b(config.seed);
  const LivePopulation pop_a = SeedLivePopulation(config, server_a, rng_a);
  const LivePopulation pop_b = SeedLivePopulation(config, server_b, rng_b);

  ASSERT_EQ(pop_a.first_delays.size(), config.num_files);
  ASSERT_EQ(pop_b.first_delays.size(), config.num_files);
  for (uint32_t id = 0; id < config.num_files; ++id) {
    EXPECT_EQ(pop_a.first_delays[id], pop_b.first_delays[id]) << id;
    const WebObject& object_a = server_a.store().Get(static_cast<ObjectId>(id));
    const WebObject& object_b = server_b.store().Get(static_cast<ObjectId>(id));
    EXPECT_EQ(object_a.size_bytes, object_b.size_bytes) << id;
    EXPECT_EQ(object_a.last_modified, object_b.last_modified) << id;
    EXPECT_EQ(object_a.type, object_b.type) << id;
    EXPECT_GE(object_a.size_bytes, 64);  // the lognormal floor
  }

  // A different seed diverges — the population really derives from the rng.
  OriginServer server_c;
  Rng rng_c(config.seed + 1);
  const LivePopulation pop_c = SeedLivePopulation(config, server_c, rng_c);
  bool diverged = false;
  for (uint32_t id = 0; id < config.num_files && !diverged; ++id) {
    diverged = pop_a.first_delays[id] != pop_c.first_delays[id] ||
               server_a.store().Get(static_cast<ObjectId>(id)).size_bytes !=
                   server_c.store().Get(static_cast<ObjectId>(id)).size_bytes;
  }
  EXPECT_TRUE(diverged);
}

TEST(LiveSimulationTest, OutageCausesStaleServesUnderInvalidation) {
  // §6's recovery scenario: during a partition the cache misses the notices
  // and happily serves stale data; the server's retries eventually repair
  // the damage after the outage heals.
  LiveSimulationConfig config = SmallLiveConfig(PolicyConfig::Invalidation());
  config.num_files = 300;
  config.requests_per_second = 0.2;
  config.outage_start = Days(4);
  config.outage_duration = Days(3);
  const auto result = RunLiveSimulation(config);
  EXPECT_GT(result.metrics.stale_hits, 0u);
  EXPECT_GT(result.cache.invalidations_dropped, 0u);
  EXPECT_GT(result.server.invalidation_retries, 0u);
}

TEST(LiveSimulationTest, OutageHarmlessForTimeBasedPolicies) {
  // The same partition costs a TTL cache nothing extra in consistency:
  // expiry happens locally ("the right thing automatically happens").
  LiveSimulationConfig with_outage = SmallLiveConfig(PolicyConfig::Ttl(Hours(24)));
  with_outage.outage_start = Days(4);
  with_outage.outage_duration = Days(3);
  const auto outage_run = RunLiveSimulation(with_outage);
  const auto normal_run = RunLiveSimulation(SmallLiveConfig(PolicyConfig::Ttl(Hours(24))));
  EXPECT_EQ(outage_run.metrics.stale_hits, normal_run.metrics.stale_hits);
  EXPECT_EQ(outage_run.cache.invalidations_dropped, 0u);
}

}  // namespace
}  // namespace webcc
