#include "src/core/metrics.h"

#include <gtest/gtest.h>

#include "src/http/message.h"

namespace webcc {
namespace {

TEST(MetricsTest, EmptyStatsGiveZeroMetrics) {
  const ConsistencyMetrics m = ComputeMetrics(ServerStats{}, CacheStats{});
  EXPECT_EQ(m.requests, 0u);
  EXPECT_EQ(m.total_bytes, 0);
  EXPECT_DOUBLE_EQ(m.MissRate(), 0.0);
  EXPECT_DOUBLE_EQ(m.StaleRate(), 0.0);
}

TEST(MetricsTest, ControlPayloadDecomposition) {
  ServerStats server;
  server.get_requests = 2;
  server.ims_queries = 3;
  server.invalidations_sent = 4;
  server.files_transferred = 3;
  // Wire: 2 GETs (2 ctrl each) + 3 queries (2 ctrl each) + 4 invalidations
  // (1 ctrl each) + 10000 payload bytes.
  server.bytes_received = 5 * kControlMessageBytes;
  server.bytes_sent = (2 + 3 + 4) * kControlMessageBytes + 10000;

  const ConsistencyMetrics m = ComputeMetrics(server, CacheStats{});
  EXPECT_EQ(m.control_bytes, 14 * kControlMessageBytes);
  EXPECT_EQ(m.payload_bytes, 10000);
  EXPECT_EQ(m.total_bytes, m.control_bytes + m.payload_bytes);
  EXPECT_EQ(m.server_operations, 9u);
  EXPECT_EQ(m.files_transferred, 3u);
}

TEST(MetricsTest, RatesUseCacheCounters) {
  CacheStats cache;
  cache.requests = 200;
  cache.misses_cold = 10;
  cache.misses_refetched = 10;
  cache.stale_hits = 5;
  const ConsistencyMetrics m = ComputeMetrics(ServerStats{}, cache);
  EXPECT_DOUBLE_EQ(m.MissRate(), 0.10);
  EXPECT_DOUBLE_EQ(m.StaleRate(), 0.025);
}

TEST(MetricsTest, MbConversion) {
  ServerStats server;
  server.bytes_sent = 2'500'000;
  const ConsistencyMetrics m = ComputeMetrics(server, CacheStats{});
  EXPECT_DOUBLE_EQ(m.TotalMB(), 2.5);
}

TEST(MetricsTest, SummaryMentionsKeyNumbers) {
  CacheStats cache;
  cache.requests = 100;
  cache.stale_hits = 5;
  const ConsistencyMetrics m = ComputeMetrics(ServerStats{}, cache);
  const std::string summary = m.Summary();
  EXPECT_NE(summary.find("requests=100"), std::string::npos);
  EXPECT_NE(summary.find("stale=5.000%"), std::string::npos);
}

TEST(MetricsTest, RequestConservationGapIsSignedAndZeroWhenBalanced) {
  CacheStats cache;
  cache.requests = 100;
  cache.hits_fresh = 50;
  cache.hits_validated = 20;
  cache.misses_cold = 10;
  cache.misses_refetched = 10;
  cache.degraded_serves = 7;
  cache.failed_requests = 3;
  EXPECT_EQ(RequestConservationGap(cache), 0);
  cache.failed_requests = 0;  // three requests now unaccounted for
  EXPECT_EQ(RequestConservationGap(cache), 3);
  cache.failed_requests = 8;  // five serves out of thin air
  EXPECT_EQ(RequestConservationGap(cache), -5);
}

TEST(MetricsTest, InvalidationConservationGapCountsInFlight) {
  ServerStats server;
  server.invalidations_sent = 10;
  server.invalidations_lost = 2;
  server.invalidations_delivered = 5;
  server.invalidations_undeliverable = 1;
  EXPECT_EQ(InvalidationConservationGap(server, /*in_flight=*/2), 0);
  EXPECT_EQ(InvalidationConservationGap(server, /*in_flight=*/0), 2);
  server.invalidations_delivered = 8;
  EXPECT_EQ(InvalidationConservationGap(server, /*in_flight=*/0), -1);
}

}  // namespace
}  // namespace webcc
