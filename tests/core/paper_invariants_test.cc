// Integration tests asserting the PAPER'S qualitative results — the shapes
// of Figures 2–8 — on reduced-size workloads. These are the contract the
// bench binaries then reproduce at full scale.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/simulation.h"
#include "src/workload/campus.h"
#include "src/workload/trace.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

// Scaled-down Worrell workload (same change rate, fewer files/requests).
const Workload& SyntheticLoad() {
  static const Workload load = [] {
    WorrellConfig config;
    config.num_files = 300;
    config.duration = Days(28);
    config.requests_per_second = 0.08;
    config.seed = 2024;
    return GenerateWorrellWorkload(config);
  }();
  return load;
}

// Trace-driven workload compiled from a generated HCS trace — the full
// trace path, exactly as the paper's modified-workload simulator ran.
const Workload& TraceLoad() {
  static const Workload load = [] {
    const auto result = GenerateCampusWorkload(CampusServerProfile::Hcs());
    return CompileTrace(result.trace);
  }();
  return load;
}

double TotalMB(const SimulationResult& r) { return r.metrics.TotalMB(); }

// ---------- Base simulator (Figures 2 and 3) ----------

TEST(BaseSimulatorShape, InvalidationBeatsTimeBasedAtModerateParameters) {
  // Figure 2: "The invalidation protocol is superior to both TTL and Alex
  // until the update threshold or TTL is quite large."
  const auto& load = SyntheticLoad();
  const auto inval = RunInvalidation(load, SimulationConfig::Base(PolicyConfig::Invalidation()));
  const auto ttl48 = RunSimulation(load, SimulationConfig::Base(PolicyConfig::Ttl(Hours(48))));
  const auto alex20 = RunSimulation(load, SimulationConfig::Base(PolicyConfig::Alex(0.20)));
  EXPECT_LT(TotalMB(inval), TotalMB(ttl48));
  EXPECT_LT(TotalMB(inval), TotalMB(alex20));
}

TEST(BaseSimulatorShape, BandwidthDecreasesWithTtl) {
  const auto& load = SyntheticLoad();
  const auto config = SimulationConfig::Base(PolicyConfig::Ttl(Hours(1)));
  const auto series = SweepTtlHours(load, config, {25, 100, 250, 500});
  for (size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_LT(series.points[i].result.metrics.total_bytes,
              series.points[i - 1].result.metrics.total_bytes)
        << "TTL " << series.points[i].param;
  }
}

TEST(BaseSimulatorShape, StaleRateIncreasesWithTtl) {
  // Figure 3: bandwidth savings buy stale hits.
  const auto& load = SyntheticLoad();
  const auto config = SimulationConfig::Base(PolicyConfig::Ttl(Hours(1)));
  const auto series = SweepTtlHours(load, config, {25, 100, 250, 500});
  for (size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_GT(series.points[i].result.metrics.StaleRate(),
              series.points[i - 1].result.metrics.StaleRate());
  }
  // And the rates are substantial under Worrell's churn (tens of percent).
  EXPECT_GT(series.points.back().result.metrics.StaleRate(), 0.15);
}

TEST(BaseSimulatorShape, StaleRateIncreasesWithAlexThreshold) {
  const auto& load = SyntheticLoad();
  const auto config = SimulationConfig::Base(PolicyConfig::Alex(0));
  const auto series = SweepAlexThreshold(load, config, {10, 40, 80});
  EXPECT_LT(series.points[0].result.metrics.StaleRate(),
            series.points[1].result.metrics.StaleRate());
  EXPECT_LT(series.points[1].result.metrics.StaleRate(),
            series.points[2].result.metrics.StaleRate());
}

TEST(BaseSimulatorShape, AlexNeedsMoreBandwidthThanTtlAtMatchedStale) {
  // §4.0's surprise: "for a specified acceptable stale hit rate, TTL
  // provides greater bandwidth savings" under the base workload. Sweep TTL,
  // pick the point whose stale rate best matches Alex@40%, and compare
  // bandwidths there.
  const auto& load = SyntheticLoad();
  const auto alex =
      SweepAlexThreshold(load, SimulationConfig::Base(PolicyConfig::Alex(0)), {40});
  const double alex_stale = alex.points[0].result.metrics.StaleRate();

  const auto ttl = SweepTtlHours(load, SimulationConfig::Base(PolicyConfig::Ttl(Hours(1))),
                                 {25, 50, 75, 100, 125, 150, 200, 300});
  const SweepPoint* best = &ttl.points[0];
  for (const SweepPoint& point : ttl.points) {
    if (std::abs(point.result.metrics.StaleRate() - alex_stale) <
        std::abs(best->result.metrics.StaleRate() - alex_stale)) {
      best = &point;
    }
  }
  EXPECT_NEAR(best->result.metrics.StaleRate(), alex_stale, 0.05);  // matched regime
  EXPECT_GT(alex.points[0].result.metrics.total_bytes, best->result.metrics.total_bytes)
      << "matched TTL = " << best->param << "h";
}

TEST(BaseSimulatorShape, InvalidationConstantAcrossParameters) {
  const auto& load = SyntheticLoad();
  const auto a = RunInvalidation(load, SimulationConfig::Base(PolicyConfig::Ttl(Hours(10))));
  const auto b = RunInvalidation(load, SimulationConfig::Base(PolicyConfig::Alex(0.9)));
  EXPECT_EQ(a.metrics.total_bytes, b.metrics.total_bytes);
}

TEST(BaseSimulatorShape, BaseMissRatesHighForTimeBased) {
  // Figure 3: in the base simulator every expiry-triggered request is a full
  // transfer, so time-based miss rates are far from invalidation's.
  const auto& load = SyntheticLoad();
  const auto inval = RunInvalidation(load, SimulationConfig::Base(PolicyConfig::Invalidation()));
  const auto ttl = RunSimulation(load, SimulationConfig::Base(PolicyConfig::Ttl(Hours(50))));
  EXPECT_GT(ttl.metrics.MissRate(), 2.0 * inval.metrics.MissRate());
}

// ---------- Optimized simulator (Figures 4 and 5) ----------

TEST(OptimizedSimulatorShape, TimeBasedBeatsInvalidationNearlyEverywhere) {
  // Figure 4: "With this optimization, both TTL and Alex use less bandwidth
  // than the Invalidation Protocol in nearly all cases." TTL clears the bar
  // across the sweep; Alex clears it once its windows are long enough that
  // query traffic stops dominating (small thresholds sit within a modest
  // factor — invisible on the paper's log scale).
  const auto& load = SyntheticLoad();
  const auto inval =
      RunInvalidation(load, SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  for (double hours : {50.0, 125.0, 250.0, 500.0}) {
    const auto ttl =
        RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(HoursF(hours))));
    EXPECT_LT(ttl.metrics.total_bytes, inval.metrics.total_bytes) << "ttl " << hours;
  }
  for (double pct : {50.0, 80.0, 100.0}) {
    const auto alex =
        RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(pct / 100.0)));
    EXPECT_LT(alex.metrics.total_bytes, inval.metrics.total_bytes) << "alex " << pct;
  }
  const auto alex20 = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(0.20)));
  EXPECT_LT(static_cast<double>(alex20.metrics.total_bytes),
            1.25 * static_cast<double>(inval.metrics.total_bytes));
}

TEST(OptimizedSimulatorShape, Ttl100hSavesVsInvalidation) {
  // Figure 4's worked reference point: a 100 h TTL saves a meaningful slice
  // of the invalidation protocol's bandwidth (paper: ~32%; our calibration
  // lands double digits).
  const auto& load = SyntheticLoad();
  const auto inval =
      RunInvalidation(load, SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  const auto ttl = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(100))));
  const double saving = 1.0 - static_cast<double>(ttl.metrics.total_bytes) /
                                  static_cast<double>(inval.metrics.total_bytes);
  EXPECT_GT(saving, 0.10);
  EXPECT_LT(saving, 0.60);
}

TEST(OptimizedSimulatorShape, NeverTransmitsMoreFileBytesThanInvalidation) {
  // §4.1: "neither Alex nor TTL will ever transmit more file information
  // than the invalidation protocol."
  const auto& load = SyntheticLoad();
  const auto inval =
      RunInvalidation(load, SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  for (double pct : {0.0, 10.0, 50.0, 100.0}) {
    const auto alex =
        RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(pct / 100.0)));
    EXPECT_LE(alex.metrics.payload_bytes, inval.metrics.payload_bytes) << pct;
  }
  for (double hours : {1.0, 100.0, 500.0}) {
    const auto ttl =
        RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(HoursF(hours))));
    EXPECT_LE(ttl.metrics.payload_bytes, inval.metrics.payload_bytes) << hours;
  }
}

TEST(OptimizedSimulatorShape, MissRatesNearPerfect) {
  // Figure 5: with invalid copies left in place, all three protocols show
  // miss rates indistinguishable from invalidation's.
  const auto& load = SyntheticLoad();
  const auto inval =
      RunInvalidation(load, SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  const auto ttl = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(50))));
  const auto alex = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(0.2)));
  EXPECT_NEAR(ttl.metrics.MissRate(), inval.metrics.MissRate(), 0.01);
  EXPECT_NEAR(alex.metrics.MissRate(), inval.metrics.MissRate(), 0.01);
}

TEST(OptimizedSimulatorShape, StaleRatesUnchangedFromBase) {
  // Figure 5's caveat: "the stale hit rate remains unacceptably high" — the
  // optimization changes bytes, not staleness.
  const auto& load = SyntheticLoad();
  const auto base = RunSimulation(load, SimulationConfig::Base(PolicyConfig::Ttl(Hours(100))));
  const auto optimized =
      RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(100))));
  EXPECT_NEAR(base.metrics.StaleRate(), optimized.metrics.StaleRate(), 0.02);
  EXPECT_GT(optimized.metrics.StaleRate(), 0.05);
}

TEST(OptimizedSimulatorShape, OptimizedNeverCostsMoreThanBase) {
  const auto& load = SyntheticLoad();
  for (double pct : {10.0, 50.0, 90.0}) {
    const auto base =
        RunSimulation(load, SimulationConfig::Base(PolicyConfig::Alex(pct / 100.0)));
    const auto optimized =
        RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(pct / 100.0)));
    EXPECT_LE(optimized.metrics.total_bytes, base.metrics.total_bytes) << pct;
  }
}

// ---------- Trace-driven simulator (Figures 6, 7, 8) ----------

TEST(TraceSimulatorShape, WeaklyConsistentBeatsInvalidationOnTraces) {
  // Figure 6: with trace workloads both Alex and TTL use less bandwidth
  // than invalidation for nearly all parameter settings.
  const auto& load = TraceLoad();
  const auto inval =
      RunInvalidation(load, SimulationConfig::TraceDriven(PolicyConfig::Invalidation()));
  for (double pct : {15.0, 25.0, 50.0, 100.0}) {
    const auto alex =
        RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Alex(pct / 100.0)));
    EXPECT_LT(alex.metrics.total_bytes, inval.metrics.total_bytes) << "alex " << pct;
  }
  for (double hours : {100.0, 250.0, 500.0}) {
    const auto ttl =
        RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Ttl(HoursF(hours))));
    EXPECT_LT(ttl.metrics.total_bytes, inval.metrics.total_bytes) << "ttl " << hours;
  }
}

TEST(TraceSimulatorShape, StaleRateUnderFivePercent) {
  // Figure 7 / §6: tunable to "a stale rate of less than 5%"; §4.2: "an
  // update threshold as low as 5% returns stale data less than 1% of the
  // time."
  const auto& load = TraceLoad();
  const auto alex5 = RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Alex(0.05)));
  EXPECT_LT(alex5.metrics.StaleRate(), 0.01);
  for (double pct : {10.0, 25.0, 50.0}) {
    const auto alex =
        RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Alex(pct / 100.0)));
    EXPECT_LT(alex.metrics.StaleRate(), 0.05) << pct;
  }
}

TEST(TraceSimulatorShape, MissRatesTiny) {
  // Figure 7: miss rates for all three protocols under 0.04%... at trace
  // scale; for our smaller synthetic trace allow an order more headroom but
  // require near-equality with invalidation.
  const auto& load = TraceLoad();
  const auto inval =
      RunInvalidation(load, SimulationConfig::TraceDriven(PolicyConfig::Invalidation()));
  const auto alex = RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Alex(0.1)));
  const auto ttl =
      RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Ttl(Hours(250))));
  EXPECT_NEAR(alex.metrics.MissRate(), inval.metrics.MissRate(), 0.005);
  EXPECT_NEAR(ttl.metrics.MissRate(), inval.metrics.MissRate(), 0.005);
}

TEST(TraceSimulatorShape, InvalidationAlwaysPerfectlyConsistent) {
  for (const auto* load : {&SyntheticLoad(), &TraceLoad()}) {
    for (const auto mode : {RefreshMode::kFullRefetch, RefreshMode::kConditionalGet}) {
      SimulationConfig config;
      config.policy = PolicyConfig::Invalidation();
      config.refresh_mode = mode;
      config.preload = true;
      EXPECT_EQ(RunSimulation(*load, config).metrics.stale_hits, 0u);
    }
  }
}

TEST(ServerLoadShape, AlexLoadDecreasesWithThreshold) {
  // Figure 8a: parameterization is critical; ops fall steeply as the
  // threshold rises.
  const auto& load = TraceLoad();
  const auto series = SweepAlexThreshold(
      load, SimulationConfig::TraceDriven(PolicyConfig::Alex(0)), {0, 5, 20, 64});
  for (size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_LT(series.points[i].result.metrics.server_operations,
              series.points[i - 1].result.metrics.server_operations);
  }
}

TEST(ServerLoadShape, ThresholdZeroIsOrdersOfMagnitudeWorse) {
  // Figure 8a: threshold 0 "creates nearly two orders of magnitude more
  // server queries" than necessary.
  const auto& load = TraceLoad();
  const auto zero = RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Alex(0.0)));
  const auto inval =
      RunInvalidation(load, SimulationConfig::TraceDriven(PolicyConfig::Invalidation()));
  EXPECT_GT(zero.metrics.server_operations, 20 * inval.metrics.server_operations);
}

TEST(ServerLoadShape, AlexImposesLessLoadThanTtlAtMatchedStale) {
  // Figure 8 caption: "Alex imposes less load on the server than TTL" —
  // compare at parameter settings with matched stale rates: sweep TTL and
  // pick the point whose stale rate is closest to (but no better than)
  // Alex@25%'s, then Alex must need fewer server operations.
  const auto& load = TraceLoad();
  const auto alex = RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Alex(0.25)));
  const double alex_stale = alex.metrics.StaleRate();
  EXPECT_LE(alex_stale, 0.05);

  const auto ttl = SweepTtlHours(load, SimulationConfig::TraceDriven(PolicyConfig::Ttl(Hours(1))),
                                 {25, 50, 75, 100, 150, 200, 300, 400, 500});
  const SweepPoint* matched = nullptr;
  for (const SweepPoint& point : ttl.points) {
    // The cheapest TTL that is still at least as consistent as Alex.
    if (point.result.metrics.StaleRate() <= alex_stale) {
      matched = &point;
    }
  }
  ASSERT_NE(matched, nullptr);
  EXPECT_LT(alex.metrics.server_operations, matched->result.metrics.server_operations)
      << "matched TTL = " << matched->param << "h";
}

TEST(ServerLoadShape, AlexCrossoverWithInvalidationExists) {
  // Figure 8a: Alex matches the invalidation protocol's server load at a
  // sufficiently high threshold (paper: ≈64%) while staying clearly above
  // it at tiny thresholds.
  const auto& load = TraceLoad();
  const auto inval =
      RunInvalidation(load, SimulationConfig::TraceDriven(PolicyConfig::Invalidation()));
  const auto low = RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Alex(0.02)));
  EXPECT_GT(low.metrics.server_operations, inval.metrics.server_operations);
  const auto high = RunSimulation(load, SimulationConfig::TraceDriven(PolicyConfig::Alex(2.0)));
  // At a generous threshold the load approaches/falls below invalidation's.
  EXPECT_LE(high.metrics.server_operations, inval.metrics.server_operations * 3 / 2);
}

// ---------- Metamorphic properties ----------

TEST(MetamorphicTest, ScalingSizesScalesPayloadOnly) {
  WorrellConfig config;
  config.num_files = 100;
  config.duration = Days(7);
  config.requests_per_second = 0.05;
  config.seed = 31337;
  Workload load = GenerateWorrellWorkload(config);
  const auto before =
      RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(24))));
  for (auto& spec : load.objects) {
    spec.size_bytes *= 2;
  }
  for (auto& m : load.modifications) {
    if (m.new_size >= 0) {
      m.new_size *= 2;
    }
  }
  const auto after =
      RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(24))));
  EXPECT_EQ(after.metrics.payload_bytes, 2 * before.metrics.payload_bytes);
  EXPECT_EQ(after.metrics.control_bytes, before.metrics.control_bytes);
  EXPECT_EQ(after.metrics.stale_hits, before.metrics.stale_hits);
}

TEST(MetamorphicTest, MoreRequestsNeverReduceServerOps) {
  WorrellConfig config;
  config.num_files = 100;
  config.duration = Days(7);
  config.requests_per_second = 0.02;
  config.seed = 41;
  const Workload sparse = GenerateWorrellWorkload(config);
  config.requests_per_second = 0.08;
  const Workload dense = GenerateWorrellWorkload(config);
  const PolicyConfig policies[] = {PolicyConfig::Ttl(Hours(24)), PolicyConfig::Alex(0.1),
                                   PolicyConfig::Invalidation()};
  for (const PolicyConfig& policy : policies) {
    const auto a = RunSimulation(sparse, SimulationConfig::Optimized(policy));
    const auto b = RunSimulation(dense, SimulationConfig::Optimized(policy));
    EXPECT_GE(b.metrics.server_operations, a.metrics.server_operations);
  }
}

// Parameterized cross-protocol sanity over the whole grid.
struct GridParam {
  double threshold_pct;
  bool base_mode;
};

class ProtocolGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(ProtocolGridTest, AccountingIdentitiesHold) {
  const auto [pct, base_mode] = GetParam();
  SimulationConfig config = base_mode
                                ? SimulationConfig::Base(PolicyConfig::Alex(pct / 100.0))
                                : SimulationConfig::Optimized(PolicyConfig::Alex(pct / 100.0));
  const auto result = RunSimulation(SyntheticLoad(), config);
  const auto& c = result.cache;
  // Request conservation.
  EXPECT_EQ(c.requests, c.hits_fresh + c.hits_validated + c.misses_cold + c.misses_refetched);
  // Stale hits can only be fresh hits.
  EXPECT_LE(c.stale_hits, c.hits_fresh);
  // The two ends of the link agree byte for byte.
  EXPECT_EQ(c.LinkBytes(), result.server.TotalBytes());
  // Every body the server shipped was either a miss at the cache or a
  // preload (none here after stats reset).
  EXPECT_EQ(result.server.files_transferred, c.Misses());
  // Control/payload decomposition is exact.
  EXPECT_EQ(result.metrics.control_bytes + result.metrics.payload_bytes,
            result.metrics.total_bytes);
  EXPECT_GE(result.metrics.payload_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolGridTest,
    ::testing::Values(GridParam{0, false}, GridParam{5, false}, GridParam{20, false},
                      GridParam{64, false}, GridParam{100, false}, GridParam{0, true},
                      GridParam{20, true}, GridParam{100, true}));

}  // namespace
}  // namespace webcc
