// Randomized differential testing: small random workloads, every protocol,
// both retrieval modes — the accounting identities and cross-protocol
// dominance relations must hold for EVERY seed. Catches interaction bugs the
// hand-written fixtures can't.

#include <gtest/gtest.h>

#include "src/core/simulation.h"
#include "src/util/rng.h"
#include "src/util/str.h"
#include "src/workload/workload.h"

namespace webcc {
namespace {

// A fully random (but valid) workload: random object count, sizes, ages,
// change schedules, request pattern — including same-instant collisions.
Workload RandomWorkload(uint64_t seed) {
  Rng rng(seed);
  Workload load;
  load.name = "fuzz";
  const int64_t horizon_s = rng.UniformInt(3600, 14 * 86400);
  load.horizon = SimTime::Epoch() + Seconds(horizon_s);

  const uint32_t num_objects = static_cast<uint32_t>(rng.UniformInt(1, 60));
  for (uint32_t i = 0; i < num_objects; ++i) {
    ObjectSpec spec;
    spec.name = StrFormat("/fuzz/%u", i);
    spec.type = static_cast<FileType>(rng.UniformInt(0, kNumFileTypes - 1));
    spec.size_bytes = rng.UniformInt(0, 50000);  // zero-byte objects legal
    spec.initial_age = Seconds(rng.UniformInt(0, 400 * 86400));
    load.objects.push_back(std::move(spec));
  }
  const int num_changes = static_cast<int>(rng.UniformInt(0, 200));
  for (int i = 0; i < num_changes; ++i) {
    ModificationEvent m;
    m.at = SimTime::Epoch() + Seconds(rng.UniformInt(0, horizon_s));
    m.object_index = static_cast<uint32_t>(rng.UniformInt(0, num_objects - 1));
    m.new_size = rng.Bernoulli(0.3) ? rng.UniformInt(0, 50000) : -1;
    load.modifications.push_back(m);
  }
  const int num_requests = static_cast<int>(rng.UniformInt(1, 2000));
  for (int i = 0; i < num_requests; ++i) {
    RequestEvent r;
    r.at = SimTime::Epoch() + Seconds(rng.UniformInt(0, horizon_s));
    r.object_index = static_cast<uint32_t>(rng.UniformInt(0, num_objects - 1));
    r.client_id = static_cast<uint32_t>(rng.UniformInt(0, 20));
    r.remote = rng.Bernoulli(0.5);
    load.requests.push_back(r);
  }
  load.Finalize();
  return load;
}

class RandomizedRunTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedRunTest, AccountingIdentitiesForEveryProtocolAndMode) {
  const Workload load = RandomWorkload(GetParam());
  ASSERT_EQ(load.Validate(), "");

  const PolicyConfig policies[] = {
      PolicyConfig::Ttl(Hours(static_cast<int64_t>(GetParam() % 300))),
      PolicyConfig::Alex(static_cast<double>(GetParam() % 120) / 100.0),
      PolicyConfig::Cern(0.15, Days(1)),
      PolicyConfig::Adaptive(),
      PolicyConfig::Invalidation(),
  };
  for (const PolicyConfig& policy : policies) {
    for (const bool base_mode : {false, true}) {
      for (const bool preload : {false, true}) {
        SimulationConfig config;
        config.policy = policy;
        config.refresh_mode =
            base_mode ? RefreshMode::kFullRefetch : RefreshMode::kConditionalGet;
        config.preload = preload;
        const SimulationResult result = RunSimulation(load, config);
        const CacheStats& c = result.cache;
        const std::string ctx =
            result.policy_desc + (base_mode ? "/base" : "/opt") + (preload ? "/warm" : "/cold");

        // Conservation.
        EXPECT_EQ(c.requests, load.requests.size()) << ctx;
        EXPECT_EQ(c.requests,
                  c.hits_fresh + c.hits_validated + c.misses_cold + c.misses_refetched)
            << ctx;
        // Staleness only via locally served fresh hits; invalidation: none.
        EXPECT_LE(c.stale_hits, c.hits_fresh) << ctx;
        if (policy.kind == PolicyKind::kInvalidation) {
          EXPECT_EQ(c.stale_hits, 0u) << ctx;
        }
        // Both ends of the link agree.
        EXPECT_EQ(c.LinkBytes(), result.server.TotalBytes()) << ctx;
        // Bodies shipped == misses (preload transfers were reset away).
        EXPECT_EQ(result.server.files_transferred, c.Misses()) << ctx;
        // Byte decomposition exact and non-negative.
        EXPECT_EQ(result.metrics.control_bytes + result.metrics.payload_bytes,
                  result.metrics.total_bytes)
            << ctx;
        EXPECT_GE(result.metrics.payload_bytes, 0) << ctx;
        // Base mode never validates; optimized-with-preload never cold-misses.
        if (base_mode) {
          EXPECT_EQ(c.validations_sent, 0u) << ctx;
        }
        if (preload) {
          EXPECT_EQ(c.misses_cold, 0u) << ctx;
        }
        // Server op identity.
        EXPECT_EQ(result.server.TotalOperations(),
                  result.server.get_requests + result.server.ims_queries +
                      result.server.invalidations_sent)
            << ctx;
      }
    }
  }
}

TEST_P(RandomizedRunTest, OptimizedNeverShipsMorePayloadThanBase) {
  const Workload load = RandomWorkload(GetParam() ^ 0xabcdef);
  for (const PolicyConfig& policy :
       {PolicyConfig::Ttl(Hours(24)), PolicyConfig::Alex(0.25)}) {
    const auto base = RunSimulation(load, SimulationConfig::Base(policy));
    const auto optimized = RunSimulation(load, SimulationConfig::Optimized(policy));
    EXPECT_LE(optimized.metrics.payload_bytes, base.metrics.payload_bytes);
    EXPECT_LE(optimized.metrics.total_bytes, base.metrics.total_bytes);
    // The optimization cannot make consistency worse.
    EXPECT_LE(optimized.metrics.stale_hits, base.metrics.stale_hits + load.requests.size() / 10);
  }
}

TEST_P(RandomizedRunTest, TimeBasedNeverShipsMorePayloadThanInvalidationWarm) {
  // §4.1's invariant, fuzzed: with a warm cache and conditional retrieval,
  // Alex/TTL transfer a subset of the bodies invalidation transfers.
  const Workload load = RandomWorkload(GetParam() ^ 0x5eed);
  const auto inval = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  for (const PolicyConfig& policy :
       {PolicyConfig::Ttl(Hours(7)), PolicyConfig::Alex(0.4), PolicyConfig::Adaptive()}) {
    const auto run = RunSimulation(load, SimulationConfig::Optimized(policy));
    EXPECT_LE(run.metrics.payload_bytes, inval.metrics.payload_bytes) << run.policy_desc;
  }
}

TEST_P(RandomizedRunTest, DeterministicReplay) {
  const Workload load = RandomWorkload(GetParam() + 17);
  const auto a = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(0.2)));
  const auto b = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(0.2)));
  EXPECT_EQ(a.metrics.total_bytes, b.metrics.total_bytes);
  EXPECT_EQ(a.metrics.stale_hits, b.metrics.stale_hits);
  EXPECT_EQ(a.metrics.server_operations, b.metrics.server_operations);
  EXPECT_EQ(a.cache.hits_fresh, b.cache.hits_fresh);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedRunTest,
                         ::testing::Range<uint64_t>(1, 21));  // 20 seeds

}  // namespace
}  // namespace webcc
