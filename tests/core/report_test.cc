#include "src/core/report.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/workload/worrell.h"

namespace webcc {
namespace {

SweepSeries TinySweep(SimulationConfig config) {
  WorrellConfig wc;
  wc.num_files = 30;
  wc.duration = Days(5);
  wc.requests_per_second = 0.01;
  wc.seed = 5;
  const Workload load = GenerateWorrellWorkload(wc);
  return SweepAlexThreshold(load, config, {0, 100});
}

SimulationResult TinyInvalidation(SimulationConfig config) {
  WorrellConfig wc;
  wc.num_files = 30;
  wc.duration = Days(5);
  wc.requests_per_second = 0.01;
  wc.seed = 5;
  return RunInvalidation(GenerateWorrellWorkload(wc), config);
}

TEST(ReportTest, BandwidthFigureShape) {
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const auto series = TinySweep(config);
  const auto inval = TinyInvalidation(config);
  const TextTable table = BandwidthFigure("Fig X", series, inval.metrics);
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string text = table.ToString();
  EXPECT_NE(text.find("Fig X"), std::string::npos);
  EXPECT_NE(text.find("Update threshold (%)"), std::string::npos);
  EXPECT_NE(text.find("invalidation: MB"), std::string::npos);
}

TEST(ReportTest, MissRateFigureShape) {
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const TextTable table =
      MissRateFigure("Fig Y", TinySweep(config), TinyInvalidation(config).metrics);
  const std::string text = table.ToString();
  EXPECT_NE(text.find("alex: miss %"), std::string::npos);
  EXPECT_NE(text.find("alex: stale %"), std::string::npos);
  EXPECT_NE(text.find("invalidation: stale %"), std::string::npos);
}

TEST(ReportTest, ServerLoadFigureShape) {
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const TextTable table =
      ServerLoadFigure("Fig 8", TinySweep(config), TinyInvalidation(config).metrics);
  EXPECT_NE(table.ToString().find("server ops"), std::string::npos);
}

TEST(ReportTest, TtlSeriesGetsTtlHeader) {
  WorrellConfig wc;
  wc.num_files = 20;
  wc.duration = Days(3);
  wc.requests_per_second = 0.01;
  const Workload load = GenerateWorrellWorkload(wc);
  const auto config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(1)));
  const auto series = SweepTtlHours(load, config, {0, 100});
  const TextTable table = BandwidthFigure("F", series, RunInvalidation(load, config).metrics);
  EXPECT_NE(table.ToString().find("TTL (hours)"), std::string::npos);
}

TEST(ReportTest, Table1PairsMeasuredWithPaperRows) {
  const auto targets = PaperTable1Targets();
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_EQ(targets[0].server, "DAS");
  EXPECT_EQ(targets[0].total_changes, 321u);
  const TextTable table = Table1Mutability(targets, targets);
  EXPECT_EQ(table.num_rows(), 6u);  // measured + "(paper)" per server
  EXPECT_NE(table.ToString().find("DAS (paper)"), std::string::npos);
}

TEST(ReportTest, Table2RendersAllTypes) {
  std::vector<FileTypeStats> rows(kNumFileTypes);
  for (int t = 0; t < kNumFileTypes; ++t) {
    rows[t].type = static_cast<FileType>(t);
    rows[t].access_share = 0.2;
  }
  const TextTable table = Table2FileTypes(rows);
  EXPECT_EQ(table.num_rows(), static_cast<size_t>(kNumFileTypes));
  EXPECT_NE(table.ToString().find("gif"), std::string::npos);
  EXPECT_NE(table.ToString().find("cgi"), std::string::npos);
}

TEST(ReportTest, WriteCsvFileWorks) {
  TextTable table;
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  const std::string path = ::testing::TempDir() + "/webcc_report_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path));
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
}

TEST(ReportTest, WriteCsvFileFailsOnBadPath) {
  TextTable table;
  EXPECT_FALSE(WriteCsvFile(table, "/nonexistent/dir/x.csv"));
}

TEST(ReportTest, TypeBreakdownTableRendersEveryType) {
  CacheStats stats;
  stats.by_type[static_cast<size_t>(FileType::kGif)].requests = 100;
  stats.by_type[static_cast<size_t>(FileType::kGif)].stale_hits = 5;
  stats.by_type[static_cast<size_t>(FileType::kCgi)].payload_bytes = 123456;
  const TextTable table = TypeBreakdownTable(stats);
  EXPECT_EQ(table.num_rows(), static_cast<size_t>(kNumFileTypes));
  const std::string text = table.ToString();
  EXPECT_NE(text.find("gif"), std::string::npos);
  EXPECT_NE(text.find("5.000%"), std::string::npos);  // 5/100 stale
  EXPECT_NE(text.find("123.5"), std::string::npos);   // KB
}

TEST(ReportTest, FigureChartRendersCurveAndReference) {
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const auto series = TinySweep(config);
  const auto inval = TinyInvalidation(config);
  const std::string chart =
      FigureChart("Figure X", series, inval.metrics, FigureMetric::kBandwidthMB);
  EXPECT_NE(chart.find("Figure X"), std::string::npos);
  EXPECT_NE(chart.find("MB exchanged"), std::string::npos);
  EXPECT_NE(chart.find("(log scale)"), std::string::npos);
  EXPECT_NE(chart.find("* alex"), std::string::npos);
  EXPECT_NE(chart.find("- invalidation"), std::string::npos);
  EXPECT_NE(chart.find("Update threshold (%)"), std::string::npos);
}

TEST(ReportTest, FigureChartMetricsSelectAxes) {
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const auto series = TinySweep(config);
  const auto inval = TinyInvalidation(config);
  EXPECT_NE(FigureChart("t", series, inval.metrics, FigureMetric::kStalePercent)
                .find("stale hits"),
            std::string::npos);
  EXPECT_NE(FigureChart("t", series, inval.metrics, FigureMetric::kMissPercent)
                .find("cache misses"),
            std::string::npos);
  EXPECT_NE(FigureChart("t", series, inval.metrics, FigureMetric::kServerOps)
                .find("server operations"),
            std::string::npos);
}

}  // namespace
}  // namespace webcc
