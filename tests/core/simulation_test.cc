#include "src/core/simulation.h"

#include <gtest/gtest.h>

#include "src/http/message.h"

namespace webcc {
namespace {

// A hand-built micro-workload whose byte counts can be verified on paper:
// one 6000-byte object, 10 days old at the epoch, modified at hour 10;
// requests at hours 1, 2, 12, 20.
Workload MicroWorkload() {
  Workload load;
  load.name = "micro";
  load.objects.push_back(ObjectSpec{"/m.html", FileType::kHtml, 6000, Days(10)});
  load.horizon = SimTime::Epoch() + Days(2);
  load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Hours(10), 0, -1});
  for (int64_t h : {1, 2, 12, 20}) {
    load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(h), 0, 0, false});
  }
  load.Finalize();
  return load;
}

TEST(SimulationConfigTest, NamedConstructors) {
  const auto base = SimulationConfig::Base(PolicyConfig::Alex(0.1));
  EXPECT_EQ(base.refresh_mode, RefreshMode::kFullRefetch);
  EXPECT_TRUE(base.preload);
  const auto optimized = SimulationConfig::Optimized(PolicyConfig::Alex(0.1));
  EXPECT_EQ(optimized.refresh_mode, RefreshMode::kConditionalGet);
  EXPECT_TRUE(optimized.preload);
  const auto trace = SimulationConfig::TraceDriven(PolicyConfig::Alex(0.1));
  EXPECT_EQ(trace.refresh_mode, RefreshMode::kConditionalGet);
  EXPECT_TRUE(trace.preload);
}

TEST(SimulationTest, InvalidationMicroAccounting) {
  // Preloaded invalidation run: 1 invalidation notice (43 B) at hour 10,
  // the hour-12 request re-fetches (43 + 6043), others are free hits.
  const auto result =
      RunSimulation(MicroWorkload(), SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  EXPECT_EQ(result.metrics.requests, 4u);
  EXPECT_EQ(result.metrics.invalidations, 1u);
  EXPECT_EQ(result.metrics.cache_misses, 1u);
  EXPECT_EQ(result.metrics.stale_hits, 0u);
  EXPECT_EQ(result.metrics.total_bytes,
            kControlMessageBytes                                   // invalidation
                + kControlMessageBytes + DocumentWireBytes(6000));  // refetch
  EXPECT_EQ(result.metrics.server_operations, 2u);
}

TEST(SimulationTest, TtlMicroAccountingOptimized) {
  // TTL 5h, preloaded at epoch. Requests at h1, h2: fresh. h12: expired ->
  // IMS query; object changed at h10 -> body. h20: expired again (window
  // re-armed at h12, expires h17) -> IMS query; unchanged -> 304.
  const auto result =
      RunSimulation(MicroWorkload(), SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(5))));
  EXPECT_EQ(result.metrics.cache_misses, 1u);
  EXPECT_EQ(result.metrics.validations, 2u);
  EXPECT_EQ(result.metrics.stale_hits, 0u);
  EXPECT_EQ(result.metrics.total_bytes,
            (kControlMessageBytes + DocumentWireBytes(6000))   // h12 query+body
                + 2 * kControlMessageBytes);                   // h20 query+304
  EXPECT_EQ(result.metrics.server_operations, 2u);
}

TEST(SimulationTest, TtlMicroAccountingBase) {
  // Same schedule in the base simulator: full GET at h12 AND h20.
  const auto result =
      RunSimulation(MicroWorkload(), SimulationConfig::Base(PolicyConfig::Ttl(Hours(5))));
  EXPECT_EQ(result.metrics.cache_misses, 2u);
  EXPECT_EQ(result.metrics.validations, 0u);
  EXPECT_EQ(result.metrics.total_bytes,
            2 * (kControlMessageBytes + DocumentWireBytes(6000)));
}

TEST(SimulationTest, AlexMicroStaleHit) {
  // Alex 10%: object 10 days old at preload -> 1-day window. The change at
  // h10 goes unnoticed; requests at h12 and h20 are stale fresh-hits.
  const auto result =
      RunSimulation(MicroWorkload(), SimulationConfig::Optimized(PolicyConfig::Alex(0.10)));
  EXPECT_EQ(result.metrics.stale_hits, 2u);
  EXPECT_EQ(result.metrics.cache_misses, 0u);
  EXPECT_EQ(result.metrics.total_bytes, 0);
}

TEST(SimulationTest, NoPreloadStartsCold) {
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(100)));
  config.preload = false;
  const auto result = RunSimulation(MicroWorkload(), config);
  // First request is a cold miss; the change at h10 is within TTL so the
  // h12/h20 requests serve stale.
  EXPECT_EQ(result.metrics.cache_misses, 1u);
  EXPECT_EQ(result.metrics.stale_hits, 2u);
  EXPECT_EQ(result.cache.misses_cold, 1u);
}

TEST(SimulationTest, PreloadDoesNotCountAsTraffic) {
  const auto result =
      RunSimulation(MicroWorkload(), SimulationConfig::Optimized(PolicyConfig::Alex(0.10)));
  // All four requests were fresh hits; zero bytes despite preloading the
  // entire store.
  EXPECT_EQ(result.metrics.total_bytes, 0);
}

TEST(SimulationTest, ModificationAtRequestInstantVisible) {
  Workload load;
  load.objects.push_back(ObjectSpec{"/t", FileType::kOther, 100, Days(1)});
  load.horizon = SimTime::Epoch() + Days(1);
  load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Hours(1), 0, -1});
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(1), 0, 0, false});
  load.Finalize();
  const auto result =
      RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  // The change was applied before the simultaneous request: copy marked
  // invalid, body re-fetched, no staleness.
  EXPECT_EQ(result.metrics.cache_misses, 1u);
  EXPECT_EQ(result.metrics.stale_hits, 0u);
}

TEST(SimulationTest, TrailingModificationsStillCostInvalidationTraffic) {
  Workload load;
  load.objects.push_back(ObjectSpec{"/t", FileType::kOther, 100, Days(1)});
  load.horizon = SimTime::Epoch() + Days(1);
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(1), 0, 0, false});
  load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Hours(5), 0, -1});
  load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Hours(6), 0, -1});
  load.Finalize();
  const auto result =
      RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Invalidation()));
  EXPECT_EQ(result.metrics.invalidations, 2u);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  const Workload load = MicroWorkload();
  const auto a = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(0.2)));
  const auto b = RunSimulation(load, SimulationConfig::Optimized(PolicyConfig::Alex(0.2)));
  EXPECT_EQ(a.metrics.total_bytes, b.metrics.total_bytes);
  EXPECT_EQ(a.metrics.stale_hits, b.metrics.stale_hits);
  EXPECT_EQ(a.metrics.server_operations, b.metrics.server_operations);
}

TEST(SimulationTest, ResultCarriesDescriptions) {
  const auto result =
      RunSimulation(MicroWorkload(), SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(5))));
  EXPECT_EQ(result.workload_name, "micro");
  EXPECT_EQ(result.policy_desc, "ttl(5.0h)");
}

TEST(SimulationTest, WarmupExcludesColdStartTransients) {
  // Cold cache, no preload; requests at h1, h2 fill the cache, the h12/h20
  // requests are measured. With a 10h warmup the cold misses vanish from the
  // stats but their effect (a warm cache) remains.
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(100)));
  config.preload = false;
  config.warmup = Hours(10);
  const auto result = RunSimulation(MicroWorkload(), config);
  EXPECT_EQ(result.metrics.requests, 2u);  // only h12 and h20
  EXPECT_EQ(result.cache.misses_cold, 0u);
  // The change at h10 (before the fresh window ends) makes both stale.
  EXPECT_EQ(result.metrics.stale_hits, 2u);
  EXPECT_EQ(result.metrics.total_bytes, 0);
}

TEST(SimulationTest, ZeroWarmupMeasuresEverything) {
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(100)));
  config.preload = false;
  const auto result = RunSimulation(MicroWorkload(), config);
  EXPECT_EQ(result.metrics.requests, 4u);
  EXPECT_EQ(result.cache.misses_cold, 1u);
}

TEST(SimulationTest, ServerAndCacheByteViewsAgree) {
  const auto result =
      RunSimulation(MicroWorkload(), SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(5))));
  EXPECT_EQ(result.cache.LinkBytes(), result.server.TotalBytes());
}

}  // namespace
}  // namespace webcc
