#include "src/core/sweep_runner.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/workload/worrell.h"

namespace webcc {
namespace {

Workload TinyWorkload(uint64_t seed = 99) {
  WorrellConfig config;
  config.num_files = 50;
  config.duration = Days(7);
  config.requests_per_second = 0.02;
  config.seed = seed;
  return GenerateWorrellWorkload(config);
}

// Exact equality on every field, doubles included: the whole point of the
// parallel executor is that jobs=N reproduces jobs=1 bit for bit, so an
// almost-equal comparison here would hide the exact class of bug this test
// exists to catch.
void ExpectSameMetrics(const ConsistencyMetrics& a, const ConsistencyMetrics& b,
                       const std::string& where) {
  EXPECT_EQ(a.requests, b.requests) << where;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << where;
  EXPECT_EQ(a.stale_hits, b.stale_hits) << where;
  EXPECT_EQ(a.validations, b.validations) << where;
  EXPECT_EQ(a.invalidations, b.invalidations) << where;
  EXPECT_EQ(a.files_transferred, b.files_transferred) << where;
  EXPECT_EQ(a.server_operations, b.server_operations) << where;
  EXPECT_EQ(a.control_bytes, b.control_bytes) << where;
  EXPECT_EQ(a.payload_bytes, b.payload_bytes) << where;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << where;
  EXPECT_EQ(a.mean_round_trips, b.mean_round_trips) << where;
  EXPECT_EQ(a.degraded_serves, b.degraded_serves) << where;
  EXPECT_EQ(a.failed_requests, b.failed_requests) << where;
  EXPECT_EQ(a.upstream_retries, b.upstream_retries) << where;
  EXPECT_EQ(a.invalidations_lost, b.invalidations_lost) << where;
  EXPECT_EQ(a.invalidations_queued, b.invalidations_queued) << where;
  EXPECT_EQ(a.invalidations_redelivered, b.invalidations_redelivered) << where;
  EXPECT_EQ(a.cache_crashes, b.cache_crashes) << where;
  EXPECT_EQ(a.unavailable_seconds, b.unavailable_seconds) << where;
  EXPECT_EQ(a.retry_wait_seconds, b.retry_wait_seconds) << where;
}

void ExpectSameSeries(const SweepSeries& a, const SweepSeries& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.param_name, b.param_name);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].param, b.points[i].param) << "point " << i;
    EXPECT_EQ(a.points[i].result.policy_desc, b.points[i].result.policy_desc)
        << "point " << i;
    ExpectSameMetrics(a.points[i].result.metrics, b.points[i].result.metrics,
                      "point " + std::to_string(i));
  }
}

TEST(SweepRunnerTest, AlexSweepParallelMatchesSerialExactly) {
  const Workload load = TinyWorkload();
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const std::vector<double> axis = {0, 10, 25, 50, 75, 90, 100};

  SweepRunner serial(1);
  SweepRunner parallel(8);
  ASSERT_EQ(serial.jobs(), 1u);
  ASSERT_EQ(parallel.jobs(), 8u);

  ExpectSameSeries(serial.SweepAlexThreshold(load, config, axis),
                   parallel.SweepAlexThreshold(load, config, axis));
}

TEST(SweepRunnerTest, TtlSweepParallelMatchesSerialExactly) {
  const Workload load = TinyWorkload();
  const auto config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(1)));
  const std::vector<double> axis = {0, 1, 12, 48, 125, 500};

  SweepRunner serial(1);
  SweepRunner parallel(8);

  ExpectSameSeries(serial.SweepTtlHours(load, config, axis),
                   parallel.SweepTtlHours(load, config, axis));
}

TEST(SweepRunnerTest, LossRateSweepParallelMatchesSerialExactly) {
  // The fault plan is owned per sweep point, so a faulted sweep must stay
  // bit-identical across jobs counts exactly like the clean ones — including
  // every failure-aware counter.
  const Workload load = TinyWorkload();
  SimulationConfig config = SimulationConfig::Optimized(PolicyConfig::Invalidation());
  config.faults.server_downtime.push_back(
      {SimTime::Epoch() + Days(2), SimTime::Epoch() + Days(2) + Hours(6)});
  const std::vector<double> axis = {0, 0.05, 0.2, 0.5};

  ExpectSameSeries(SweepLossRate(load, config, axis, /*jobs=*/1),
                   SweepLossRate(load, config, axis, /*jobs=*/8));
}

TEST(SweepRunnerTest, MatchesFreeFunctionEntryPoints) {
  // The experiment.h wrappers delegate here; pin that equivalence so callers
  // can switch between them without changing results.
  const Workload load = TinyWorkload();
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const std::vector<double> axis = {0, 50, 100};

  ExpectSameSeries(SweepAlexThreshold(load, config, axis, /*jobs=*/4),
                   SweepRunner(1).SweepAlexThreshold(load, config, axis));
}

TEST(SweepRunnerTest, ManyVariantMatchesPerWorkloadLoop) {
  // Three distinct workloads through the flattened task grid must reproduce
  // the serial one-workload-at-a-time loop, series by series.
  const std::vector<Workload> loads = {TinyWorkload(1), TinyWorkload(2), TinyWorkload(3)};
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  const std::vector<double> axis = {0, 25, 50, 100};

  SweepRunner serial(1);
  SweepRunner parallel(8);

  const std::vector<SweepSeries> grid = parallel.SweepAlexThresholdMany(loads, config, axis);
  ASSERT_EQ(grid.size(), loads.size());
  for (size_t w = 0; w < loads.size(); ++w) {
    ExpectSameSeries(serial.SweepAlexThreshold(loads[w], config, axis), grid[w]);
  }
}

TEST(SweepRunnerTest, TtlManyVariantMatchesPerWorkloadLoop) {
  const std::vector<Workload> loads = {TinyWorkload(4), TinyWorkload(5)};
  const auto config = SimulationConfig::Optimized(PolicyConfig::Ttl(Hours(1)));
  const std::vector<double> axis = {0, 125, 500};

  SweepRunner serial(1);
  SweepRunner parallel(8);

  const std::vector<SweepSeries> grid = parallel.SweepTtlHoursMany(loads, config, axis);
  ASSERT_EQ(grid.size(), loads.size());
  for (size_t w = 0; w < loads.size(); ++w) {
    ExpectSameSeries(serial.SweepTtlHours(loads[w], config, axis), grid[w]);
  }
}

TEST(SweepRunnerTest, RunInvalidationManyMatchesSerial) {
  const std::vector<Workload> loads = {TinyWorkload(6), TinyWorkload(7)};
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0.5));

  SweepRunner parallel(8);
  const std::vector<SimulationResult> results = parallel.RunInvalidationMany(loads, config);
  ASSERT_EQ(results.size(), loads.size());
  for (size_t w = 0; w < loads.size(); ++w) {
    const SimulationResult serial = RunInvalidation(loads[w], config);
    EXPECT_EQ(results[w].policy_desc, serial.policy_desc);
    ExpectSameMetrics(results[w].metrics, serial.metrics, "workload " + std::to_string(w));
  }
}

TEST(SweepRunnerTest, RunPreservesSpecOrder) {
  // Results land by spec index, not completion order: a descending axis must
  // come back descending.
  const Workload load = TinyWorkload();
  const auto base = SimulationConfig::Optimized(PolicyConfig::Alex(0));
  std::vector<SweepPointSpec> specs;
  for (double pct : {100.0, 50.0, 0.0}) {
    SweepPointSpec spec;
    spec.param = pct;
    spec.config = base;
    spec.config.policy = PolicyConfig::Alex(pct / 100.0);
    specs.push_back(spec);
  }

  SweepRunner parallel(8);
  const SweepSeries series = parallel.Run("alex", "threshold_pct", load, specs);
  ASSERT_EQ(series.points.size(), 3u);
  EXPECT_EQ(series.points[0].param, 100.0);
  EXPECT_EQ(series.points[1].param, 50.0);
  EXPECT_EQ(series.points[2].param, 0.0);
}

TEST(SweepRunnerTest, ExecStatsAdvance) {
  const Workload load = TinyWorkload();
  const auto config = SimulationConfig::Optimized(PolicyConfig::Alex(0));

  const SweepExecStats before = GlobalSweepExecStats();
  SweepRunner(2).SweepAlexThreshold(load, config, {0, 100});
  const SweepExecStats after = GlobalSweepExecStats();

  EXPECT_EQ(after.points - before.points, 2u);
  EXPECT_EQ(after.requests - before.requests, 2u * load.requests.size());
}

TEST(SweepRunnerTest, JobsZeroResolvesToAtLeastOne) {
  SweepRunner runner(0);
  EXPECT_GE(runner.jobs(), 1u);
}

}  // namespace
}  // namespace webcc
