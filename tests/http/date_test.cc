#include "src/http/date.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(CivilTest, DaysFromCivilKnownValues) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(1996, 1, 1), 9496);
}

TEST(CivilTest, RoundTripThroughDays) {
  for (int64_t days : {-100000LL, -1LL, 0LL, 1LL, 9496LL, 20000LL, 100000LL}) {
    int y;
    int m;
    int d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

TEST(CivilTest, LeapYearHandling) {
  // 1996 was a leap year; 29 Feb exists.
  const int64_t feb29 = DaysFromCivil(1996, 2, 29);
  const int64_t mar1 = DaysFromCivil(1996, 3, 1);
  EXPECT_EQ(mar1 - feb29, 1);
  // 1900 was not a leap year (divisible by 100, not by 400).
  EXPECT_EQ(DaysFromCivil(1900, 3, 1) - DaysFromCivil(1900, 2, 28), 1);
  // 2000 was (divisible by 400).
  EXPECT_EQ(DaysFromCivil(2000, 3, 1) - DaysFromCivil(2000, 2, 28), 2);
}

TEST(CivilTest, DayOfWeekKnownDates) {
  EXPECT_EQ(DayOfWeek(DaysFromCivil(1970, 1, 1)), 4);   // Thursday
  EXPECT_EQ(DayOfWeek(DaysFromCivil(1996, 1, 1)), 1);   // Monday
  EXPECT_EQ(DayOfWeek(DaysFromCivil(1994, 11, 6)), 0);  // Sunday
  EXPECT_EQ(DayOfWeek(DaysFromCivil(1996, 1, 22)), 1);  // USENIX '96 week
}

TEST(HttpDateTest, EpochIsJanFirst1996) {
  EXPECT_EQ(FormatHttpDate(SimTime::Epoch()), "Mon, 01 Jan 1996 00:00:00 GMT");
}

TEST(HttpDateTest, FormatsRfc1123) {
  // The canonical example from the HTTP spec.
  const CivilDateTime c{1994, 11, 6, 8, 49, 37};
  EXPECT_EQ(FormatHttpDate(SimTimeFromCivil(c)), "Sun, 06 Nov 1994 08:49:37 GMT");
}

TEST(HttpDateTest, ParsesRfc1123) {
  const auto t = ParseHttpDate("Sun, 06 Nov 1994 08:49:37 GMT");
  ASSERT_TRUE(t.has_value());
  const CivilDateTime c = CivilFromSimTime(*t);
  EXPECT_EQ(c, (CivilDateTime{1994, 11, 6, 8, 49, 37}));
}

TEST(HttpDateTest, ParsesRfc850) {
  const auto t = ParseHttpDate("Sunday, 06-Nov-94 08:49:37 GMT");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(CivilFromSimTime(*t), (CivilDateTime{1994, 11, 6, 8, 49, 37}));
}

TEST(HttpDateTest, ParsesAsctime) {
  const auto t = ParseHttpDate("Sun Nov  6 08:49:37 1994");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(CivilFromSimTime(*t), (CivilDateTime{1994, 11, 6, 8, 49, 37}));
}

TEST(HttpDateTest, AllThreeFormsAgree) {
  const auto a = ParseHttpDate("Sun, 06 Nov 1994 08:49:37 GMT");
  const auto b = ParseHttpDate("Sunday, 06-Nov-94 08:49:37 GMT");
  const auto c = ParseHttpDate("Sun Nov  6 08:49:37 1994");
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, *c);
}

TEST(HttpDateTest, RoundTripsAcrossRange) {
  for (int64_t s : {-86400LL * 365, -1LL, 0LL, 1LL, 86400LL * 100 + 12345, 86400LL * 3000}) {
    const SimTime t(s);
    const auto parsed = ParseHttpDate(FormatHttpDate(t));
    ASSERT_TRUE(parsed.has_value()) << FormatHttpDate(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(HttpDateTest, RejectsGarbage) {
  EXPECT_FALSE(ParseHttpDate("").has_value());
  EXPECT_FALSE(ParseHttpDate("not a date").has_value());
  EXPECT_FALSE(ParseHttpDate("Xxx, 06 Nov 1994 08:49:37 GMT").has_value());
  EXPECT_FALSE(ParseHttpDate("Sun, 06 Nov 1994 08:49:37").has_value());  // no GMT
  EXPECT_FALSE(ParseHttpDate("Sun, 99 Nov 1994 08:49:37 GMT").has_value());
  EXPECT_FALSE(ParseHttpDate("Sun, 06 Foo 1994 08:49:37 GMT").has_value());
  EXPECT_FALSE(ParseHttpDate("Sun, 06 Nov 1994 25:00:00 GMT").has_value());
  EXPECT_FALSE(ParseHttpDate("Sun, 06 Nov 1994 08:49 GMT").has_value());
}

TEST(HttpDateTest, ParseIsCaseInsensitive) {
  const auto t = ParseHttpDate("SUN, 06 NOV 1994 08:49:37 gmt");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(CivilFromSimTime(*t).year, 1994);
}

TEST(HttpDateTest, TwoDigitYearPivot) {
  const auto nineties = ParseHttpDate("Sunday, 06-Nov-94 08:49:37 GMT");
  ASSERT_TRUE(nineties.has_value());
  EXPECT_EQ(CivilFromSimTime(*nineties).year, 1994);
  const auto aughts = ParseHttpDate("Monday, 06-Nov-00 08:49:37 GMT");
  ASSERT_TRUE(aughts.has_value());
  EXPECT_EQ(CivilFromSimTime(*aughts).year, 2000);
}

TEST(HttpDateTest, SimTimeCivilRoundTrip) {
  const SimTime t = SimTime::Epoch() + Days(200) + Hours(13) + Minutes(7) + Seconds(9);
  EXPECT_EQ(SimTimeFromCivil(CivilFromSimTime(t)), t);
}

}  // namespace
}  // namespace webcc
