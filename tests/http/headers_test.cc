#include "src/http/headers.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(HeaderMapTest, SetAndGet) {
  HeaderMap h;
  h.Set("Content-Type", "text/html");
  EXPECT_EQ(h.Get("Content-Type"), "text/html");
  EXPECT_EQ(h.size(), 1u);
}

TEST(HeaderMapTest, GetIsCaseInsensitive) {
  HeaderMap h;
  h.Set("If-Modified-Since", "x");
  EXPECT_TRUE(h.Has("if-modified-since"));
  EXPECT_TRUE(h.Has("IF-MODIFIED-SINCE"));
  EXPECT_EQ(h.Get("If-modified-Since"), "x");
}

TEST(HeaderMapTest, SetReplacesExisting) {
  HeaderMap h;
  h.Set("Expires", "a");
  h.Set("expires", "b");
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.Get("Expires"), "b");
}

TEST(HeaderMapTest, AddAppendsDuplicates) {
  HeaderMap h;
  h.Add("Via", "proxy1");
  h.Add("Via", "proxy2");
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.Get("Via"), "proxy1");  // first occurrence
}

TEST(HeaderMapTest, MissingFieldIsNullopt) {
  HeaderMap h;
  EXPECT_FALSE(h.Get("Nope").has_value());
  EXPECT_FALSE(h.Has("Nope"));
}

TEST(HeaderMapTest, RemoveAllOccurrences) {
  HeaderMap h;
  h.Add("Via", "a");
  h.Add("via", "b");
  h.Add("Other", "c");
  EXPECT_EQ(h.Remove("VIA"), 2u);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.Remove("VIA"), 0u);
}

TEST(HeaderMapTest, PreservesInsertionOrder) {
  HeaderMap h;
  h.Set("A", "1");
  h.Set("B", "2");
  h.Set("C", "3");
  ASSERT_EQ(h.fields().size(), 3u);
  EXPECT_EQ(h.fields()[0].first, "A");
  EXPECT_EQ(h.fields()[1].first, "B");
  EXPECT_EQ(h.fields()[2].first, "C");
}

TEST(HeaderMapTest, WireBytesCountsNameColonSpaceValueCrlf) {
  HeaderMap h;
  h.Set("Ab", "cdef");  // "Ab: cdef\r\n" == 10 bytes
  EXPECT_EQ(h.WireBytes(), 10u);
  h.Set("X", "y");  // +"X: y\r\n" == 6 bytes
  EXPECT_EQ(h.WireBytes(), 16u);
}

TEST(HeaderMapTest, EmptyMap) {
  HeaderMap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.WireBytes(), 0u);
}

}  // namespace
}  // namespace webcc
