// Property tests for the HTTP message layer: randomized serialize/parse
// round trips and garbage-input robustness. The HttpUpstream path rides on
// these guarantees.

#include <gtest/gtest.h>

#include "src/http/date.h"
#include "src/http/message.h"
#include "src/util/rng.h"
#include "src/util/str.h"

namespace webcc {
namespace {

std::string RandomToken(Rng& rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.";
  const size_t len = static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(max_len)));
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)];
  }
  return out;
}

class MessagePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessagePropertyTest, RequestRoundTripsWithRandomHeaders) {
  Rng rng(GetParam());
  Request request;
  request.uri = "/" + RandomToken(rng, 40);
  if (rng.Bernoulli(0.5)) {
    request.SetIfModifiedSince(SimTime(rng.UniformInt(-86400 * 400, 86400 * 400)));
  }
  const int extra = static_cast<int>(rng.UniformInt(0, 6));
  for (int i = 0; i < extra; ++i) {
    request.headers.Set("X-" + RandomToken(rng, 12), RandomToken(rng, 30));
  }
  const std::string wire = request.Serialize();
  EXPECT_EQ(static_cast<int64_t>(wire.size()), request.WireBytes());

  const auto parsed = Request::Parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->uri, request.uri);
  EXPECT_EQ(parsed->method, request.method);
  EXPECT_EQ(parsed->IfModifiedSince(), request.IfModifiedSince());
  EXPECT_EQ(parsed->headers.size(), request.headers.size());
  for (const auto& [name, value] : request.headers.fields()) {
    EXPECT_EQ(parsed->headers.Get(name), value);
  }
  // Idempotence: re-serializing the parse reproduces the wire bytes.
  EXPECT_EQ(parsed->Serialize(), wire);
}

TEST_P(MessagePropertyTest, ResponseRoundTripsWithRandomMetadata) {
  Rng rng(GetParam() ^ 0x5e5);
  Response response;
  response.status = rng.Bernoulli(0.3) ? StatusCode::kNotModified : StatusCode::kOk;
  response.content_length = rng.UniformInt(0, 1 << 20);
  response.SetLastModified(SimTime(rng.UniformInt(-86400 * 400, 86400 * 400)));
  if (rng.Bernoulli(0.5)) {
    response.SetExpires(SimTime(rng.UniformInt(0, 86400 * 400)));
  }
  const auto parsed = Response::Parse(response.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, response.status);
  EXPECT_EQ(parsed->content_length, response.content_length);
  EXPECT_EQ(parsed->LastModified(), response.LastModified());
  EXPECT_EQ(parsed->Expires(), response.Expires());
}

TEST_P(MessagePropertyTest, ParsersNeverCrashOnGarbage) {
  Rng rng(GetParam() ^ 0xdead);
  for (int i = 0; i < 50; ++i) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 200));
    std::string garbage;
    for (size_t j = 0; j < len; ++j) {
      garbage += static_cast<char>(rng.UniformInt(1, 255));
    }
    // Must not crash; may or may not parse.
    (void)Request::Parse(garbage);
    (void)Response::Parse(garbage);
    (void)ParseHttpDate(garbage);
  }
}

TEST_P(MessagePropertyTest, HttpDateRoundTripsForRandomInstants) {
  Rng rng(GetParam() ^ 0xda7e);
  for (int i = 0; i < 100; ++i) {
    const SimTime t(rng.UniformInt(-86400LL * 365 * 30, 86400LL * 365 * 30));
    const auto parsed = ParseHttpDate(FormatHttpDate(t));
    ASSERT_TRUE(parsed.has_value()) << FormatHttpDate(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST_P(MessagePropertyTest, MutatedWireMostlyRejectsCleanly) {
  // Flip one byte of a valid message; the parser must either reject or
  // produce a structurally sane message — never crash.
  Rng rng(GetParam() ^ 0xf11b);
  Request request;
  request.uri = "/a/b.html";
  request.SetIfModifiedSince(SimTime::Epoch());
  std::string wire = request.Serialize();
  for (int i = 0; i < 60; ++i) {
    std::string mutated = wire;
    const size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(wire.size()) - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(1, 255));
    const auto parsed = Request::Parse(mutated);
    if (parsed) {
      EXPECT_FALSE(parsed->uri.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessagePropertyTest, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace webcc
