#include "src/http/message.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(CostModelTest, PaperConstants) {
  // §4.1: "each message averages 43 bytes".
  EXPECT_EQ(kControlMessageBytes, 43);
  EXPECT_EQ(ControlWireBytes(), 43);
  EXPECT_EQ(DocumentWireBytes(6000), 6043);
  EXPECT_EQ(DocumentWireBytes(0), 43);
}

TEST(MethodTest, Names) {
  EXPECT_EQ(MethodName(Method::kGet), "GET");
  EXPECT_EQ(MethodName(Method::kConditionalGet), "GET");
  EXPECT_EQ(MethodName(Method::kInvalidate), "INVALIDATE");
  EXPECT_EQ(MethodFromName("GET"), Method::kGet);
  EXPECT_EQ(MethodFromName("INVALIDATE"), Method::kInvalidate);
  EXPECT_FALSE(MethodFromName("POST").has_value());
}

TEST(StatusTest, Reasons) {
  EXPECT_EQ(StatusReason(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusReason(StatusCode::kNotModified), "Not Modified");
  EXPECT_EQ(StatusReason(StatusCode::kNotFound), "Not Found");
}

TEST(RequestTest, SerializePlainGet) {
  Request req;
  req.method = Method::kGet;
  req.uri = "/index.html";
  EXPECT_EQ(req.Serialize(), "GET /index.html HTTP/1.0\r\n\r\n");
}

TEST(RequestTest, IfModifiedSinceRoundTrip) {
  Request req;
  req.uri = "/x";
  const SimTime when = SimTime::Epoch() + Days(3) + Hours(4);
  req.SetIfModifiedSince(when);
  EXPECT_EQ(req.method, Method::kConditionalGet);
  EXPECT_EQ(req.IfModifiedSince(), when);
}

TEST(RequestTest, ParseRecognizesConditional) {
  const auto req = Request::Parse(
      "GET /a.gif HTTP/1.0\r\nIf-Modified-Since: Sun, 06 Nov 1994 08:49:37 GMT\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, Method::kConditionalGet);
  EXPECT_EQ(req->uri, "/a.gif");
  EXPECT_TRUE(req->IfModifiedSince().has_value());
}

TEST(RequestTest, SerializeParseRoundTrip) {
  Request req;
  req.uri = "/pub/doc.html";
  req.SetIfModifiedSince(SimTime::Epoch() + Hours(10));
  req.headers.Set("User-Agent", "webcc/1.0");
  const auto parsed = Request::Parse(req.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->uri, req.uri);
  EXPECT_EQ(parsed->method, Method::kConditionalGet);
  EXPECT_EQ(parsed->IfModifiedSince(), req.IfModifiedSince());
  EXPECT_EQ(parsed->headers.Get("User-Agent"), "webcc/1.0");
}

TEST(RequestTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Request::Parse("").has_value());
  EXPECT_FALSE(Request::Parse("GET /x\r\n\r\n").has_value());           // no version
  EXPECT_FALSE(Request::Parse("GET /x HTTP/1.1\r\n\r\n").has_value());  // wrong version
  EXPECT_FALSE(Request::Parse("POST /x HTTP/1.0\r\n\r\n").has_value());
  EXPECT_FALSE(Request::Parse("GET /x HTTP/1.0\r\nBadHeader\r\n\r\n").has_value());
}

TEST(RequestTest, WireBytesMatchesSerializedLength) {
  Request req;
  req.uri = "/a/b/c.html";
  req.SetIfModifiedSince(SimTime::Epoch());
  EXPECT_EQ(req.WireBytes(), static_cast<int64_t>(req.Serialize().size()));
}

TEST(RequestTest, BareRequestLineNear43Bytes) {
  // The paper's 43-byte average control message is about the size of a bare
  // request line — sanity-check our model is in that regime.
  Request req;
  req.uri = "/images/logo.gif";
  const int64_t bytes = req.WireBytes();
  EXPECT_GT(bytes, 30);
  EXPECT_LT(bytes, 60);
}

TEST(ResponseTest, SerializeIncludesContentLength) {
  Response resp;
  resp.status = StatusCode::kOk;
  resp.content_length = 1234;
  const std::string text = resp.Serialize();
  EXPECT_NE(text.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 1234\r\n"), std::string::npos);
}

TEST(ResponseTest, HeaderAccessorsRoundTrip) {
  Response resp;
  const SimTime lm = SimTime::Epoch() - Days(10);
  const SimTime exp = SimTime::Epoch() + Days(2);
  const SimTime date = SimTime::Epoch() + Hours(1);
  resp.SetLastModified(lm);
  resp.SetExpires(exp);
  resp.SetDate(date);
  EXPECT_EQ(resp.LastModified(), lm);
  EXPECT_EQ(resp.Expires(), exp);
  EXPECT_EQ(resp.Date(), date);
}

TEST(ResponseTest, ParseRoundTrip) {
  Response resp;
  resp.status = StatusCode::kNotModified;
  resp.SetLastModified(SimTime::Epoch() - Hours(5));
  const auto parsed = Response::Parse(resp.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, StatusCode::kNotModified);
  EXPECT_EQ(parsed->LastModified(), resp.LastModified());
  EXPECT_EQ(parsed->content_length, 0);
}

TEST(ResponseTest, ParseReadsContentLength) {
  const auto resp = Response::Parse("HTTP/1.0 200 OK\r\nContent-Length: 777\r\n\r\n");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->content_length, 777);
  // Content-Length is structural, not an application header.
  EXPECT_FALSE(resp->headers.Has("Content-Length"));
}

TEST(ResponseTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Response::Parse("").has_value());
  EXPECT_FALSE(Response::Parse("HTTP/1.1 200 OK\r\n\r\n").has_value());
  EXPECT_FALSE(Response::Parse("HTTP/1.0 xyz OK\r\n\r\n").has_value());
  EXPECT_FALSE(Response::Parse("HTTP/1.0 200 OK\r\nContent-Length: -4\r\n\r\n").has_value());
}

TEST(ResponseTest, WireBytesIncludesBody) {
  Response resp;
  resp.status = StatusCode::kOk;
  resp.content_length = 5000;
  const int64_t without_body = resp.WireBytes() - resp.content_length;
  EXPECT_GT(without_body, 0);
  EXPECT_LT(without_body, 100);
}

TEST(ResponseTest, ParseAcceptsBareLf) {
  const auto resp = Response::Parse("HTTP/1.0 200 OK\nServer: cern/3.0\n\n");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->headers.Get("Server"), "cern/3.0");
}

}  // namespace
}  // namespace webcc
