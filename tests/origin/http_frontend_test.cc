#include "src/origin/http_frontend.h"

#include <gtest/gtest.h>

#include "src/http/date.h"

namespace webcc {
namespace {

class HttpFrontendTest : public ::testing::Test {
 protected:
  HttpFrontendTest() : frontend_(&server_) {
    obj_ = server_.store().Create("/pages/index.html", FileType::kHtml, 4786,
                                  SimTime::Epoch() - Days(20));
  }

  OriginServer server_;
  HttpFrontend frontend_;
  ObjectId obj_ = kInvalidObjectId;
};

TEST_F(HttpFrontendTest, PlainGetReturns200WithMetadata) {
  const std::string raw =
      frontend_.Handle("GET /pages/index.html HTTP/1.0\r\n\r\n", SimTime::Epoch());
  const auto response = Response::Parse(raw);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_EQ(response->content_length, 4786);
  EXPECT_EQ(response->LastModified(), SimTime::Epoch() - Days(20));
  EXPECT_EQ(response->Date(), SimTime::Epoch());
  EXPECT_EQ(response->headers.Get("Server"), "webcc-origin/1.0");
  EXPECT_EQ(server_.stats().get_requests, 1u);
}

TEST_F(HttpFrontendTest, UnknownUriReturns404) {
  const auto response =
      Response::Parse(frontend_.Handle("GET /nope.gif HTTP/1.0\r\n\r\n", SimTime::Epoch()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kNotFound);
  EXPECT_EQ(server_.stats().get_requests, 0u);
}

TEST_F(HttpFrontendTest, MalformedRequestCountedNotCrashed) {
  const auto response = Response::Parse(frontend_.Handle("BOGUS", SimTime::Epoch()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kNotFound);
  EXPECT_EQ(frontend_.parse_failures(), 1u);
}

TEST_F(HttpFrontendTest, ConditionalGetFreshCopyGets304) {
  Request request;
  request.uri = "/pages/index.html";
  request.SetIfModifiedSince(SimTime::Epoch() - Days(20));
  const auto response = Response::Parse(frontend_.Handle(request.Serialize(), SimTime::Epoch()));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kNotModified);
  EXPECT_EQ(response->content_length, 0);
  EXPECT_EQ(server_.stats().ims_not_modified, 1u);
}

TEST_F(HttpFrontendTest, ConditionalGetStaleCopyGetsBody) {
  server_.ModifyObject(obj_, SimTime::Epoch() + Hours(1));
  Request request;
  request.uri = "/pages/index.html";
  request.SetIfModifiedSince(SimTime::Epoch() - Days(20));
  const auto response =
      Response::Parse(frontend_.Handle(request.Serialize(), SimTime::Epoch() + Hours(2)));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, StatusCode::kOk);
  EXPECT_EQ(response->content_length, 4786);
  EXPECT_EQ(response->LastModified(), SimTime::Epoch() + Hours(1));
}

TEST_F(HttpFrontendTest, ImsEqualToLastModifiedIsNotModified) {
  // HTTP semantics: modified means STRICTLY newer.
  Request request;
  request.uri = "/pages/index.html";
  request.SetIfModifiedSince(SimTime::Epoch() - Days(20));
  const auto response = Response::Parse(frontend_.Handle(request.Serialize(), SimTime::Epoch()));
  EXPECT_EQ(response->status, StatusCode::kNotModified);
}

TEST_F(HttpFrontendTest, ExpiresProviderSurfacesAsHeader) {
  server_.SetExpiresProvider(
      [](const WebObject&, SimTime now) -> std::optional<SimTime> { return now + Hours(6); });
  const auto response = Response::Parse(
      frontend_.Handle("GET /pages/index.html HTTP/1.0\r\n\r\n", SimTime::Epoch() + Hours(1)));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->Expires(), SimTime::Epoch() + Hours(7));
}

TEST_F(HttpFrontendTest, RequestsHandledCounter) {
  frontend_.Handle("GET /pages/index.html HTTP/1.0\r\n\r\n", SimTime::Epoch());
  frontend_.Handle("GET /pages/index.html HTTP/1.0\r\n\r\n", SimTime::Epoch() + Seconds(1));
  EXPECT_EQ(frontend_.requests_handled(), 2u);
}

TEST_F(HttpFrontendTest, ResponseDatesRoundTripThroughRfc1123) {
  // The whole exchange is text; dates must survive the format.
  server_.ModifyObject(obj_, SimTime::Epoch() + Days(3) + Hours(7) + Seconds(42));
  const auto response = Response::Parse(
      frontend_.Handle("GET /pages/index.html HTTP/1.0\r\n\r\n", SimTime::Epoch() + Days(4)));
  EXPECT_EQ(response->LastModified(), SimTime::Epoch() + Days(3) + Hours(7) + Seconds(42));
}

}  // namespace
}  // namespace webcc
