#include "src/origin/mutator.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/util/str.h"

namespace webcc {
namespace {

class MutatorTest : public ::testing::Test {
 protected:
  MutatorTest() : server_(&engine_) {
    obj_ = server_.store().Create("/f", FileType::kHtml, 1000, SimTime::Epoch());
  }

  SimEngine engine_;
  OriginServer server_;
  ObjectId obj_ = kInvalidObjectId;
};

TEST_F(MutatorTest, TrackedObjectChangesRepeatedly) {
  ModificationProcess mutator(&engine_, &server_, Rng(1));
  mutator.Track(obj_, std::make_shared<FlatLifetime>(Hours(10), Hours(10)));
  engine_.RunUntil(SimTime::Epoch() + Hours(35));
  // Changes at exactly 10h, 20h, 30h.
  EXPECT_EQ(server_.store().Get(obj_).change_count, 3u);
  EXPECT_EQ(mutator.modifications_applied(), 3u);
  EXPECT_EQ(server_.store().Get(obj_).last_modified, SimTime::Epoch() + Hours(30));
}

TEST_F(MutatorTest, FirstDelayOverride) {
  ModificationProcess mutator(&engine_, &server_, Rng(2));
  mutator.Track(obj_, std::make_shared<FlatLifetime>(Hours(10), Hours(10)), Hours(2));
  engine_.RunUntil(SimTime::Epoch() + Hours(13));
  // Changes at 2h (override) and 12h (regular draw).
  EXPECT_EQ(server_.store().Get(obj_).change_count, 2u);
}

TEST_F(MutatorTest, StochasticRateMatchesLifetimeMean) {
  ModificationProcess mutator(&engine_, &server_, Rng(3));
  // 50 objects with 1-day mean exponential lifetimes over 40 days
  // -> expect about 2000 changes.
  std::vector<ObjectId> ids;
  auto lifetime = std::make_shared<ExponentialLifetime>(Days(1));
  for (int i = 0; i < 50; ++i) {
    const ObjectId id =
        server_.store().Create(StrFormat("/s%d", i), FileType::kGif, 100, SimTime::Epoch());
    mutator.Track(id, lifetime);
    ids.push_back(id);
  }
  engine_.RunUntil(SimTime::Epoch() + Days(40));
  const uint64_t changes = server_.store().TotalChanges();
  EXPECT_GT(changes, 1700u);
  EXPECT_LT(changes, 2300u);
}

TEST_F(MutatorTest, StopCancelsFutureChanges) {
  ModificationProcess mutator(&engine_, &server_, Rng(4));
  mutator.Track(obj_, std::make_shared<FlatLifetime>(Hours(10), Hours(10)));
  engine_.RunUntil(SimTime::Epoch() + Hours(15));
  EXPECT_EQ(server_.store().Get(obj_).change_count, 1u);
  mutator.Stop();
  engine_.RunUntil(SimTime::Epoch() + Hours(100));
  EXPECT_EQ(server_.store().Get(obj_).change_count, 1u);
}

TEST_F(MutatorTest, SizeModelApplied) {
  ModificationProcess mutator(&engine_, &server_, Rng(5));
  mutator.set_size_model([](const WebObject& obj, Rng&) { return obj.size_bytes + 100; });
  mutator.Track(obj_, std::make_shared<FlatLifetime>(Hours(1), Hours(1)));
  engine_.RunUntil(SimTime::Epoch() + Hours(3) + Minutes(30));
  EXPECT_EQ(server_.store().Get(obj_).size_bytes, 1300);
}

TEST_F(MutatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    SimEngine engine;
    OriginServer server(&engine);
    const ObjectId id = server.store().Create("/d", FileType::kHtml, 10, SimTime::Epoch());
    ModificationProcess mutator(&engine, &server, Rng(seed));
    mutator.Track(id, std::make_shared<ExponentialLifetime>(Hours(7)));
    engine.RunUntil(SimTime::Epoch() + Days(30));
    return server.store().Get(id).change_count;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // overwhelmingly likely for a 30-day window
}

TEST_F(MutatorTest, ScriptedModificationsReplayInOrder) {
  ScriptedModifications script(&engine_, &server_);
  // Added out of order on purpose.
  script.Add(SimTime::Epoch() + Hours(20), obj_);
  script.Add(SimTime::Epoch() + Hours(5), obj_, 777);
  script.Add(SimTime::Epoch() + Hours(10), obj_);
  EXPECT_EQ(script.size(), 3u);
  script.ScheduleAll();
  engine_.RunUntil(SimTime::Epoch() + Hours(6));
  EXPECT_EQ(server_.store().Get(obj_).change_count, 1u);
  EXPECT_EQ(server_.store().Get(obj_).size_bytes, 777);
  engine_.Run();
  EXPECT_EQ(server_.store().Get(obj_).change_count, 3u);
  EXPECT_EQ(server_.store().Get(obj_).last_modified, SimTime::Epoch() + Hours(20));
}

TEST_F(MutatorTest, SameTimestampChangesBatchIntoOneEngineEvent) {
  const ObjectId b = server_.store().Create("/b", FileType::kGif, 500, SimTime::Epoch());
  const ObjectId c = server_.store().Create("/c", FileType::kHtml, 800, SimTime::Epoch());
  const SimTime burst = SimTime::Epoch() + Hours(4);

  ScriptedModifications script(&engine_, &server_);
  script.Add(burst, obj_, 111);
  script.Add(burst, b, 222);
  script.Add(burst, c, 333);
  script.Add(SimTime::Epoch() + Hours(9), obj_, 444);
  const uint64_t before = engine_.events_scheduled();
  script.ScheduleAll();
  // Four changes, two distinct timestamps -> two engine events.
  EXPECT_EQ(engine_.events_scheduled() - before, 2u);
  EXPECT_EQ(script.bursts_scheduled(), 2u);
  engine_.Run();

  // Field-exact against unbatched semantics: a twin world applying the same
  // changes through one engine event each must end in the identical store.
  SimEngine twin_engine;
  OriginServer twin(&twin_engine);
  const ObjectId ta = twin.store().Create("/f", FileType::kHtml, 1000, SimTime::Epoch());
  const ObjectId tb = twin.store().Create("/b", FileType::kGif, 500, SimTime::Epoch());
  const ObjectId tc = twin.store().Create("/c", FileType::kHtml, 800, SimTime::Epoch());
  const struct {
    SimTime at;
    ObjectId object;
    int64_t size;
  } changes[] = {{burst, ta, 111}, {burst, tb, 222}, {burst, tc, 333},
                 {SimTime::Epoch() + Hours(9), ta, 444}};
  for (const auto& ch : changes) {
    twin_engine.ScheduleAt(ch.at, [&twin, &twin_engine, object = ch.object, size = ch.size] {
      twin.ModifyObject(object, twin_engine.Now(), size);
    });
  }
  twin_engine.Run();
  EXPECT_GT(twin_engine.events_executed(), engine_.events_executed());
  const ObjectId batched[] = {obj_, b, c};
  const ObjectId unbatched[] = {ta, tb, tc};
  for (size_t i = 0; i < 3; ++i) {
    const WebObject& got = server_.store().Get(batched[i]);
    const WebObject& want = twin.store().Get(unbatched[i]);
    EXPECT_EQ(got.size_bytes, want.size_bytes) << i;
    EXPECT_EQ(got.last_modified, want.last_modified) << i;
    EXPECT_EQ(got.change_count, want.change_count) << i;
  }
}

TEST_F(MutatorTest, ScriptedModificationsNotifyInvalidationSubscribers) {
  struct CountingSink : InvalidationSink {
    int count = 0;
    bool DeliverInvalidation(ObjectId, SimTime) override {
      ++count;
      return true;
    }
  } sink;
  server_.Subscribe(server_.RegisterCache(&sink), obj_);
  ScriptedModifications script(&engine_, &server_);
  script.Add(SimTime::Epoch() + Hours(1), obj_);
  script.Add(SimTime::Epoch() + Hours(2), obj_);
  script.ScheduleAll();
  engine_.Run();
  EXPECT_EQ(sink.count, 2);
}

}  // namespace
}  // namespace webcc
