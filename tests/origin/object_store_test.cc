#include "src/origin/object_store.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(ObjectStoreTest, CreateAssignsDenseIds) {
  ObjectStore store;
  const ObjectId a = store.Create("/a", FileType::kHtml, 100, SimTime::Epoch());
  const ObjectId b = store.Create("/b", FileType::kGif, 200, SimTime::Epoch());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(a));
  EXPECT_TRUE(store.Contains(b));
  EXPECT_FALSE(store.Contains(2));
}

TEST(ObjectStoreTest, CreateInitializesFields) {
  ObjectStore store;
  const SimTime created = SimTime::Epoch() - Days(10);
  const ObjectId id = store.Create("/x.gif", FileType::kGif, 7791, created);
  const WebObject& obj = store.Get(id);
  EXPECT_EQ(obj.name, "/x.gif");
  EXPECT_EQ(obj.type, FileType::kGif);
  EXPECT_EQ(obj.size_bytes, 7791);
  EXPECT_EQ(obj.version, 1u);
  EXPECT_EQ(obj.created_at, created);
  EXPECT_EQ(obj.last_modified, created);
  EXPECT_EQ(obj.change_count, 0u);
}

TEST(ObjectStoreTest, FindByName) {
  ObjectStore store;
  const ObjectId id = store.Create("/found", FileType::kOther, 1, SimTime::Epoch());
  EXPECT_EQ(store.FindByName("/found"), id);
  EXPECT_EQ(store.FindByName("/missing"), kInvalidObjectId);
}

TEST(ObjectStoreTest, ModifyBumpsVersionAndTime) {
  ObjectStore store;
  const ObjectId id = store.Create("/m", FileType::kHtml, 500, SimTime::Epoch());
  store.Modify(id, SimTime::Epoch() + Hours(5));
  const WebObject& obj = store.Get(id);
  EXPECT_EQ(obj.version, 2u);
  EXPECT_EQ(obj.change_count, 1u);
  EXPECT_EQ(obj.last_modified, SimTime::Epoch() + Hours(5));
  EXPECT_EQ(obj.size_bytes, 500);  // unchanged when new_size < 0
}

TEST(ObjectStoreTest, ModifyCanResize) {
  ObjectStore store;
  const ObjectId id = store.Create("/m", FileType::kHtml, 500, SimTime::Epoch());
  store.Modify(id, SimTime::Epoch() + Hours(1), 999);
  EXPECT_EQ(store.Get(id).size_bytes, 999);
}

TEST(ObjectStoreTest, RepeatedModifications) {
  ObjectStore store;
  const ObjectId id = store.Create("/m", FileType::kHtml, 1, SimTime::Epoch());
  for (int i = 1; i <= 10; ++i) {
    store.Modify(id, SimTime::Epoch() + Hours(i));
  }
  EXPECT_EQ(store.Get(id).version, 11u);
  EXPECT_EQ(store.Get(id).change_count, 10u);
}

TEST(ObjectStoreTest, ModifyAtSameInstantAllowed) {
  ObjectStore store;
  const ObjectId id = store.Create("/m", FileType::kHtml, 1, SimTime::Epoch());
  store.Modify(id, SimTime::Epoch() + Hours(1));
  store.Modify(id, SimTime::Epoch() + Hours(1));
  EXPECT_EQ(store.Get(id).change_count, 2u);
}

TEST(ObjectStoreTest, Aggregates) {
  ObjectStore store;
  store.Create("/a", FileType::kGif, 100, SimTime::Epoch());
  const ObjectId b = store.Create("/b", FileType::kGif, 250, SimTime::Epoch());
  store.Modify(b, SimTime::Epoch() + Seconds(1));
  store.Modify(b, SimTime::Epoch() + Seconds(2));
  EXPECT_EQ(store.TotalBytes(), 350);
  EXPECT_EQ(store.TotalChanges(), 2u);
}

TEST(ObjectStoreTest, ObjectsCreatedInThePast) {
  ObjectStore store;
  const ObjectId id = store.Create("/old", FileType::kHtml, 10, SimTime::Epoch() - Days(100));
  // Modifications after creation but before the epoch are legal.
  store.Modify(id, SimTime::Epoch() - Days(50));
  EXPECT_EQ(store.Get(id).last_modified, SimTime::Epoch() - Days(50));
}

}  // namespace
}  // namespace webcc
