#include "src/origin/object.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(FileTypeTest, NamesRoundTrip) {
  for (int t = 0; t < kNumFileTypes; ++t) {
    const auto type = static_cast<FileType>(t);
    EXPECT_EQ(FileTypeFromName(FileTypeName(type)), type);
  }
}

TEST(FileTypeTest, AliasesRecognized) {
  EXPECT_EQ(FileTypeFromName("htm"), FileType::kHtml);
  EXPECT_EQ(FileTypeFromName("jpeg"), FileType::kJpg);
  EXPECT_EQ(FileTypeFromName("GIF"), FileType::kGif);
  EXPECT_EQ(FileTypeFromName("weird"), FileType::kOther);
}

TEST(FileTypeTest, FromUriSuffix) {
  EXPECT_EQ(FileTypeFromUri("/a/b/logo.gif"), FileType::kGif);
  EXPECT_EQ(FileTypeFromUri("/index.html"), FileType::kHtml);
  EXPECT_EQ(FileTypeFromUri("/photos/x.JPEG"), FileType::kJpg);
  EXPECT_EQ(FileTypeFromUri("/README"), FileType::kOther);
  EXPECT_EQ(FileTypeFromUri("/a.tar.gz"), FileType::kOther);
}

TEST(FileTypeTest, DynamicContentIsCgi) {
  EXPECT_EQ(FileTypeFromUri("/cgi-bin/search"), FileType::kCgi);
  EXPECT_EQ(FileTypeFromUri("/page.html?user=7"), FileType::kCgi);
  EXPECT_EQ(FileTypeFromUri("/app.cgi"), FileType::kCgi);
}

TEST(WebObjectTest, AgeComputation) {
  WebObject obj;
  obj.last_modified = SimTime::Epoch() - Days(30);
  EXPECT_EQ(obj.AgeAt(SimTime::Epoch()), Days(30));
  EXPECT_EQ(obj.AgeAt(SimTime::Epoch() + Days(1)), Days(31));
}

TEST(WebObjectTest, Defaults) {
  WebObject obj;
  EXPECT_EQ(obj.id, kInvalidObjectId);
  EXPECT_EQ(obj.version, 1u);
  EXPECT_EQ(obj.change_count, 0u);
}

}  // namespace
}  // namespace webcc
