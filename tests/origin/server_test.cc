#include "src/origin/server.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/http/message.h"

namespace webcc {
namespace {

// Minimal sink that records deliveries and can simulate unreachability.
class RecordingSink : public InvalidationSink {
 public:
  bool DeliverInvalidation(ObjectId id, SimTime now) override {
    if (!reachable) {
      ++dropped;
      return false;
    }
    deliveries.push_back({id, now});
    return true;
  }

  struct Delivery {
    ObjectId id;
    SimTime at;
  };
  std::vector<Delivery> deliveries;
  int dropped = 0;
  bool reachable = true;
};

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : server_() {
    obj_ = server_.store().Create("/doc.html", FileType::kHtml, 6000, SimTime::Epoch() - Days(5));
  }

  OriginServer server_;
  ObjectId obj_ = kInvalidObjectId;
};

TEST_F(ServerTest, HandleGetReturnsDocumentAndAccounts) {
  const auto result = server_.HandleGet(obj_, SimTime::Epoch());
  EXPECT_EQ(result.body_bytes, 6000);
  EXPECT_EQ(result.version, 1u);
  EXPECT_EQ(result.last_modified, SimTime::Epoch() - Days(5));

  const ServerStats& s = server_.stats();
  EXPECT_EQ(s.get_requests, 1u);
  EXPECT_EQ(s.files_transferred, 1u);
  EXPECT_EQ(s.bytes_received, kControlMessageBytes);
  EXPECT_EQ(s.bytes_sent, kControlMessageBytes + 6000);
  EXPECT_EQ(s.TotalOperations(), 1u);
}

TEST_F(ServerTest, ConditionalGetNotModified) {
  const auto result = server_.HandleConditionalGet(obj_, /*held_version=*/1, SimTime::Epoch());
  EXPECT_FALSE(result.modified);
  EXPECT_EQ(result.body_bytes, 0);

  const ServerStats& s = server_.stats();
  EXPECT_EQ(s.ims_queries, 1u);
  EXPECT_EQ(s.ims_not_modified, 1u);
  EXPECT_EQ(s.files_transferred, 0u);
  // Query + 304: two control messages total.
  EXPECT_EQ(s.TotalBytes(), 2 * kControlMessageBytes);
}

TEST_F(ServerTest, ConditionalGetModifiedShipsBody) {
  server_.ModifyObject(obj_, SimTime::Epoch() + Hours(1));
  const auto result = server_.HandleConditionalGet(obj_, 1, SimTime::Epoch() + Hours(2));
  EXPECT_TRUE(result.modified);
  EXPECT_EQ(result.body_bytes, 6000);
  EXPECT_EQ(result.version, 2u);

  const ServerStats& s = server_.stats();
  EXPECT_EQ(s.ims_queries, 1u);
  EXPECT_EQ(s.ims_not_modified, 0u);
  EXPECT_EQ(s.files_transferred, 1u);
  // A combined query+retransmit counts as ONE server operation (paper §3).
  EXPECT_EQ(s.TotalOperations(), 1u);
}

TEST_F(ServerTest, InvalidationDeliveredToSubscribers) {
  RecordingSink sink;
  const CacheId cache = server_.RegisterCache(&sink);
  server_.Subscribe(cache, obj_);
  EXPECT_TRUE(server_.IsSubscribed(cache, obj_));

  server_.ModifyObject(obj_, SimTime::Epoch() + Hours(3));
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].id, obj_);
  EXPECT_EQ(sink.deliveries[0].at, SimTime::Epoch() + Hours(3));
  EXPECT_EQ(server_.stats().invalidations_sent, 1u);
  EXPECT_EQ(server_.stats().bytes_sent, kControlMessageBytes);
}

TEST_F(ServerTest, NoInvalidationWithoutSubscription) {
  RecordingSink sink;
  server_.RegisterCache(&sink);
  server_.ModifyObject(obj_, SimTime::Epoch() + Hours(1));
  EXPECT_TRUE(sink.deliveries.empty());
  EXPECT_EQ(server_.stats().invalidations_sent, 0u);
}

TEST_F(ServerTest, UnsubscribeStopsNotices) {
  RecordingSink sink;
  const CacheId cache = server_.RegisterCache(&sink);
  server_.Subscribe(cache, obj_);
  server_.Unsubscribe(cache, obj_);
  EXPECT_FALSE(server_.IsSubscribed(cache, obj_));
  server_.ModifyObject(obj_, SimTime::Epoch() + Hours(1));
  EXPECT_TRUE(sink.deliveries.empty());
}

TEST_F(ServerTest, SubscriptionCountTracksBookkeeping) {
  RecordingSink a;
  RecordingSink b;
  const CacheId ca = server_.RegisterCache(&a);
  const CacheId cb = server_.RegisterCache(&b);
  const ObjectId second =
      server_.store().Create("/b.gif", FileType::kGif, 100, SimTime::Epoch());
  EXPECT_EQ(server_.SubscriptionCount(), 0u);
  server_.Subscribe(ca, obj_);
  server_.Subscribe(ca, obj_);  // idempotent
  server_.Subscribe(cb, obj_);
  server_.Subscribe(cb, second);
  EXPECT_EQ(server_.SubscriptionCount(), 3u);
  server_.Unsubscribe(cb, second);
  EXPECT_EQ(server_.SubscriptionCount(), 2u);
}

TEST_F(ServerTest, EveryChangeNotifiesEverySubscriber) {
  RecordingSink a;
  RecordingSink b;
  server_.Subscribe(server_.RegisterCache(&a), obj_);
  server_.Subscribe(server_.RegisterCache(&b), obj_);
  for (int i = 1; i <= 4; ++i) {
    server_.ModifyObject(obj_, SimTime::Epoch() + Hours(i));
  }
  EXPECT_EQ(a.deliveries.size(), 4u);
  EXPECT_EQ(b.deliveries.size(), 4u);
  EXPECT_EQ(server_.stats().invalidations_sent, 8u);
}

TEST(ServerRetryTest, RetriesUnreachableCacheUntilDelivered) {
  SimEngine engine;
  OriginServer server(&engine, /*retry_interval=*/Minutes(5));
  const ObjectId obj = server.store().Create("/x", FileType::kHtml, 100, SimTime::Epoch());
  RecordingSink sink;
  sink.reachable = false;
  server.Subscribe(server.RegisterCache(&sink), obj);

  server.ModifyObject(obj, SimTime::Epoch());
  EXPECT_EQ(sink.dropped, 1);

  // Two retry windows pass while the cache is down.
  engine.RunUntil(SimTime::Epoch() + Minutes(11));
  EXPECT_EQ(sink.dropped, 3);
  EXPECT_TRUE(sink.deliveries.empty());

  // The cache comes back; the next retry succeeds and retries stop.
  sink.reachable = true;
  engine.RunUntil(SimTime::Epoch() + Hours(2));
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].id, obj);
  EXPECT_EQ(sink.dropped, 3);
  EXPECT_EQ(server.stats().invalidation_retries, 3u);
  EXPECT_EQ(server.stats().invalidations_sent, 4u);
}

TEST(ServerRetryTest, NoEngineMeansNoRetries) {
  OriginServer server;  // no engine
  const ObjectId obj = server.store().Create("/x", FileType::kHtml, 100, SimTime::Epoch());
  RecordingSink sink;
  sink.reachable = false;
  server.Subscribe(server.RegisterCache(&sink), obj);
  server.ModifyObject(obj, SimTime::Epoch());
  EXPECT_EQ(sink.dropped, 1);
  EXPECT_EQ(server.stats().invalidations_sent, 1u);
}

TEST_F(ServerTest, ExpiresProviderPropagates) {
  server_.SetExpiresProvider([](const WebObject& obj, SimTime now) -> std::optional<SimTime> {
    (void)obj;
    return now + Days(1);
  });
  const auto get = server_.HandleGet(obj_, SimTime::Epoch());
  ASSERT_TRUE(get.expires.has_value());
  EXPECT_EQ(*get.expires, SimTime::Epoch() + Days(1));
  const auto cond = server_.HandleConditionalGet(obj_, 1, SimTime::Epoch() + Hours(1));
  ASSERT_TRUE(cond.expires.has_value());
  EXPECT_EQ(*cond.expires, SimTime::Epoch() + Hours(1) + Days(1));
}

TEST_F(ServerTest, ResetStatsClears) {
  server_.HandleGet(obj_, SimTime::Epoch());
  server_.ResetStats();
  EXPECT_EQ(server_.stats().get_requests, 0u);
  EXPECT_EQ(server_.stats().TotalBytes(), 0);
}

}  // namespace
}  // namespace webcc
