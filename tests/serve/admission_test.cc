#include "src/serve/admission.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(AdmissionTest, AdmitsUpToCapacityThenSheds) {
  AdmissionController admission(3);
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_FALSE(admission.TryAdmit());
  EXPECT_FALSE(admission.TryAdmit());

  const auto counters = admission.counters();
  EXPECT_EQ(counters.offered, 5u);
  EXPECT_EQ(counters.admitted, 3u);
  EXPECT_EQ(counters.shed, 2u);
  EXPECT_EQ(counters.depth, 3u);
  EXPECT_EQ(counters.depth_peak, 3u);
  EXPECT_EQ(counters.capacity, 3u);
}

TEST(AdmissionTest, ReleaseOpensASlot) {
  AdmissionController admission(1);
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_FALSE(admission.TryAdmit());
  admission.Release();
  EXPECT_TRUE(admission.TryAdmit());

  const auto counters = admission.counters();
  EXPECT_EQ(counters.admitted, 2u);
  EXPECT_EQ(counters.shed, 1u);
  EXPECT_EQ(counters.depth, 1u);
  EXPECT_EQ(counters.depth_peak, 1u);
}

TEST(AdmissionTest, ZeroCapacityClampsToOne) {
  AdmissionController admission(0);
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_FALSE(admission.TryAdmit());
  EXPECT_EQ(admission.counters().capacity, 1u);
}

TEST(AdmissionTest, DepthPeakNeverExceedsCapacityUnderContention) {
  constexpr size_t kCapacity = 8;
  constexpr int kThreads = 6;
  constexpr int kRoundsPerThread = 2000;
  AdmissionController admission(kCapacity);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&admission] {
      for (int i = 0; i < kRoundsPerThread; ++i) {
        if (admission.TryAdmit()) {
          admission.Release();
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto counters = admission.counters();
  EXPECT_EQ(counters.offered, static_cast<uint64_t>(kThreads) * kRoundsPerThread);
  EXPECT_EQ(counters.offered, counters.admitted + counters.shed);
  EXPECT_EQ(counters.depth, 0u);
  EXPECT_LE(counters.depth_peak, kCapacity);
}

}  // namespace
}  // namespace webcc
