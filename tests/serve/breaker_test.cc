#include "src/serve/breaker.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

using Decision = CircuitBreaker::Decision;

CircuitBreaker::Options SmallBreaker() {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_ns = 1000;
  return options;
}

TEST(BreakerTest, StaysClosedBelowThreshold) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(breaker.Admit(0), Decision::kAllow);
    breaker.RecordFailure(Decision::kAllow, 0);
  }
  EXPECT_EQ(breaker.counters().state, BreakerState::kClosed);
  EXPECT_EQ(breaker.counters().consecutive_failures, 2);
  EXPECT_EQ(breaker.counters().opened, 0u);
}

TEST(BreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker breaker(SmallBreaker());
  breaker.RecordFailure(Decision::kAllow, 0);
  breaker.RecordFailure(Decision::kAllow, 0);
  breaker.RecordSuccess(Decision::kAllow);
  EXPECT_EQ(breaker.counters().consecutive_failures, 0);
  breaker.RecordFailure(Decision::kAllow, 0);
  breaker.RecordFailure(Decision::kAllow, 0);
  EXPECT_EQ(breaker.counters().state, BreakerState::kClosed);
}

TEST(BreakerTest, OpensAtThresholdAndShortCircuitsDuringCooldown) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Decision::kAllow, 100);
  }
  EXPECT_EQ(breaker.counters().state, BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().opened, 1u);
  // Cooldown runs until 100 + 1000.
  EXPECT_EQ(breaker.Admit(500), Decision::kShortCircuit);
  EXPECT_EQ(breaker.Admit(1099), Decision::kShortCircuit);
  EXPECT_EQ(breaker.counters().short_circuited, 2u);
}

TEST(BreakerTest, ProbeAfterCooldownClosesOnSuccess) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Decision::kAllow, 0);
  }
  EXPECT_EQ(breaker.Admit(1000), Decision::kProbe);
  // Only one probe is outstanding; everyone else short-circuits.
  EXPECT_EQ(breaker.Admit(1001), Decision::kShortCircuit);
  breaker.RecordSuccess(Decision::kProbe);
  const auto counters = breaker.counters();
  EXPECT_EQ(counters.state, BreakerState::kClosed);
  EXPECT_EQ(counters.half_open_probes, 1u);
  EXPECT_EQ(counters.closed_from_half_open, 1u);
  EXPECT_EQ(breaker.Admit(1002), Decision::kAllow);
}

TEST(BreakerTest, ProbeFailureReopensForAnotherCooldown) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Decision::kAllow, 0);
  }
  EXPECT_EQ(breaker.Admit(1000), Decision::kProbe);
  breaker.RecordFailure(Decision::kProbe, 1000);
  const auto counters = breaker.counters();
  EXPECT_EQ(counters.state, BreakerState::kOpen);
  EXPECT_EQ(counters.reopened, 1u);
  // The new cooldown starts at the probe failure.
  EXPECT_EQ(breaker.Admit(1999), Decision::kShortCircuit);
  EXPECT_EQ(breaker.Admit(2000), Decision::kProbe);
}

TEST(BreakerTest, AbandonedProbeHandsTheTokenToTheNextRequest) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Decision::kAllow, 0);
  }
  EXPECT_EQ(breaker.Admit(1000), Decision::kProbe);
  // The probe was served locally (fresh hit): no origin outcome exists.
  breaker.AbandonAttempt(Decision::kProbe);
  // The very next request becomes the probe instead of short-circuiting.
  EXPECT_EQ(breaker.Admit(1001), Decision::kProbe);
  EXPECT_EQ(breaker.counters().half_open_probes, 2u);
}

TEST(BreakerTest, StaleAllowOutcomesDoNotDisturbAnOpenBreaker) {
  CircuitBreaker breaker(SmallBreaker());
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Decision::kAllow, 0);
  }
  // In-flight kAllow attempts finishing after the transition are ignored.
  breaker.RecordSuccess(Decision::kAllow);
  breaker.RecordFailure(Decision::kAllow, 50);
  const auto counters = breaker.counters();
  EXPECT_EQ(counters.state, BreakerState::kOpen);
  EXPECT_EQ(counters.opened, 1u);
  EXPECT_EQ(counters.reopened, 0u);
}

TEST(BreakerTest, FullOutageCycleCountsEveryTransition) {
  CircuitBreaker breaker(SmallBreaker());
  // Outage: threshold failures open it.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(breaker.Admit(0), Decision::kAllow);
    breaker.RecordFailure(Decision::kAllow, 0);
  }
  // Two failed probes while the outage persists.
  ASSERT_EQ(breaker.Admit(1000), Decision::kProbe);
  breaker.RecordFailure(Decision::kProbe, 1000);
  ASSERT_EQ(breaker.Admit(2000), Decision::kProbe);
  breaker.RecordFailure(Decision::kProbe, 2000);
  // Origin heals; the third probe closes it.
  ASSERT_EQ(breaker.Admit(3000), Decision::kProbe);
  breaker.RecordSuccess(Decision::kProbe);
  const auto counters = breaker.counters();
  EXPECT_EQ(counters.opened, 1u);
  EXPECT_EQ(counters.reopened, 2u);
  EXPECT_EQ(counters.half_open_probes, 3u);
  EXPECT_EQ(counters.closed_from_half_open, 1u);
  EXPECT_EQ(counters.state, BreakerState::kClosed);
}

TEST(BreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace webcc
