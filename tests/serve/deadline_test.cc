#include "src/serve/deadline.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace webcc {
namespace {

ServeRetryConfig NoJitter() {
  ServeRetryConfig config;
  config.max_attempts = 4;
  config.initial_backoff_ns = 1000;
  config.backoff_multiplier = 2.0;
  config.max_backoff_ns = 3000;
  config.full_jitter = false;
  return config;
}

TEST(DeadlineTest, BackoffIsCappedExponential) {
  const ServeRetryConfig config = NoJitter();
  EXPECT_EQ(BackoffNanos(config, 1), 1000);
  EXPECT_EQ(BackoffNanos(config, 2), 2000);
  EXPECT_EQ(BackoffNanos(config, 3), 3000);  // 4000 clipped to the cap
  EXPECT_EQ(BackoffNanos(config, 20), 3000);
}

TEST(DeadlineTest, RetryDeniedWhenAttemptsExhausted) {
  const ServeRetryConfig config = NoJitter();
  SplitMix64 rng(1);
  EXPECT_TRUE(NextRetryDelayNanos(config, 3, 1'000'000, rng).has_value());
  EXPECT_FALSE(NextRetryDelayNanos(config, 4, 1'000'000, rng).has_value());
  EXPECT_FALSE(NextRetryDelayNanos(config, 5, 1'000'000, rng).has_value());
}

TEST(DeadlineTest, RetryMustStrictlyFitTheRemainingBudget) {
  const ServeRetryConfig config = NoJitter();
  SplitMix64 rng(1);
  // First failure wants a 1000 ns backoff.
  EXPECT_FALSE(NextRetryDelayNanos(config, 1, 0, rng).has_value());
  EXPECT_FALSE(NextRetryDelayNanos(config, 1, -50, rng).has_value());
  EXPECT_FALSE(NextRetryDelayNanos(config, 1, 999, rng).has_value());
  // Equality still loses: the attempt would begin exactly at the deadline.
  EXPECT_FALSE(NextRetryDelayNanos(config, 1, 1000, rng).has_value());
  const auto delay = NextRetryDelayNanos(config, 1, 1001, rng);
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(*delay, 1000);
}

TEST(DeadlineTest, NoJitterConsumesNoRandomness) {
  const ServeRetryConfig config = NoJitter();
  SplitMix64 used(42);
  SplitMix64 untouched(42);
  for (int failed = 1; failed <= 3; ++failed) {
    (void)NextRetryDelayNanos(config, failed, 1'000'000, used);
  }
  // Both streams are still in lockstep: the drawless-when-off guarantee.
  EXPECT_EQ(used.Next(), untouched.Next());
}

TEST(DeadlineTest, FullJitterStaysWithinTheDeterministicBackoff) {
  ServeRetryConfig config = NoJitter();
  config.full_jitter = true;
  SplitMix64 rng(7);
  for (int round = 0; round < 200; ++round) {
    for (int failed = 1; failed <= 3; ++failed) {
      const auto delay = NextRetryDelayNanos(config, failed, 1'000'000, rng);
      ASSERT_TRUE(delay.has_value());
      EXPECT_GE(*delay, 0);
      EXPECT_LE(*delay, BackoffNanos(config, failed));
    }
  }
}

TEST(DeadlineTest, FullJitterIsSeedReproducible) {
  ServeRetryConfig config = NoJitter();
  config.full_jitter = true;
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int failed = 1; failed <= 3; ++failed) {
    EXPECT_EQ(NextRetryDelayNanos(config, failed, 1'000'000, a),
              NextRetryDelayNanos(config, failed, 1'000'000, b));
  }
}

TEST(DeadlineTest, JitteredRetryStillRespectsTheBudget) {
  ServeRetryConfig config = NoJitter();
  config.full_jitter = true;
  SplitMix64 rng(3);
  // The jittered delay can be small, but a delay >= remaining must still be
  // denied no matter what the draw produced.
  for (int round = 0; round < 500; ++round) {
    const auto delay = NextRetryDelayNanos(config, 1, 500, rng);
    if (delay.has_value()) {
      EXPECT_LT(*delay, 500);
    }
  }
}

}  // namespace
}  // namespace webcc
