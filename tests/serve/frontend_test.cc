#include "src/serve/frontend.h"

#include <gtest/gtest.h>

#include "src/cache/origin_upstream.h"
#include "src/origin/server.h"
#include "src/serve/origin_gate.h"
#include "src/serve/wall_clock.h"

namespace webcc {
namespace {

// --- OriginGate (deterministic, manual clock) ---

TEST(OriginGateTest, OutageWindowFailsFetchesOnlyInside) {
  ManualWallClock clock;
  OriginServer server;
  const ObjectId id =
      server.store().Create("/a.html", FileType::kHtml, 1000, SimTime::Epoch() - Days(1));
  OriginUpstream upstream(&server);
  OriginGate gate(&upstream, &clock);
  gate.SetOutageWindow(1000, 2000);

  clock.Advance(500);  // t=500: before the outage
  EXPECT_TRUE(gate.FetchFull(id, SimTime::Epoch()).ok);
  clock.Advance(500);  // t=1000: the window is half-open [start, end)
  EXPECT_FALSE(gate.FetchFull(id, SimTime::Epoch()).ok);
  EXPECT_FALSE(gate.FetchIfModified(id, 1, SimTime::Epoch()).ok);
  clock.Advance(1000);  // t=2000: healed
  EXPECT_TRUE(gate.FetchFull(id, SimTime::Epoch()).ok);
  EXPECT_EQ(gate.fetch_attempts(), 4u);
  EXPECT_EQ(gate.fetch_failures(), 2u);
}

TEST(OriginGateTest, ForceFailLatchesIndependentlyOfTheWindow) {
  ManualWallClock clock;
  OriginServer server;
  const ObjectId id =
      server.store().Create("/a.html", FileType::kHtml, 1000, SimTime::Epoch() - Days(1));
  OriginUpstream upstream(&server);
  OriginGate gate(&upstream, &clock);

  EXPECT_FALSE(gate.Down());
  gate.set_force_fail(true);
  EXPECT_TRUE(gate.Down());
  EXPECT_FALSE(gate.FetchFull(id, SimTime::Epoch()).ok);
  gate.set_force_fail(false);
  EXPECT_TRUE(gate.FetchFull(id, SimTime::Epoch()).ok);
}

TEST(ManualWallClockTest, SleepAdvancesTime) {
  ManualWallClock clock;
  EXPECT_EQ(clock.NowNanos(), 0);
  clock.SleepNanos(250);
  EXPECT_EQ(clock.NowNanos(), 250);
  clock.Advance(750);
  EXPECT_EQ(clock.NowNanos(), 1000);
}

// --- ServeFrontend (real clock; asserts are schedule-independent) ---

ServeFrontendOptions BaseOptions() {
  ServeFrontendOptions options;
  options.world.policy = PolicyConfig::Ttl(HoursF(0.01));  // 36 sim s = 10 wall ms
  options.world.num_files = 500;
  options.world.seed = 20260808;
  options.time_scale = 3600.0;
  options.stale_serve_bound = Hours(2);
  options.workers_min = 1;
  options.workers_max = 2;
  options.queue_depth = 32;
  options.deadline_ns = 40'000'000;        // 40 ms
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ns = 4'000'000;
  options.retry.max_backoff_ns = 10'000'000;
  options.service_time_ns = 2'000'000;     // ~500 rps per worker
  options.fail_timeout_ns = 2'000'000;
  options.breaker_failure_threshold = 3;
  options.breaker_cooldown_ns = 60'000'000;
  return options;
}

// Invariants that must hold for any schedule, any machine load.
void CheckInvariants(const ServeMetricsSnapshot& snap) {
  EXPECT_EQ(snap.offered, snap.shed_queue_full + snap.OutcomeTotal());
  EXPECT_EQ(snap.admitted, snap.OutcomeTotal());  // post-Stop: fully drained
  EXPECT_LE(snap.queue_depth_peak, snap.queue_capacity);
  EXPECT_EQ(snap.attempts_past_deadline, 0u);
  if (snap.staleness_bound_seconds > 0) {
    EXPECT_LE(snap.max_served_staleness_seconds, snap.staleness_bound_seconds);
  }
  // The cache saw exactly the admitted requests, plus retries.
  EXPECT_GE(snap.cache.requests, snap.admitted - snap.deadline_dropped);
}

TEST(ServeFrontendTest, QuietLoadServesEverythingWithinCapacity) {
  ServeFrontendOptions options = BaseOptions();
  ServeFrontend frontend(options, RealWallClock());
  frontend.Start();
  frontend.RunOfferedLoad(/*requests_per_second=*/200.0,
                          /*duration_ns=*/400'000'000,
                          /*snapshot_interval_ns=*/0, nullptr);
  frontend.Stop();
  const ServeMetricsSnapshot snap = frontend.Snapshot();
  CheckInvariants(snap);
  EXPECT_GT(snap.offered, 0u);
  EXPECT_GT(snap.served_ok, 0u);
  // 200 rps against ~1000 rps capacity: no outage, no breaker action.
  EXPECT_EQ(snap.served_degraded, 0u);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.breaker_opened, 0u);
  EXPECT_EQ(snap.breaker_state, "closed");
  EXPECT_GE(snap.workers_peak, options.workers_min);
  EXPECT_LE(snap.workers_peak, options.workers_max);
}

TEST(ServeFrontendTest, SubmitAfterStartHonorsAdmissionAccounting) {
  ServeFrontendOptions options = BaseOptions();
  ServeFrontend frontend(options, RealWallClock());
  frontend.Start();
  for (int i = 0; i < 100; ++i) {
    (void)frontend.SubmitRequest(static_cast<ObjectId>(i % options.world.num_files));
  }
  frontend.Stop();
  const ServeMetricsSnapshot snap = frontend.Snapshot();
  CheckInvariants(snap);
  EXPECT_EQ(snap.offered, 100u);
}

TEST(ServeFrontendTest, SnapshotMidRunIsCoherent) {
  ServeFrontendOptions options = BaseOptions();
  ServeFrontend frontend(options, RealWallClock());
  frontend.Start();
  int snapshots_seen = 0;
  frontend.RunOfferedLoad(/*requests_per_second=*/300.0,
                          /*duration_ns=*/400'000'000,
                          /*snapshot_interval_ns=*/100'000'000,
                          [&snapshots_seen](const ServeMetricsSnapshot& snap) {
                            ++snapshots_seen;
                            // Mid-run: in-flight requests keep admitted ahead
                            // of resolved outcomes, never behind.
                            EXPECT_GE(snap.admitted, snap.OutcomeTotal());
                            EXPECT_LE(snap.queue_depth_peak, snap.queue_capacity);
                            EXPECT_FALSE(snap.StatusLine().empty());
                            EXPECT_FALSE(snap.ToJson().empty());
                          });
  frontend.Stop();
  EXPECT_GE(snapshots_seen, 2);
  CheckInvariants(frontend.Snapshot());
}

// The ISSUE's overload acceptance scenario: 2x capacity with an injected
// origin outage. Asserts only schedule-independent facts from the final
// metrics snapshot — every timing-sensitive quantity gets a generous slack
// so the test holds under sanitizers and loaded CI machines.
TEST(ServeFrontendTest, OverloadShedsMeetsDeadlinesAndRecoversFromOutage) {
  ServeFrontendOptions options = BaseOptions();
  options.outage_start_ns = 400'000'000;    // 400 ms in...
  options.outage_duration_ns = 250'000'000; // ...down for 250 ms
  ServeFrontend frontend(options, RealWallClock());
  frontend.Start();
  // ~2x capacity: 2 workers x 2 ms service time serve ~1000 rps.
  frontend.RunOfferedLoad(/*requests_per_second=*/2000.0,
                          /*duration_ns=*/1'200'000'000,
                          /*snapshot_interval_ns=*/0, nullptr);
  frontend.Stop();
  const ServeMetricsSnapshot snap = frontend.Snapshot();
  CheckInvariants(snap);

  // 1. Overload sheds: the frontend rejected load and the queue never grew
  //    past its cap (CheckInvariants asserts the cap; here: shedding real).
  EXPECT_GT(snap.shed_queue_full, 0u);
  EXPECT_EQ(snap.queue_depth_peak, snap.queue_capacity);

  // 2. Deadline discipline: no origin attempt ever began past a deadline
  //    (CheckInvariants asserts the zero), and no final outcome landed more
  //    than one retry step past its deadline. One step = the worst backoff
  //    plus the in-flight attempt; the extra second absorbs scheduler noise
  //    under sanitizers.
  const int64_t one_retry_step_ns = options.retry.max_backoff_ns + options.fail_timeout_ns +
                                    options.service_time_ns + 1'000'000'000;
  EXPECT_LE(snap.max_deadline_overrun_ns, one_retry_step_ns);

  // 3. The outage drove degraded serving, all within the staleness bound
  //    (CheckInvariants asserts the bound).
  EXPECT_GT(snap.served_degraded, 0u);
  EXPECT_GT(snap.cache.degraded_serves, 0u);

  // 4. The breaker completed a full cycle: opened during the outage, probed
  //    half-open, and recovered once the origin healed.
  EXPECT_GE(snap.breaker_opened, 1u);
  EXPECT_GE(snap.breaker_half_open_probes, 1u);
  EXPECT_GE(snap.breaker_closed_from_half_open, 1u);
  EXPECT_GT(snap.breaker_short_circuited, 0u);
  EXPECT_EQ(snap.breaker_state, "closed");
}

TEST(ServeFrontendTest, StopIsIdempotentAndDestructorIsClean) {
  ServeFrontendOptions options = BaseOptions();
  ServeFrontend frontend(options, RealWallClock());
  frontend.Start();
  (void)frontend.SubmitRequest(0);
  frontend.Stop();
  frontend.Stop();  // second call is a no-op
  const ServeMetricsSnapshot snap = frontend.Snapshot();
  EXPECT_EQ(snap.offered, 1u);
}

}  // namespace
}  // namespace webcc
