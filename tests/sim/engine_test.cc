#include "src/sim/engine.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(SimEngineTest, StartsAtEpoch) {
  SimEngine engine;
  EXPECT_EQ(engine.Now(), SimTime::Epoch());
  EXPECT_EQ(engine.events_executed(), 0u);
}

TEST(SimEngineTest, RunExecutesAllAndAdvancesClock) {
  SimEngine engine;
  std::vector<int64_t> seen;
  engine.ScheduleAt(SimTime(10), [&] { seen.push_back(engine.Now().seconds()); });
  engine.ScheduleAt(SimTime(5), [&] { seen.push_back(engine.Now().seconds()); });
  EXPECT_EQ(engine.Run(), 2u);
  EXPECT_EQ(seen, (std::vector<int64_t>{5, 10}));
  EXPECT_EQ(engine.Now(), SimTime(10));
}

TEST(SimEngineTest, ScheduleAfterIsRelative) {
  SimEngine engine;
  SimTime fired_at;
  engine.ScheduleAt(SimTime(100), [&] {
    engine.ScheduleAfter(Seconds(50), [&] { fired_at = engine.Now(); });
  });
  engine.Run();
  EXPECT_EQ(fired_at, SimTime(150));
}

TEST(SimEngineTest, EventsCanScheduleMoreEvents) {
  SimEngine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    ++depth;
    if (depth < 10) {
      engine.ScheduleAfter(Seconds(1), chain);
    }
  };
  engine.ScheduleAfter(Seconds(1), chain);
  engine.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(engine.Now(), SimTime(10));
}

TEST(SimEngineTest, RunUntilStopsAtDeadline) {
  SimEngine engine;
  int fired = 0;
  for (int t = 1; t <= 10; ++t) {
    engine.ScheduleAt(SimTime(t * 10), [&] { ++fired; });
  }
  EXPECT_EQ(engine.RunUntil(SimTime(50)), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.Now(), SimTime(50));
  EXPECT_EQ(engine.pending_events(), 5u);
}

TEST(SimEngineTest, RunUntilAdvancesClockEvenWhenIdle) {
  SimEngine engine;
  engine.RunUntil(SimTime(1234));
  EXPECT_EQ(engine.Now(), SimTime(1234));
}

TEST(SimEngineTest, RunUntilInclusiveOfDeadline) {
  SimEngine engine;
  bool fired = false;
  engine.ScheduleAt(SimTime(50), [&] { fired = true; });
  engine.RunUntil(SimTime(50));
  EXPECT_TRUE(fired);
}

TEST(SimEngineTest, PastSchedulingClampsAndCounts) {
  SimEngine engine;
  engine.ScheduleAt(SimTime(100), [] {});
  engine.Run();
  ASSERT_EQ(engine.Now(), SimTime(100));
  bool fired = false;
  engine.ScheduleAt(SimTime(10), [&] { fired = true; });  // in the past
  EXPECT_EQ(engine.clamped_events(), 1u);
  engine.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.Now(), SimTime(100));  // clamped, not rewound
}

TEST(SimEngineTest, NegativeDelayClampsToNow) {
  SimEngine engine;
  bool fired = false;
  engine.ScheduleAfter(Seconds(-5), [&] { fired = true; });
  engine.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.Now(), SimTime::Epoch());
}

TEST(SimEngineTest, StepExecutesExactlyOne) {
  SimEngine engine;
  int fired = 0;
  engine.ScheduleAt(SimTime(1), [&] { ++fired; });
  engine.ScheduleAt(SimTime(2), [&] { ++fired; });
  EXPECT_TRUE(engine.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.Step());
  EXPECT_FALSE(engine.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineTest, CancelledEventsNotExecuted) {
  SimEngine engine;
  int fired = 0;
  EventHandle h = engine.ScheduleAt(SimTime(5), [&] { ++fired; });
  engine.ScheduleAt(SimTime(6), [&] { ++fired; });
  std::ignore = h.Cancel();
  engine.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.events_executed(), 1u);
}

TEST(SimEngineTest, StatisticsTrackActivity) {
  SimEngine engine;
  for (int i = 0; i < 5; ++i) {
    engine.ScheduleAt(SimTime(i), [] {});
  }
  engine.Run();
  EXPECT_EQ(engine.events_scheduled(), 5u);
  EXPECT_EQ(engine.events_executed(), 5u);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(SimEngineTest, DeterministicInterleaving) {
  auto run = [] {
    SimEngine engine;
    std::vector<int> order;
    engine.ScheduleAt(SimTime(3), [&] { order.push_back(1); });
    engine.ScheduleAt(SimTime(3), [&] { order.push_back(2); });
    engine.ScheduleAt(SimTime(1), [&] {
      order.push_back(3);
      engine.ScheduleAt(SimTime(3), [&] { order.push_back(4); });
    });
    engine.Run();
    return order;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::vector<int>{3, 1, 2, 4}));
}

}  // namespace
}  // namespace webcc
