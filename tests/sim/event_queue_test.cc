#include "src/sim/event_queue.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.PopNext().has_value());
  EXPECT_FALSE(q.PeekTime().has_value());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(SimTime(30), [&] { fired.push_back(3); });
  q.Schedule(SimTime(10), [&] { fired.push_back(1); });
  q.Schedule(SimTime(20), [&] { fired.push_back(2); });
  while (auto e = q.PopNext()) {
    e->fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinSameInstant) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(SimTime(5), [&fired, i] { fired.push_back(i); });
  }
  while (auto e = q.PopNext()) {
    e->fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[i], i);
  }
}

TEST(EventQueueTest, PopReportsScheduledTime) {
  EventQueue q;
  q.Schedule(SimTime(77), [] {});
  const auto e = q.PopNext();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->time, SimTime(77));
}

TEST(EventQueueTest, PeekDoesNotPop) {
  EventQueue q;
  q.Schedule(SimTime(5), [] {});
  EXPECT_EQ(q.PeekTime(), SimTime(5));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.PopNext().has_value());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.Schedule(SimTime(1), [&] { fired = true; });
  EXPECT_TRUE(h.IsPending());
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.IsPending());
  EXPECT_FALSE(q.PopNext().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime(1), [] {});
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, CancelUpdatesPendingImmediately) {
  EventQueue q;
  EventHandle h1 = q.Schedule(SimTime(1), [] {});
  EventHandle h2 = q.Schedule(SimTime(2), [] {});
  EXPECT_EQ(q.pending(), 2u);
  std::ignore = h1.Cancel();
  EXPECT_EQ(q.pending(), 1u);
  (void)h2;
}

TEST(EventQueueTest, CancelledMiddleEventSkipped) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(SimTime(1), [&] { fired.push_back(1); });
  EventHandle h = q.Schedule(SimTime(2), [&] { fired.push_back(2); });
  q.Schedule(SimTime(3), [&] { fired.push_back(3); });
  std::ignore = h.Cancel();
  while (auto e = q.PopNext()) {
    e->fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, PeekSkipsCancelledHead) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime(1), [] {});
  q.Schedule(SimTime(9), [] {});
  std::ignore = h.Cancel();
  EXPECT_EQ(q.PeekTime(), SimTime(9));
}

TEST(EventQueueTest, HandleOfFiredEventNotPending) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime(1), [] {});
  std::ignore = q.PopNext();
  EXPECT_FALSE(h.IsPending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, DefaultHandleInert) {
  EventHandle h;
  EXPECT_FALSE(h.IsPending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, CancelSafeAfterQueueDestroyed) {
  EventHandle h;
  {
    EventQueue q;
    h = q.Schedule(SimTime(1), [] {});
  }
  EXPECT_TRUE(h.Cancel());  // must not crash
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<int64_t> fired;
  // Insert with a deterministic pseudo-shuffled order.
  for (int i = 0; i < 5000; ++i) {
    const int64_t t = (i * 2654435761LL) % 100000;
    q.Schedule(SimTime(t), [&fired, t] { fired.push_back(t); });
  }
  while (auto e = q.PopNext()) {
    e->fn();
  }
  ASSERT_EQ(fired.size(), 5000u);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

TEST(EventQueueTest, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) {
    q.Schedule(SimTime(i), [] {});
  }
  EXPECT_EQ(q.total_scheduled(), 7u);
}

}  // namespace
}  // namespace webcc
