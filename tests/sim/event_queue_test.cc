#include "src/sim/event_queue.h"

#include <array>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(EventQueueTest, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.PopNext().has_value());
  EXPECT_FALSE(q.PeekTime().has_value());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(SimTime(30), [&] { fired.push_back(3); });
  q.Schedule(SimTime(10), [&] { fired.push_back(1); });
  q.Schedule(SimTime(20), [&] { fired.push_back(2); });
  while (auto e = q.PopNext()) {
    e->fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinSameInstant) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(SimTime(5), [&fired, i] { fired.push_back(i); });
  }
  while (auto e = q.PopNext()) {
    e->fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[i], i);
  }
}

TEST(EventQueueTest, PopReportsScheduledTime) {
  EventQueue q;
  q.Schedule(SimTime(77), [] {});
  const auto e = q.PopNext();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->time, SimTime(77));
}

TEST(EventQueueTest, PeekDoesNotPop) {
  EventQueue q;
  q.Schedule(SimTime(5), [] {});
  EXPECT_EQ(q.PeekTime(), SimTime(5));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.PopNext().has_value());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.Schedule(SimTime(1), [&] { fired = true; });
  EXPECT_TRUE(h.IsPending());
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.IsPending());
  EXPECT_FALSE(q.PopNext().has_value());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime(1), [] {});
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, CancelUpdatesPendingImmediately) {
  EventQueue q;
  EventHandle h1 = q.Schedule(SimTime(1), [] {});
  EventHandle h2 = q.Schedule(SimTime(2), [] {});
  EXPECT_EQ(q.pending(), 2u);
  std::ignore = h1.Cancel();
  EXPECT_EQ(q.pending(), 1u);
  (void)h2;
}

TEST(EventQueueTest, CancelledMiddleEventSkipped) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(SimTime(1), [&] { fired.push_back(1); });
  EventHandle h = q.Schedule(SimTime(2), [&] { fired.push_back(2); });
  q.Schedule(SimTime(3), [&] { fired.push_back(3); });
  std::ignore = h.Cancel();
  while (auto e = q.PopNext()) {
    e->fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, PeekSkipsCancelledHead) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime(1), [] {});
  q.Schedule(SimTime(9), [] {});
  std::ignore = h.Cancel();
  EXPECT_EQ(q.PeekTime(), SimTime(9));
}

TEST(EventQueueTest, HandleOfFiredEventNotPending) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime(1), [] {});
  std::ignore = q.PopNext();
  EXPECT_FALSE(h.IsPending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, DefaultHandleInert) {
  EventHandle h;
  EXPECT_FALSE(h.IsPending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, CancelSafeAfterQueueDestroyed) {
  EventHandle h;
  {
    EventQueue q;
    h = q.Schedule(SimTime(1), [] {});
  }
  EXPECT_TRUE(h.Cancel());  // must not crash
}

TEST(EventQueueTest, IsPendingSafeAfterQueueDestroyed) {
  EventHandle h;
  {
    EventQueue q;
    h = q.Schedule(SimTime(1), [] {});
  }
  // The slot arena outlives the queue, so the handle still answers: the event
  // was never fired nor cancelled, so it reads as pending, and a first Cancel
  // succeeds while a second is a no-op.
  EXPECT_TRUE(h.IsPending());
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.IsPending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, StaleHandleCannotCancelRecycledSlot) {
  // ABA regression: fire event A so its arena slot is released, schedule
  // event B which recycles that slot, then use A's (stale) handle. The
  // generation counter must make A's handle inert rather than letting it
  // cancel B.
  EventQueue q;
  bool b_fired = false;
  EventHandle a = q.Schedule(SimTime(1), [] {});
  std::ignore = q.PopNext();  // fires A, releasing its slot
  EventHandle b = q.Schedule(SimTime(2), [&] { b_fired = true; });
  EXPECT_FALSE(a.IsPending());
  EXPECT_FALSE(a.Cancel());
  EXPECT_TRUE(b.IsPending());
  while (auto e = q.PopNext()) {
    e->fn();
  }
  EXPECT_TRUE(b_fired);
}

TEST(EventQueueTest, StaleHandleAfterCancelAndReuse) {
  // Same ABA shape, but the slot is recycled via Cancel + pop-skip instead of
  // a fire.
  EventQueue q;
  EventHandle a = q.Schedule(SimTime(1), [] {});
  std::ignore = a.Cancel();
  EXPECT_FALSE(q.PopNext().has_value());  // physically removes A, frees the slot
  EventHandle b = q.Schedule(SimTime(2), [] {});
  EXPECT_FALSE(a.IsPending());
  EXPECT_FALSE(a.Cancel());
  EXPECT_TRUE(b.IsPending());
  EXPECT_TRUE(b.Cancel());
}

TEST(EventQueueTest, SlotReuseKeepsArenaSmall) {
  // Fire-and-reschedule in a loop: the free list must recycle slots instead
  // of growing the arena without bound. total_scheduled() still counts every
  // Schedule, while pending() tracks the live population.
  EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    q.Schedule(SimTime(i), [] {});
    ASSERT_TRUE(q.PopNext().has_value());
  }
  EXPECT_EQ(q.total_scheduled(), 1000u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, HandlesSurviveManyGenerations) {
  // Handles from distinct generations of the same slot stay independent.
  EventQueue q;
  std::vector<EventHandle> stale;
  for (int i = 0; i < 50; ++i) {
    stale.push_back(q.Schedule(SimTime(i), [] {}));
    ASSERT_TRUE(q.PopNext().has_value());
  }
  EventHandle live = q.Schedule(SimTime(100), [] {});
  for (EventHandle& h : stale) {
    EXPECT_FALSE(h.IsPending());
    EXPECT_FALSE(h.Cancel());
  }
  EXPECT_TRUE(live.IsPending());
}

TEST(EventQueueTest, MoveOnlyCallbackState) {
  // The callback wrapper is move-only aware: a captured unique_ptr must move
  // through Schedule and fire intact.
  EventQueue q;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  q.Schedule(SimTime(1), [p = std::move(payload), &seen] { seen = *p; });
  while (auto e = q.PopNext()) {
    e->fn();
  }
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, LargeCallbackFallsBackToHeap) {
  // Captures bigger than the inline buffer take the heap path of the
  // small-buffer wrapper; behaviour must be identical.
  EventQueue q;
  std::array<int64_t, 16> big{};  // 128 bytes, exceeds the inline budget
  big[0] = 7;
  big[15] = 9;
  int64_t sum = 0;
  q.Schedule(SimTime(1), [big, &sum] { sum = big[0] + big[15]; });
  while (auto e = q.PopNext()) {
    e->fn();
  }
  EXPECT_EQ(sum, 16);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<int64_t> fired;
  // Insert with a deterministic pseudo-shuffled order.
  for (int i = 0; i < 5000; ++i) {
    const int64_t t = (i * 2654435761LL) % 100000;
    q.Schedule(SimTime(t), [&fired, t] { fired.push_back(t); });
  }
  while (auto e = q.PopNext()) {
    e->fn();
  }
  ASSERT_EQ(fired.size(), 5000u);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

TEST(EventQueueTest, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) {
    q.Schedule(SimTime(i), [] {});
  }
  EXPECT_EQ(q.total_scheduled(), 7u);
}

}  // namespace
}  // namespace webcc
