#include "src/sim/fault_plan.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

SimTime At(int64_t hours) { return SimTime::Epoch() + Hours(hours); }

TEST(FaultPlanTest, DowntimeWindowsMergedAndSorted) {
  FaultConfig config;
  config.server_downtime = {
      {At(10), At(12)},
      {At(1), At(3)},
      {At(2), At(5)},    // overlaps [1,3) -> merged into [1,5)
      {At(5), At(6)},    // touches [1,5) -> merged into [1,6)
      {At(20), At(20)},  // empty -> dropped
  };
  FaultPlan plan(config, At(100));
  const auto& windows = plan.server_downtime();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start, At(1));
  EXPECT_EQ(windows[0].end, At(6));
  EXPECT_EQ(windows[1].start, At(10));
  EXPECT_EQ(windows[1].end, At(12));
  EXPECT_EQ(plan.TotalDowntimeSeconds(), Hours(7).seconds());
}

TEST(FaultPlanTest, ServerUpAndNextServerUp) {
  FaultConfig config;
  config.server_downtime = {{At(2), At(4)}};
  FaultPlan plan(config, At(100));
  EXPECT_TRUE(plan.ServerUp(At(1)));
  EXPECT_FALSE(plan.ServerUp(At(2)));   // half-open: down at start
  EXPECT_FALSE(plan.ServerUp(At(3)));
  EXPECT_TRUE(plan.ServerUp(At(4)));    // up again at end
  EXPECT_EQ(plan.NextServerUp(At(1)), At(1));
  EXPECT_EQ(plan.NextServerUp(At(3)), At(4));
}

TEST(FaultPlanTest, ZeroLossRateNeverLosesAndNeverDraws) {
  FaultConfig config;
  config.armed = true;  // armed but loss disabled
  FaultPlan plan(config, At(100));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(plan.LoseMessage());
  }
  EXPECT_EQ(plan.messages_lost(), 0u);
}

TEST(FaultPlanTest, CertainLossAlwaysLoses) {
  FaultConfig config;
  config.loss_rate = 1.0;
  FaultPlan plan(config, At(100));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.LoseMessage());
  }
  EXPECT_EQ(plan.messages_lost(), 100u);
}

TEST(FaultPlanTest, LossSequenceIsSeedDeterministic) {
  FaultConfig config;
  config.loss_rate = 0.5;
  config.seed = 1234;
  FaultPlan a(config, At(100));
  FaultPlan b(config, At(100));
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.LoseMessage(), b.LoseMessage()) << "draw " << i;
  }
}

TEST(FaultPlanTest, GeneratedWindowsDeterministicAndBounded) {
  FaultConfig config;
  config.server_mtbf = Days(1);
  config.server_mttr = Hours(2);
  const SimTime horizon = At(24 * 30);
  FaultPlan a(config, horizon);
  FaultPlan b(config, horizon);
  ASSERT_FALSE(a.server_downtime().empty());
  ASSERT_EQ(a.server_downtime().size(), b.server_downtime().size());
  SimTime last_end = SimTime::Epoch();
  for (size_t i = 0; i < a.server_downtime().size(); ++i) {
    const DowntimeWindow& w = a.server_downtime()[i];
    EXPECT_EQ(w.start, b.server_downtime()[i].start);
    EXPECT_EQ(w.end, b.server_downtime()[i].end);
    EXPECT_GE(w.start, last_end);     // sorted, non-overlapping
    EXPECT_LT(w.start, w.end);        // non-empty
    EXPECT_LE(w.end, horizon);        // bounded by the horizon
    last_end = w.end;
  }
}

TEST(FaultPlanTest, BackoffIsCappedExponential) {
  RetryPolicy retry;
  retry.initial_backoff = Seconds(2);
  retry.backoff_multiplier = 2.0;
  retry.max_backoff = Minutes(2);
  EXPECT_EQ(retry.BackoffAfter(1), Seconds(2));
  EXPECT_EQ(retry.BackoffAfter(2), Seconds(4));
  EXPECT_EQ(retry.BackoffAfter(3), Seconds(8));
  EXPECT_EQ(retry.BackoffAfter(6), Seconds(64));
  EXPECT_EQ(retry.BackoffAfter(7), Minutes(2));   // 128s clipped to the cap
  EXPECT_EQ(retry.BackoffAfter(40), Minutes(2));  // no overflow past the cap
}

TEST(FaultPlanTest, ExchangeSucceedsFirstTryOnCleanLink) {
  FaultConfig config;
  config.armed = true;
  FaultPlan plan(config, At(100));
  int fetches = 0;
  const ExchangeOutcome out =
      RunFaultedExchange(plan, At(1), [&](SimTime) { ++fetches; });
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.elapsed, SimDuration(0));
  EXPECT_EQ(fetches, 1);
}

TEST(FaultPlanTest, ExchangeExhaustsRetryBudgetOnDeadLink) {
  FaultConfig config;
  config.loss_rate = 1.0;
  config.retry.max_attempts = 4;
  config.retry.timeout = Seconds(4);
  config.retry.initial_backoff = Seconds(2);
  FaultPlan plan(config, At(1));
  int fetches = 0;
  const ExchangeOutcome out =
      RunFaultedExchange(plan, At(1), [&](SimTime) { ++fetches; });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 4);
  EXPECT_EQ(fetches, 0);  // no request ever reached the server
  // 4 timeouts plus backoff after the first three failures: 2 + 4 + 8.
  EXPECT_EQ(out.elapsed, Seconds(4 * 4 + 2 + 4 + 8));
}

TEST(FaultPlanTest, ExchangeFailsWithoutFetchDuringDowntime) {
  FaultConfig config;
  config.server_downtime = {{At(0), At(24)}};
  FaultPlan plan(config, At(100));
  int fetches = 0;
  const ExchangeOutcome out =
      RunFaultedExchange(plan, At(1), [&](SimTime) { ++fetches; });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(fetches, 0);
  EXPECT_EQ(plan.messages_lost(), 0u);  // downtime is not message loss
}

TEST(FaultPlanTest, EnabledReflectsKnobs) {
  FaultConfig config;
  EXPECT_FALSE(config.Enabled());
  config.armed = true;
  EXPECT_TRUE(config.Enabled());
  config.armed = false;
  config.loss_rate = 0.01;
  EXPECT_TRUE(config.Enabled());
  config.loss_rate = 0.0;
  config.cache_crashes.push_back({At(5), Minutes(10)});
  EXPECT_TRUE(config.Enabled());
}

}  // namespace
}  // namespace webcc
