#include "src/sim/fault_plan.h"

#include <optional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace webcc {
namespace {

SimTime At(int64_t hours) { return SimTime::Epoch() + Hours(hours); }

TEST(FaultPlanTest, DowntimeWindowsMergedAndSorted) {
  FaultConfig config;
  config.server_downtime = {
      {At(10), At(12)},
      {At(1), At(3)},
      {At(2), At(5)},    // overlaps [1,3) -> merged into [1,5)
      {At(5), At(6)},    // touches [1,5) -> merged into [1,6)
      {At(20), At(20)},  // empty -> dropped
  };
  FaultPlan plan(config, At(100));
  const auto& windows = plan.server_downtime();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start, At(1));
  EXPECT_EQ(windows[0].end, At(6));
  EXPECT_EQ(windows[1].start, At(10));
  EXPECT_EQ(windows[1].end, At(12));
  EXPECT_EQ(plan.TotalDowntimeSeconds(), Hours(7).seconds());
}

TEST(FaultPlanTest, ServerUpAndNextServerUp) {
  FaultConfig config;
  config.server_downtime = {{At(2), At(4)}};
  FaultPlan plan(config, At(100));
  EXPECT_TRUE(plan.ServerUp(At(1)));
  EXPECT_FALSE(plan.ServerUp(At(2)));   // half-open: down at start
  EXPECT_FALSE(plan.ServerUp(At(3)));
  EXPECT_TRUE(plan.ServerUp(At(4)));    // up again at end
  EXPECT_EQ(plan.NextServerUp(At(1)), At(1));
  EXPECT_EQ(plan.NextServerUp(At(3)), At(4));
}

TEST(FaultPlanTest, ZeroLossRateNeverLosesAndNeverDraws) {
  FaultConfig config;
  config.armed = true;  // armed but loss disabled
  FaultPlan plan(config, At(100));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(plan.LoseMessage());
  }
  EXPECT_EQ(plan.messages_lost(), 0u);
}

TEST(FaultPlanTest, CertainLossAlwaysLoses) {
  FaultConfig config;
  config.loss_rate = 1.0;
  FaultPlan plan(config, At(100));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.LoseMessage());
  }
  EXPECT_EQ(plan.messages_lost(), 100u);
}

TEST(FaultPlanTest, LossSequenceIsSeedDeterministic) {
  FaultConfig config;
  config.loss_rate = 0.5;
  config.seed = 1234;
  FaultPlan a(config, At(100));
  FaultPlan b(config, At(100));
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.LoseMessage(), b.LoseMessage()) << "draw " << i;
  }
}

TEST(FaultPlanTest, GeneratedWindowsDeterministicAndBounded) {
  FaultConfig config;
  config.server_mtbf = Days(1);
  config.server_mttr = Hours(2);
  const SimTime horizon = At(24 * 30);
  FaultPlan a(config, horizon);
  FaultPlan b(config, horizon);
  ASSERT_FALSE(a.server_downtime().empty());
  ASSERT_EQ(a.server_downtime().size(), b.server_downtime().size());
  SimTime last_end = SimTime::Epoch();
  for (size_t i = 0; i < a.server_downtime().size(); ++i) {
    const DowntimeWindow& w = a.server_downtime()[i];
    EXPECT_EQ(w.start, b.server_downtime()[i].start);
    EXPECT_EQ(w.end, b.server_downtime()[i].end);
    EXPECT_GE(w.start, last_end);     // sorted, non-overlapping
    EXPECT_LT(w.start, w.end);        // non-empty
    EXPECT_LE(w.end, horizon);        // bounded by the horizon
    last_end = w.end;
  }
}

TEST(FaultPlanTest, BackoffIsCappedExponential) {
  RetryPolicy retry;
  retry.initial_backoff = Seconds(2);
  retry.backoff_multiplier = 2.0;
  retry.max_backoff = Minutes(2);
  EXPECT_EQ(retry.BackoffAfter(1), Seconds(2));
  EXPECT_EQ(retry.BackoffAfter(2), Seconds(4));
  EXPECT_EQ(retry.BackoffAfter(3), Seconds(8));
  EXPECT_EQ(retry.BackoffAfter(6), Seconds(64));
  EXPECT_EQ(retry.BackoffAfter(7), Minutes(2));   // 128s clipped to the cap
  EXPECT_EQ(retry.BackoffAfter(40), Minutes(2));  // no overflow past the cap
}

TEST(FaultPlanTest, JitterOffBackoffIsExactlyDeterministic) {
  FaultConfig config;
  config.retry.initial_backoff = Seconds(2);
  config.retry.backoff_multiplier = 2.0;
  config.retry.max_backoff = Minutes(2);
  ASSERT_FALSE(config.retry.full_jitter);  // the default keeps goldens stable
  FaultPlan plan(config, At(100));
  for (int failed = 1; failed <= 10; ++failed) {
    EXPECT_EQ(plan.Backoff(failed), config.retry.BackoffAfter(failed)) << failed;
  }
  // And the serialized plan carries no jitter key to re-arm on load.
  EXPECT_EQ(plan.SerializeToString().find("retry-full-jitter"), std::string::npos);
}

TEST(FaultPlanTest, FullJitterDrawsWithinTheDeterministicEnvelope) {
  FaultConfig config;
  config.seed = 4321;
  config.retry.full_jitter = true;
  config.retry.initial_backoff = Seconds(2);
  config.retry.backoff_multiplier = 2.0;
  config.retry.max_backoff = Minutes(2);
  FaultPlan plan(config, At(100));
  bool saw_below_envelope = false;
  for (int round = 0; round < 100; ++round) {
    for (int failed = 1; failed <= 5; ++failed) {
      const SimDuration drawn = plan.Backoff(failed);
      const SimDuration envelope = config.retry.BackoffAfter(failed);
      EXPECT_GE(drawn, SimDuration(0));
      EXPECT_LE(drawn, envelope);
      saw_below_envelope = saw_below_envelope || drawn < envelope;
    }
  }
  EXPECT_TRUE(saw_below_envelope);  // the jitter actually jitters
}

TEST(FaultPlanTest, FullJitterIsSeedReproducible) {
  FaultConfig config;
  config.seed = 777;
  config.retry.full_jitter = true;
  config.retry.initial_backoff = Seconds(2);
  config.retry.max_backoff = Minutes(2);
  FaultPlan a(config, At(100));
  FaultPlan b(config, At(100));
  for (int failed = 1; failed <= 64; ++failed) {
    EXPECT_EQ(a.Backoff(1 + failed % 5), b.Backoff(1 + failed % 5)) << failed;
  }
}

TEST(FaultPlanTest, FullJitterRoundTripsThroughSerialization) {
  FaultConfig config;
  config.armed = true;
  config.seed = 31337;
  config.retry.full_jitter = true;
  config.retry.max_attempts = 5;
  config.retry.initial_backoff = Seconds(2);
  const FaultPlan plan(config, At(100));
  const std::string text = plan.SerializeToString();
  EXPECT_NE(text.find("retry-full-jitter 1"), std::string::npos) << text;

  std::istringstream in(text);
  FaultPlanParseError error;
  const std::optional<FaultConfig> parsed = FaultPlan::Parse(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error.line << ": " << error.message;
  EXPECT_TRUE(parsed->retry.full_jitter);
  // Fixed point, and the reloaded plan replays the identical jitter stream.
  FaultPlan reloaded(*parsed, At(100));
  EXPECT_EQ(reloaded.SerializeToString(), text);
  FaultPlan original(config, At(100));
  for (int failed = 1; failed <= 32; ++failed) {
    EXPECT_EQ(reloaded.Backoff(1 + failed % 4), original.Backoff(1 + failed % 4));
  }
}

TEST(FaultPlanTest, MalformedJitterKeyRejected) {
  std::istringstream in("#webcc-fault-plan v1\nretry-full-jitter 2\n");
  FaultPlanParseError error;
  EXPECT_FALSE(FaultPlan::Parse(in, &error).has_value());
  EXPECT_EQ(error.line, 2u);
}

TEST(FaultPlanTest, ExchangeSucceedsFirstTryOnCleanLink) {
  FaultConfig config;
  config.armed = true;
  FaultPlan plan(config, At(100));
  int fetches = 0;
  const ExchangeOutcome out =
      RunFaultedExchange(plan, At(1), [&](SimTime) { ++fetches; });
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.elapsed, SimDuration(0));
  EXPECT_EQ(fetches, 1);
}

TEST(FaultPlanTest, ExchangeExhaustsRetryBudgetOnDeadLink) {
  FaultConfig config;
  config.loss_rate = 1.0;
  config.retry.max_attempts = 4;
  config.retry.timeout = Seconds(4);
  config.retry.initial_backoff = Seconds(2);
  FaultPlan plan(config, At(1));
  int fetches = 0;
  const ExchangeOutcome out =
      RunFaultedExchange(plan, At(1), [&](SimTime) { ++fetches; });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 4);
  EXPECT_EQ(fetches, 0);  // no request ever reached the server
  // 4 timeouts plus backoff after the first three failures: 2 + 4 + 8.
  EXPECT_EQ(out.elapsed, Seconds(4 * 4 + 2 + 4 + 8));
}

TEST(FaultPlanTest, ExchangeFailsWithoutFetchDuringDowntime) {
  FaultConfig config;
  config.server_downtime = {{At(0), At(24)}};
  FaultPlan plan(config, At(100));
  int fetches = 0;
  const ExchangeOutcome out =
      RunFaultedExchange(plan, At(1), [&](SimTime) { ++fetches; });
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(fetches, 0);
  EXPECT_EQ(plan.messages_lost(), 0u);  // downtime is not message loss
}

TEST(FaultPlanTest, EnabledReflectsKnobs) {
  FaultConfig config;
  EXPECT_FALSE(config.Enabled());
  config.armed = true;
  EXPECT_TRUE(config.Enabled());
  config.armed = false;
  config.loss_rate = 0.01;
  EXPECT_TRUE(config.Enabled());
  config.loss_rate = 0.0;
  config.cache_crashes.push_back({At(5), Minutes(10)});
  EXPECT_TRUE(config.Enabled());
}

TEST(FaultPlanTest, SerializeParseRoundTripsExactly) {
  FaultConfig config;
  config.armed = true;
  config.seed = 0xDEADBEEF;
  config.loss_rate = 0.0625;
  config.jitter_max = Minutes(5);
  config.retry.max_attempts = 6;
  config.retry.timeout = Seconds(3);
  config.retry.initial_backoff = Seconds(2);
  config.invalidation_retry_interval = Minutes(7);
  config.crash_recovery = CrashRecovery::kRevalidateAll;
  config.snapshot_crash_request = 123;
  config.server_downtime = {{At(3), At(5)}, {At(10), At(11)}};
  config.cache_crashes = {{At(7), Minutes(20)}};
  const FaultPlan plan(config, At(100));

  std::istringstream in(plan.SerializeToString());
  FaultPlanParseError error;
  const std::optional<FaultConfig> parsed = FaultPlan::Parse(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error.line << ": " << error.message;
  // Reconstructing a plan from the parsed config reproduces the same text —
  // the fixed point that makes repro files stable across save/load cycles.
  const FaultPlan reloaded(*parsed, At(100));
  EXPECT_EQ(reloaded.SerializeToString(), plan.SerializeToString());
  EXPECT_EQ(parsed->seed, config.seed);
  EXPECT_EQ(parsed->loss_rate, config.loss_rate);
  EXPECT_EQ(parsed->snapshot_crash_request, 123);
  EXPECT_EQ(parsed->crash_recovery, CrashRecovery::kRevalidateAll);
  ASSERT_EQ(parsed->cache_crashes.size(), 1u);
  EXPECT_EQ(parsed->cache_crashes[0].outage, Minutes(20));
}

TEST(FaultPlanTest, GeneratedDowntimeSerializesMaterialized) {
  FaultConfig config;
  config.seed = 99;
  config.server_mtbf = Hours(6);
  config.server_mttr = Minutes(15);
  const FaultPlan plan(config, At(200));
  ASSERT_FALSE(plan.server_downtime().empty());

  std::istringstream in(plan.SerializeToString());
  const std::optional<FaultConfig> parsed = FaultPlan::Parse(in, nullptr);
  ASSERT_TRUE(parsed.has_value());
  // The exponential process is folded into explicit windows; no mtbf/mttr
  // keys survive to be re-rolled against a different horizon.
  EXPECT_EQ(parsed->server_mtbf, SimDuration(0));
  EXPECT_EQ(parsed->server_mttr, SimDuration(0));
  const FaultPlan reloaded(*parsed, At(50));  // deliberately different horizon
  ASSERT_EQ(reloaded.server_downtime().size(), plan.server_downtime().size());
  for (size_t i = 0; i < plan.server_downtime().size(); ++i) {
    EXPECT_EQ(reloaded.server_downtime()[i].start, plan.server_downtime()[i].start) << i;
    EXPECT_EQ(reloaded.server_downtime()[i].end, plan.server_downtime()[i].end) << i;
  }
}

TEST(FaultPlanTest, EnabledIncludesLinkOverrides) {
  FaultConfig config;
  EXPECT_FALSE(config.Enabled());
  LinkFaultOverride over;
  over.link = 1;
  config.link_overrides.push_back(over);
  // Even an all-unset override must arm the topology simulators' faulted
  // paths — the override list is what ForLink folds in.
  EXPECT_TRUE(config.Enabled());
}

TEST(FaultPlanTest, ForLinkForksIndependentDeterministicSeeds) {
  FaultConfig base;
  base.loss_rate = 0.5;
  base.seed = 42;
  const FaultConfig link0 = base.ForLink(0);
  const FaultConfig link1 = base.ForLink(1);
  EXPECT_EQ(link0.seed, base.ForLink(0).seed);  // pure
  EXPECT_NE(link0.seed, link1.seed);            // independent substreams
  EXPECT_NE(link0.seed, base.seed);             // never the raw campaign seed

  // Sibling links draw unrelated loss sequences from the one base seed.
  FaultPlan a(link0, At(100));
  FaultPlan b(link1, At(100));
  bool diverged = false;
  for (int i = 0; i < 256 && !diverged; ++i) {
    diverged = a.LoseMessage() != b.LoseMessage();
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlanTest, ForLinkScalarOverridesReplaceAndSchedulesAppend) {
  FaultConfig base;
  base.loss_rate = 0.1;
  base.jitter_max = Seconds(30);
  base.server_downtime = {{At(1), At(2)}};
  base.cache_crashes = {{At(3), Minutes(10)}};
  base.crash_recovery = CrashRecovery::kTrustSnapshot;

  LinkFaultOverride over;
  over.link = 2;
  over.loss_rate = 0.5;
  over.jitter_max = Minutes(2);
  over.downtime = {{At(10), At(11)}};
  over.crashes = {{At(12), Minutes(5)}};
  over.recovery = CrashRecovery::kColdStart;
  over.snapshot_crash_request = 77;
  base.link_overrides.push_back(over);

  const FaultConfig derived = base.ForLink(2);
  EXPECT_EQ(derived.loss_rate, 0.5);
  EXPECT_EQ(derived.jitter_max, Minutes(2));
  ASSERT_EQ(derived.server_downtime.size(), 2u);  // base window + link partition
  EXPECT_EQ(derived.server_downtime[1].start, At(10));
  ASSERT_EQ(derived.cache_crashes.size(), 2u);
  EXPECT_EQ(derived.cache_crashes[1].at, At(12));
  EXPECT_EQ(derived.crash_recovery, CrashRecovery::kColdStart);
  EXPECT_EQ(derived.snapshot_crash_request, 77);
  EXPECT_TRUE(derived.link_overrides.empty());  // derived configs are flat

  // Untargeted links inherit the base knobs untouched (seed aside).
  const FaultConfig other = base.ForLink(1);
  EXPECT_EQ(other.loss_rate, 0.1);
  EXPECT_EQ(other.jitter_max, Seconds(30));
  EXPECT_EQ(other.server_downtime.size(), 1u);
  EXPECT_EQ(other.cache_crashes.size(), 1u);
  EXPECT_EQ(other.crash_recovery, CrashRecovery::kTrustSnapshot);
  EXPECT_EQ(other.snapshot_crash_request, -1);
}

TEST(FaultPlanTest, V2RoundTripsLinkOverridesExactly) {
  FaultConfig config;
  config.armed = true;
  config.seed = 7;
  config.loss_rate = 0.25;
  LinkFaultOverride a;
  a.link = 0;
  a.loss_rate = 0.75;
  a.snapshot_crash_request = 42;
  LinkFaultOverride b;
  b.link = 3;
  b.jitter_max = Minutes(1);
  b.downtime = {{At(4), At(6)}};
  b.crashes = {{At(8), Minutes(15)}};
  b.recovery = CrashRecovery::kRevalidateAll;
  config.link_overrides = {a, b};

  const FaultPlan plan(config, At(100));
  const std::string text = plan.SerializeToString();
  EXPECT_EQ(text.rfind("#webcc-fault-plan v2", 0), 0u) << text;

  std::istringstream in(text);
  FaultPlanParseError error;
  const std::optional<FaultConfig> parsed = FaultPlan::Parse(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error.line << ": " << error.message;
  // Fixed point: reconstructing and re-serializing reproduces the text.
  EXPECT_EQ(FaultPlan(*parsed, At(100)).SerializeToString(), text);
  ASSERT_EQ(parsed->link_overrides.size(), 2u);
  EXPECT_EQ(parsed->link_overrides[0].link, 0u);
  EXPECT_EQ(parsed->link_overrides[0].loss_rate, 0.75);
  ASSERT_TRUE(parsed->link_overrides[0].snapshot_crash_request.has_value());
  EXPECT_EQ(*parsed->link_overrides[0].snapshot_crash_request, 42);
  EXPECT_FALSE(parsed->link_overrides[0].jitter_max.has_value());
  EXPECT_EQ(parsed->link_overrides[1].link, 3u);
  EXPECT_EQ(parsed->link_overrides[1].jitter_max, Minutes(1));
  ASSERT_EQ(parsed->link_overrides[1].downtime.size(), 1u);
  EXPECT_EQ(parsed->link_overrides[1].downtime[0].end, At(6));
  ASSERT_EQ(parsed->link_overrides[1].crashes.size(), 1u);
  EXPECT_EQ(parsed->link_overrides[1].recovery, CrashRecovery::kRevalidateAll);
}

TEST(FaultPlanTest, SerializationStaysV1WithoutOverrides) {
  FaultConfig config;
  config.loss_rate = 0.125;
  config.server_downtime = {{At(1), At(2)}};
  const std::string text = FaultPlan(config, At(100)).SerializeToString();
  EXPECT_EQ(text.rfind("#webcc-fault-plan v1", 0), 0u) << text;
  EXPECT_EQ(text.find("link "), std::string::npos) << text;
  EXPECT_EQ(text.find("server-mtbf"), std::string::npos) << text;
}

TEST(FaultPlanTest, V2KeepsGeneratorKnobsAndRederivesPerLinkWindows) {
  FaultConfig config;
  config.seed = 11;
  config.server_mtbf = Hours(8);
  config.server_mttr = Minutes(30);
  LinkFaultOverride over;
  over.link = 1;
  over.loss_rate = 0.5;
  config.link_overrides.push_back(over);

  const SimTime horizon = At(24 * 14);
  std::istringstream in(FaultPlan(config, horizon).SerializeToString());
  FaultPlanParseError error;
  const std::optional<FaultConfig> parsed = FaultPlan::Parse(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error.line << ": " << error.message;
  // v2 keeps the exponential process: per-link windows cannot be
  // materialized into one shared list, they re-derive from forked seeds.
  EXPECT_EQ(parsed->server_mtbf, Hours(8));
  EXPECT_EQ(parsed->server_mttr, Minutes(30));

  for (uint32_t link = 0; link < 3; ++link) {
    const FaultPlan original(config.ForLink(link), horizon);
    const FaultPlan reloaded(parsed->ForLink(link), horizon);
    ASSERT_EQ(reloaded.server_downtime().size(), original.server_downtime().size()) << link;
    for (size_t i = 0; i < original.server_downtime().size(); ++i) {
      EXPECT_EQ(reloaded.server_downtime()[i].start, original.server_downtime()[i].start);
      EXPECT_EQ(reloaded.server_downtime()[i].end, original.server_downtime()[i].end);
    }
  }
}

TEST(FaultPlanTest, LinkKeysRequireV2Header) {
  const auto expect_reject = [](const std::string& text, size_t expect_line) {
    std::istringstream in(text);
    FaultPlanParseError error;
    EXPECT_FALSE(FaultPlan::Parse(in, &error).has_value()) << text;
    EXPECT_EQ(error.line, expect_line) << error.message;
  };
  // v2-only keys under the v1 header are rejected, line-numbered.
  expect_reject("#webcc-fault-plan v1\nlink 0 loss-rate 0.5\n", 2);
  expect_reject("#webcc-fault-plan v1\nseed 1\nserver-mtbf-seconds 60\n", 3);
  expect_reject("#webcc-fault-plan v1\nserver-mttr-seconds 60\n", 2);
  // Malformed link lines under v2: bad sub-key, bad values, bad index.
  expect_reject("#webcc-fault-plan v2\nlink 0 mystery 1\n", 2);
  expect_reject("#webcc-fault-plan v2\nlink 0 loss-rate 1.5\n", 2);
  expect_reject("#webcc-fault-plan v2\nlink 0 downtime 5 5\n", 2);
  expect_reject("#webcc-fault-plan v2\nlink 0 crash 5 0\n", 2);
  expect_reject("#webcc-fault-plan v2\nlink 9999999 loss-rate 0.5\n", 2);
  expect_reject("#webcc-fault-plan v2\nlink 0 recovery sideways\n", 2);
}

TEST(FaultPlanTest, ParseIsAllOrNothingWithLineNumbers) {
  const auto expect_reject = [](const std::string& text, size_t expect_line) {
    std::istringstream in(text);
    FaultPlanParseError error;
    EXPECT_FALSE(FaultPlan::Parse(in, &error).has_value()) << text;
    EXPECT_EQ(error.line, expect_line) << error.message;
  };
  expect_reject("not a fault plan\n", 1);
  expect_reject("", 0);
  expect_reject("#webcc-fault-plan v1\nmystery 1\n", 2);
  expect_reject("#webcc-fault-plan v1\nloss-rate 1.5\n", 2);
  expect_reject("#webcc-fault-plan v1\nseed 1\ndowntime 5\n", 3);
  expect_reject("#webcc-fault-plan v1\ncrash 10 0\n", 2);
  expect_reject("#webcc-fault-plan v1\nrecovery sideways\n", 2);
}

}  // namespace
}  // namespace webcc
