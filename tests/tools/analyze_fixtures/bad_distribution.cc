// Fixture: std::*_distribution misuse. The distributions' draw algorithms
// are implementation-defined, so the same seed produces different streams
// across libstdc++/libc++ — the std-distribution rule demands the project's
// own Rng helpers instead. Expected findings: lines 11, 17, 18.
#include <random>

namespace fixture {

int Draw(unsigned seed) {
  std::mt19937 gen(seed);  // webcc-lint: allow(banned-random) isolates the distribution finding
  std::uniform_int_distribution<int> pick(0, 9);
  return pick(gen);
}

double Wide(unsigned seed) {
  std::mt19937 gen(seed);  // webcc-lint: allow(banned-random) isolates the distribution finding
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  return gauss(gen) + unit(gen);
}

}  // namespace fixture
