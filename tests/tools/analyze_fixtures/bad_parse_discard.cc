// Fixture: discarded Parse*/Load* results. A statement that *begins* with
// such a call throws away the success flag; returns, conditions, and
// assignments prefix the name and are fine. Expected findings: lines 13, 16.
namespace fixture {

struct Config {
  int value = 0;
};
bool ParseConfig(const char* text, Config* out);
bool LoadSnapshot(const char* path);

void Startup(const char* text, Config* cfg) {
  ParseConfig(text, cfg);
  if (ParseConfig(text, cfg)) {
    cfg->value = 1;
    LoadSnapshot("boot");
  }
  const bool ok = ParseConfig(text, cfg) && LoadSnapshot("boot");
  static_cast<void>(ok);
}

bool Checked(const char* text, Config* cfg) {
  return ParseConfig(text, cfg);
}

}  // namespace fixture
