// Fixture: a clean file. The sibling tests/ directory holds a file full of
// banned calls; AnalyzePaths over the tree root must scan this file and
// never descend into tests/.
namespace fixture {

int CleanAnswer() { return 42; }

}  // namespace fixture
