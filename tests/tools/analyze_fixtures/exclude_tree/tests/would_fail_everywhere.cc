// Fixture: lives under a tests/ directory, so the analyzer must never scan
// it — every line here would otherwise be a finding.
namespace fixture {

int TestOnlyHelper() {
  srand(7);
  return rand();
}

}  // namespace fixture
