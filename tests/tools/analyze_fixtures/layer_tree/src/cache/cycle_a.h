// Synthetic layer-tree fixture: half of an include CYCLE (same-module edges
// are tier-legal, so only the cycle check can catch this).
#ifndef FIXTURE_LAYER_TREE_SRC_CACHE_CYCLE_A_H_
#define FIXTURE_LAYER_TREE_SRC_CACHE_CYCLE_A_H_

#include "src/cache/cycle_b.h"

namespace layer_fixture {
struct CycleA {
  int a = 0;
};
}  // namespace layer_fixture

#endif  // FIXTURE_LAYER_TREE_SRC_CACHE_CYCLE_A_H_
