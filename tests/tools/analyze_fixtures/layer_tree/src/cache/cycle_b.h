// Synthetic layer-tree fixture: the other half of the include cycle.
#ifndef FIXTURE_LAYER_TREE_SRC_CACHE_CYCLE_B_H_
#define FIXTURE_LAYER_TREE_SRC_CACHE_CYCLE_B_H_

#include "src/cache/cycle_a.h"

namespace layer_fixture {
struct CycleB {
  int b = 0;
};
}  // namespace layer_fixture

#endif  // FIXTURE_LAYER_TREE_SRC_CACHE_CYCLE_B_H_
