// Synthetic layer-tree fixture: legal downward edge core -> sim.
#ifndef FIXTURE_LAYER_TREE_SRC_CORE_METRICS_LIKE_H_
#define FIXTURE_LAYER_TREE_SRC_CORE_METRICS_LIKE_H_

#include "src/sim/engine_like.h"

namespace layer_fixture {
struct MetricsLike {
  EngineLike engine;
};
}  // namespace layer_fixture

#endif  // FIXTURE_LAYER_TREE_SRC_CORE_METRICS_LIKE_H_
