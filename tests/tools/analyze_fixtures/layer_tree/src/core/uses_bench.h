// Synthetic layer-tree fixture: src/ reaching into bench/ — forbidden
// regardless of tiers (the simulator cannot depend on its own harnesses).
#ifndef FIXTURE_LAYER_TREE_SRC_CORE_USES_BENCH_H_
#define FIXTURE_LAYER_TREE_SRC_CORE_USES_BENCH_H_

#include "bench/bench_common.h"

namespace layer_fixture {
struct UsesBench {
  int x = 0;
};
}  // namespace layer_fixture

#endif  // FIXTURE_LAYER_TREE_SRC_CORE_USES_BENCH_H_
