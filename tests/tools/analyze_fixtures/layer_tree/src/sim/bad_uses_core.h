// Synthetic layer-tree fixture: the PLANTED VIOLATION. sim sits two tiers
// below core, so this include points up the stack (a skip-layer edge) and
// must be reported as layer-violation at the include line.
#ifndef FIXTURE_LAYER_TREE_SRC_SIM_BAD_USES_CORE_H_
#define FIXTURE_LAYER_TREE_SRC_SIM_BAD_USES_CORE_H_

#include "src/core/metrics_like.h"

namespace layer_fixture {
struct BadSim {
  MetricsLike metrics;
};
}  // namespace layer_fixture

#endif  // FIXTURE_LAYER_TREE_SRC_SIM_BAD_USES_CORE_H_
