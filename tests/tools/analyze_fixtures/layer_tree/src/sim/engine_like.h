// Synthetic layer-tree fixture: legal downward edge sim -> util.
#ifndef FIXTURE_LAYER_TREE_SRC_SIM_ENGINE_LIKE_H_
#define FIXTURE_LAYER_TREE_SRC_SIM_ENGINE_LIKE_H_

#include "src/util/base.h"

namespace layer_fixture {
struct EngineLike {
  Base base;
};
}  // namespace layer_fixture

#endif  // FIXTURE_LAYER_TREE_SRC_SIM_ENGINE_LIKE_H_
