// Synthetic layer-tree fixture: bottom tier, no includes.
#ifndef FIXTURE_LAYER_TREE_SRC_UTIL_BASE_H_
#define FIXTURE_LAYER_TREE_SRC_UTIL_BASE_H_

namespace layer_fixture {
struct Base {
  int id = 0;
};
}  // namespace layer_fixture

#endif  // FIXTURE_LAYER_TREE_SRC_UTIL_BASE_H_
