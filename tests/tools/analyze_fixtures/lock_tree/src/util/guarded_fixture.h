// Fixture: WEBCC_GUARDED_BY lock-discipline positive and negative cases.
// Expected: exactly one lock-discipline finding, in BumpWithoutLock.
#ifndef WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_LOCK_TREE_SRC_UTIL_GUARDED_FIXTURE_H_
#define WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_LOCK_TREE_SRC_UTIL_GUARDED_FIXTURE_H_

#include <mutex>

namespace fixture {

class GuardedCounter {
 public:
  // Constructors are exempt: no other thread can hold a reference yet.
  GuardedCounter() { counter_ = 0; }

  // NEGATIVE: lock_guard construction names the mutex before the access.
  int Read() {
    std::lock_guard<std::mutex> lock(mu_);
    return counter_;
  }

  // NEGATIVE: an explicit mu_.lock() also counts as a lexical acquisition.
  void BumpLockedManually() {
    mu_.lock();
    counter_ += 1;
    mu_.unlock();
  }

  // POSITIVE: touches the guarded member with no acquisition in sight.
  void BumpWithoutLock() { counter_ += 1; }

 private:
  std::mutex mu_;  // guards: counter_
  int counter_ WEBCC_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

#endif  // WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_LOCK_TREE_SRC_UTIL_GUARDED_FIXTURE_H_
