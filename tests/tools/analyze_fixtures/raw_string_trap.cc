// Fixture: banned-looking text embedded in literals. The old line-regex lint
// reset its string state at every end-of-line, so the body of the multi-line
// raw string below was scanned as code and `rand(` / `std::mt19937` /
// `assert(` false-positived. The token lexer carries the literal across
// lines, so webcc-analyze must report ZERO findings for this file.
#include <string>

namespace fixture {

// A help blurb that names the banned calls inside a raw string literal.
const char* kHelp = R"doc(
  On POSIX, rand() and srand() are not reproducible, and std::mt19937 seeded
  from std::random_device drifts across libstdc++ versions.
  Do not write while (true) { retry(); } or assert(ok); either.
  std::chrono::steady_clock is wall time; std::uniform_int_distribution too.
)doc";

// Same trap with a line-spliced ordinary string: the backslash-newline glues
// the two physical lines into one literal, so `std::mt19937` below is text.
const char* kSpliced = "calls rand( and \
std::mt19937 across a splice";

// Tricky delimiter: the terminator must match `)trap"` exactly, so the
// inner `)"` does not end the literal early and expose srand( as code.
const char* kDelimited = R"trap(not closed by )" yet: srand(7))trap";

std::string Use() { return std::string(kHelp) + kSpliced + kDelimited; }

}  // namespace fixture
