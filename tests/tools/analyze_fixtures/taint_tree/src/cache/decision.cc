// Fixture: the sink end of the taint chain. src/cache is a sink directory,
// so CacheDecision must be reported with the full three-function chain:
//   fixture::CacheDecision -> fixture::ProbeLevel -> fixture::ProbeEnvironment
#include "src/util/probe_mid.h"

namespace fixture {

int CacheDecision() { return ProbeLevel(); }

}  // namespace fixture
