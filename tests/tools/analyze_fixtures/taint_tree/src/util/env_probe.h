// Fixture: the bottom of a three-deep determinism-taint chain. The getenv()
// call makes ProbeEnvironment a taint source; nothing in this file is a
// sink (util/ is not a sink directory).
#ifndef WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_TAINT_TREE_SRC_UTIL_ENV_PROBE_H_
#define WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_TAINT_TREE_SRC_UTIL_ENV_PROBE_H_

namespace fixture {

inline const char* ProbeEnvironment() { return getenv("FIXTURE_PROBE"); }

}  // namespace fixture

#endif  // WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_TAINT_TREE_SRC_UTIL_ENV_PROBE_H_
