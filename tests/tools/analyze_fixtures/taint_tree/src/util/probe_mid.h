// Fixture: the middle hop of the taint chain — no primitive of its own,
// tainted only transitively through ProbeEnvironment.
#ifndef WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_TAINT_TREE_SRC_UTIL_PROBE_MID_H_
#define WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_TAINT_TREE_SRC_UTIL_PROBE_MID_H_

#include "src/util/env_probe.h"

namespace fixture {

inline int ProbeLevel() { return ProbeEnvironment() == nullptr ? 0 : 1; }

}  // namespace fixture

#endif  // WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_TAINT_TREE_SRC_UTIL_PROBE_MID_H_
