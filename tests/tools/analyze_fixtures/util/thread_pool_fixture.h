// Fixture: mutex members in util/thread_pool scope. Every mutex member must
// carry a lock-coverage comment ("guards: ..." or GUARDED_BY) on its own or
// the preceding line. Expected finding: line 12 only.
#ifndef WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_UTIL_THREAD_POOL_FIXTURE_H_
#define WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_UTIL_THREAD_POOL_FIXTURE_H_

#include <mutex>

namespace fixture {

class PoolLike {
  std::mutex naked_mu_;

  std::mutex trailing_mu_;  // guards: queue_depth_

  // guards: drain_count_ (annotation on the preceding line also counts)
  std::mutex preceding_mu_;

  int queue_depth_ = 0;
  int drain_count_ = 0;
};

}  // namespace fixture

#endif  // WEBCC_TESTS_TOOLS_ANALYZE_FIXTURES_UTIL_THREAD_POOL_FIXTURE_H_
