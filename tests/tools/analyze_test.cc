// Tests for webcc-analyze (tools/analyze/): lexer, token rules, layer DAG
// enforcement, baseline mechanism, SARIF output, and the include-graph
// cache. The on-disk fixtures live in WEBCC_ANALYZE_FIXTURE_DIR; the real
// layer spec comes from WEBCC_ANALYZE_LAYERS_FILE so the synthetic layer
// tree is checked against the DAG the tree itself is held to.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyze/analyze.h"
#include "tools/analyze/baseline.h"
#include "tools/analyze/layers.h"
#include "tools/analyze/lexer.h"
#include "tools/analyze/rules.h"
#include "tools/analyze/sarif.h"

namespace webcc::analyze {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(WEBCC_ANALYZE_FIXTURE_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> RulesOnly(const std::string& path, const std::string& contents) {
  return AnalyzeSources({SourceFile{path, contents}}, AnalyzeConfig{});
}

std::vector<Finding> OfRule(const std::vector<Finding>& findings, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      out.push_back(f);
    }
  }
  return out;
}

std::vector<size_t> LinesOf(const std::vector<Finding>& findings) {
  std::vector<size_t> lines;
  for (const Finding& f : findings) {
    lines.push_back(f.line);
  }
  return lines;
}

// --- Lexer ------------------------------------------------------------------

TEST(AnalyzeLexerTest, TokenizesIdentifiersNumbersAndPunctuation) {
  const LexedFile lexed = Lex({"a.cc", "int x = a->b + 0x1F;"});
  std::vector<std::string> texts;
  for (const Token& t : lexed.tokens) {
    texts.push_back(t.text);
  }
  EXPECT_EQ(texts,
            (std::vector<std::string>{"int", "x", "=", "a", "->", "b", "+", "0x1F", ";"}));
  EXPECT_EQ(lexed.tokens[4].kind, TokenKind::kPunct);
  EXPECT_EQ(lexed.tokens[7].kind, TokenKind::kNumber);
}

TEST(AnalyzeLexerTest, RawStringWithCustomDelimiterIsOneLiteral) {
  const std::string src =
      "const char* s = R\"trap(line one rand(\n"
      "inner )\" quote std::mt19937\n"
      ")trap\"; int after = 1;\n";
  const LexedFile lexed = Lex({"a.cc", src});
  // Exactly one string token spanning three lines, starting at line 1.
  size_t strings = 0;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kString) {
      ++strings;
      EXPECT_EQ(t.line, 1u);
      EXPECT_NE(t.text.find("std::mt19937"), std::string::npos);
    }
  }
  EXPECT_EQ(strings, 1u);
  // The literal body is blanked out of the code view on every line.
  EXPECT_EQ(lexed.code_lines[0].find("rand"), std::string::npos);
  EXPECT_EQ(lexed.code_lines[1].find("mt19937"), std::string::npos);
  EXPECT_NE(lexed.code_lines[2].find("after"), std::string::npos);
}

TEST(AnalyzeLexerTest, BackslashNewlineSplicesIdentifiers) {
  const LexedFile lexed = Lex({"a.cc", "ra\\\nnd();"});
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(lexed.tokens[0].text, "rand");
  EXPECT_EQ(lexed.tokens[0].line, 1u);
}

TEST(AnalyzeLexerTest, LineCommentContinuesAcrossBackslashNewline) {
  const LexedFile lexed = Lex({"a.cc", "// comment \\\nstill comment\nint x;"});
  // "still comment" belongs to the comment; only "int x;" is code.
  std::vector<std::string> code_texts;
  for (const Token& t : lexed.tokens) {
    if (t.kind != TokenKind::kComment) {
      code_texts.push_back(t.text);
    }
  }
  EXPECT_EQ(code_texts, (std::vector<std::string>{"int", "x", ";"}));
}

TEST(AnalyzeLexerTest, BlockCommentsDoNotNest) {
  const LexedFile lexed = Lex({"a.cc", "/* outer /* inner */ int x;"});
  std::vector<std::string> code_texts;
  for (const Token& t : lexed.tokens) {
    if (t.kind != TokenKind::kComment) {
      code_texts.push_back(t.text);
    }
  }
  // The first */ closed the comment, per the language.
  EXPECT_EQ(code_texts, (std::vector<std::string>{"int", "x", ";"}));
}

TEST(AnalyzeLexerTest, ExtractsQuotedIncludesOnly) {
  const std::string src =
      "#include \"src/util/base.h\"\n"
      "#include <vector>\n"
      "  #  include \"src/sim/engine.h\"\n"
      "// #include \"src/not/real.h\"\n";
  const LexedFile lexed = Lex({"a.cc", src});
  EXPECT_EQ(lexed.includes,
            (std::vector<std::string>{"src/util/base.h", "src/sim/engine.h"}));
  EXPECT_EQ(lexed.include_lines, (std::vector<size_t>{1, 3}));
}

TEST(AnalyzeLexerTest, PreprocessorTokensAreFlagged) {
  const LexedFile lexed = Lex({"a.cc", "#define N 3\nint y = N;"});
  bool saw_define = false;
  for (const Token& t : lexed.tokens) {
    if (t.text == "define") {
      saw_define = true;
      EXPECT_TRUE(t.in_preprocessor);
    }
    if (t.text == "y") {
      EXPECT_FALSE(t.in_preprocessor);
    }
  }
  EXPECT_TRUE(saw_define);
}

TEST(AnalyzeLexerTest, EncodingPrefixedStringsAreLiterals) {
  const LexedFile lexed = Lex({"a.cc", "auto* s = u8\"rand( inside\"; int z;"});
  std::vector<std::string> idents;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      idents.push_back(t.text);
    }
  }
  // u8 is consumed as the literal prefix, and rand stays inside the string.
  EXPECT_EQ(idents, (std::vector<std::string>{"auto", "s", "int", "z"}));
}

TEST(AnalyzeLexerTest, UnterminatedConstructsCloseAtEndOfFile) {
  const LexedFile a = Lex({"a.cc", "/* never closed\nint x;"});
  EXPECT_EQ(a.tokens.size(), 1u);  // one comment token, no code
  const LexedFile b = Lex({"b.cc", "R\"(open forever\nstill open"});
  ASSERT_FALSE(b.tokens.empty());
  EXPECT_EQ(b.tokens.back().kind, TokenKind::kString);
}

// --- Token rules ------------------------------------------------------------

TEST(AnalyzeRulesTest, StdDistributionFlaggedEvenInRngItself) {
  const std::string src = "std::uniform_int_distribution<int> d(0, 9);\n";
  const std::vector<Finding> in_rng = RulesOnly("src/util/rng.cc", src);
  EXPECT_EQ(OfRule(in_rng, "std-distribution").size(), 1u);
  // And banned-random does NOT double-report the same name.
  EXPECT_TRUE(OfRule(in_rng, "banned-random").empty());
}

TEST(AnalyzeRulesTest, DiscardedParseResultIsStatementInitialOnly) {
  const std::string src =
      "bool ParseThing(int*);\n"
      "void F(int* v) {\n"
      "  ParseThing(v);\n"               // flagged
      "  if (ParseThing(v)) { }\n"       // checked
      "  bool ok = ParseThing(v);\n"     // assigned
      "  (void)ok;\n"
      "  return;\n"
      "}\n";
  const std::vector<Finding> findings =
      OfRule(RulesOnly("src/core/f.cc", src), "discarded-parse-result");
  EXPECT_EQ(LinesOf(findings), (std::vector<size_t>{3}));
}

TEST(AnalyzeRulesTest, UnannotatedMutexIsScopedToThreadPool) {
  const std::string src =
      "#include <mutex>\n"
      "class P {\n"
      "  std::mutex mu_;\n"
      "};\n";
  EXPECT_EQ(OfRule(RulesOnly("src/util/thread_pool.h", src), "unannotated-mutex").size(),
            1u);
  EXPECT_TRUE(
      OfRule(RulesOnly("src/cache/proxy.h", src), "unannotated-mutex").empty());
}

TEST(AnalyzeRulesTest, GuardsCommentSatisfiesMutexRule) {
  const std::string src =
      "class P {\n"
      "  std::mutex mu_;  // guards: tasks_\n"
      "};\n";
  EXPECT_TRUE(
      OfRule(RulesOnly("src/util/thread_pool.h", src), "unannotated-mutex").empty());
}

TEST(AnalyzeRulesTest, InlineWaiverSuppressesNewRules) {
  const std::string src =
      "std::uniform_int_distribution<int> d(0, 9);  "
      "// webcc-lint: allow(std-distribution) comparing against libstdc++\n";
  EXPECT_TRUE(OfRule(RulesOnly("src/core/f.cc", src), "std-distribution").empty());
}

TEST(AnalyzeRulesTest, SplicedBannedCallIsStillCaught) {
  // The old line-regex scanner could not see a call split by a
  // backslash-newline; the token engine must.
  const std::string src = "int f() { return ra\\\nnd(); }\n";
  const std::vector<Finding> findings =
      OfRule(RulesOnly("src/core/f.cc", src), "banned-random");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1u);
}

// --- On-disk rule fixtures --------------------------------------------------

TEST(AnalyzeFixtureTest, RawStringTrapProducesZeroFindings) {
  // The old regex lint false-positived on every banned name inside the
  // multi-line raw string; the analyzer must report this file clean.
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("raw_string_trap.cc")}, AnalyzeOptions{});
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected finding(s)";
}

TEST(AnalyzeFixtureTest, BadDistributionFixtureFindsAllThree) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("bad_distribution.cc")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "std-distribution")),
            (std::vector<size_t>{11, 17, 18}));
  EXPECT_EQ(findings.size(), 3u);  // the allow() markers hold back banned-random
}

TEST(AnalyzeFixtureTest, BadParseDiscardFixtureFindsBoth) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("bad_parse_discard.cc")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "discarded-parse-result")),
            (std::vector<size_t>{13, 16}));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(AnalyzeFixtureTest, ThreadPoolFixtureFlagsOnlyNakedMutex) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("util/thread_pool_fixture.h")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "unannotated-mutex")), (std::vector<size_t>{12}));
  EXPECT_EQ(findings.size(), 1u);
}

// --- Layer pass -------------------------------------------------------------

AnalyzeOptions LayerOptions() {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  return options;
}

TEST(AnalyzeLayerTest, PlantedSimToCoreIncludeIsReported) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  const std::vector<Finding> violations = OfRule(findings, "layer-violation");
  bool planted = false;
  for (const Finding& f : violations) {
    if (f.file.find("src/sim/bad_uses_core.h") != std::string::npos) {
      planted = true;
      EXPECT_EQ(f.line, 7u);
      EXPECT_NE(f.message.find("src/core/metrics_like.h"), std::string::npos);
    }
  }
  EXPECT_TRUE(planted) << "sim -> core include was not reported";
}

TEST(AnalyzeLayerTest, SrcIncludingBenchIsReported) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  bool escape = false;
  for (const Finding& f : OfRule(findings, "layer-violation")) {
    if (f.file.find("uses_bench.h") != std::string::npos) {
      escape = true;
      EXPECT_EQ(f.line, 6u);
      EXPECT_NE(f.message.find("bench/"), std::string::npos);
    }
  }
  EXPECT_TRUE(escape) << "src -> bench include was not reported";
}

TEST(AnalyzeLayerTest, IncludeCycleIsReportedExactlyOnce) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  const std::vector<Finding> cycles = OfRule(findings, "layer-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("src/cache/cycle_a.h"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("src/cache/cycle_b.h"), std::string::npos);
}

TEST(AnalyzeLayerTest, LegalEdgesProduceNoOtherFindings) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  // Exactly: planted sim->core, src->bench escape, one cycle. Downward and
  // same-module edges (sim->util, core->sim, cache->cache) are clean.
  EXPECT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.rule == "layer-violation" || f.rule == "layer-cycle") << f.rule;
  }
}

TEST(AnalyzeLayerTest, SameTierCrossModuleIncludeIsAllowed) {
  const std::string spec = "util\ncache origin http\n";
  std::vector<Finding> findings;
  const LayerSpec parsed = ParseLayerSpec("layers.txt", spec, &findings);
  const std::vector<LexedFile> files = {
      Lex({"src/cache/a.h", "#include \"src/origin/b.h\"\n"}),
      Lex({"src/origin/b.h", "#include \"src/util/c.h\"\n"}),
      Lex({"src/util/c.h", ""}),
  };
  const std::vector<Finding> layer = CheckLayers(parsed, files);
  EXPECT_TRUE(findings.empty());
  EXPECT_TRUE(layer.empty());
}

TEST(AnalyzeLayerTest, UndeclaredModuleIsConfigError) {
  const std::string spec = "util\n";
  std::vector<Finding> findings;
  const LayerSpec parsed = ParseLayerSpec("layers.txt", spec, &findings);
  const std::vector<LexedFile> files = {
      Lex({"src/mystery/a.h", "#include \"src/util/c.h\"\n"}),
      Lex({"src/util/c.h", ""}),
  };
  const std::vector<Finding> layer = CheckLayers(parsed, files);
  ASSERT_EQ(layer.size(), 1u);
  EXPECT_EQ(layer[0].rule, "layer-config");
  EXPECT_NE(layer[0].message.find("mystery"), std::string::npos);
}

TEST(AnalyzeLayerTest, DuplicateModuleDeclarationIsConfigError) {
  std::vector<Finding> findings;
  ParseLayerSpec("layers.txt", "util\nsim util\n", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-config");
}

TEST(AnalyzeLayerTest, RepoRelativeCutsAtLastRootComponent) {
  EXPECT_EQ(RepoRelative("/root/repo/src/cache/policy.h"), "src/cache/policy.h");
  EXPECT_EQ(RepoRelative("tests/tools/analyze_fixtures/layer_tree/src/sim/a.h"),
            "src/sim/a.h");
  EXPECT_EQ(RepoRelative("bench/fig2.cc"), "bench/fig2.cc");
  EXPECT_EQ(RepoRelative("no/roots/here.h"), "no/roots/here.h");
}

// --- Baseline ---------------------------------------------------------------

AnalyzeConfig BaselineConfig(const std::string& baseline) {
  AnalyzeConfig config;
  config.apply_baseline = true;
  config.baseline_path = "tools/analyze/baseline.txt";
  config.baseline_contents = baseline;
  return config;
}

TEST(AnalyzeBaselineTest, ExactMatchSuppressesFinding) {
  const std::string src = "std::uniform_int_distribution<int> d(0, 9);\n";
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", src}},
      BaselineConfig("src/core/f.cc:1: [std-distribution] comparing against stdlib\n"));
  EXPECT_TRUE(findings.empty()) << findings[0].rule;
}

TEST(AnalyzeBaselineTest, StaleEntryIsAnError) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}},
      BaselineConfig("src/core/f.cc:1: [std-distribution] was fixed long ago\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stale-baseline");
  EXPECT_EQ(findings[0].line, 1u);  // points at the baseline line itself
}

TEST(AnalyzeBaselineTest, MissingJustificationIsAnError) {
  const std::vector<Finding> findings =
      AnalyzeSources({SourceFile{"src/core/f.cc", "int x = 0;\n"}},
                     BaselineConfig("src/core/f.cc:1: [std-distribution]\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "baseline-config");
}

TEST(AnalyzeBaselineTest, MalformedEntryIsAnError) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}}, BaselineConfig("not an entry\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "baseline-config");
}

TEST(AnalyzeBaselineTest, CommentsAndBlanksAreIgnored) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}},
      BaselineConfig("# header comment\n\n   # indented comment\n"));
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeBaselineTest, ConfigErrorsCannotBeBaselined) {
  // A stale-baseline error cannot itself be acknowledged away.
  const std::string baseline =
      "src/core/f.cc:1: [std-distribution] gone\n"
      "tools/analyze/baseline.txt:1: [stale-baseline] trying to mute the mute\n";
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}}, BaselineConfig(baseline));
  // Entry 1 is stale; entry 2 matches nothing either (stale-baseline findings
  // are exempt from matching), so both report stale.
  EXPECT_EQ(OfRule(findings, "stale-baseline").size(), 2u);
}

// --- SARIF ------------------------------------------------------------------

TEST(AnalyzeSarifTest, GoldenOutput) {
  const std::vector<Finding> findings = {
      Finding{"src/cache/alpha.cc", 12, "banned-random",
              "uses \"rand\" \\ here"},
      Finding{"tools/analyze/baseline.txt", 0, "stale-baseline",
              "entry matches nothing"},
  };
  EXPECT_EQ(RenderSarif(findings), ReadFileOrDie(FixturePath("golden.sarif")));
}

TEST(AnalyzeSarifTest, EmptyFindingsRenderEmptyArrays) {
  const std::string sarif = RenderSarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
}

TEST(AnalyzeSarifTest, PathsAreRepoRelativeUris) {
  const std::string sarif =
      RenderSarif({Finding{"/abs/checkout/src/sim/engine.cc", 3, "r", "m"}});
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/engine.cc\""), std::string::npos);
  EXPECT_EQ(sarif.find("/abs/checkout"), std::string::npos);
}

// --- Include-graph cache ----------------------------------------------------

class AnalyzeGraphCacheTest : public ::testing::Test {
 protected:
  std::string CachePath() const {
    return ::testing::TempDir() + "/webcc_analyze_graph_cache.txt";
  }
  void TearDown() override { std::remove(CachePath().c_str()); }
};

TEST_F(AnalyzeGraphCacheTest, WarmCacheReproducesFindingsExactly) {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  options.graph_cache_file = CachePath();
  const std::vector<Finding> cold =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  std::ifstream cache(CachePath());
  EXPECT_TRUE(cache.good()) << "cache file was not written";
  const std::vector<Finding> warm =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].file, warm[i].file);
    EXPECT_EQ(cold[i].line, warm[i].line);
    EXPECT_EQ(cold[i].rule, warm[i].rule);
    EXPECT_EQ(cold[i].message, warm[i].message);
  }
}

TEST_F(AnalyzeGraphCacheTest, CorruptCacheIsIgnoredNotTrusted) {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  options.graph_cache_file = CachePath();
  const std::vector<Finding> reference =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  {
    std::ofstream out(CachePath(), std::ios::trunc);
    out << "# webcc-analyze graph cache v1\nF garbage\n";
  }
  const std::vector<Finding> after =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  EXPECT_EQ(reference.size(), after.size());
}

// --- Whole-tree gate (mirrors the lint.analyze.tree ctest) ------------------

TEST(AnalyzeTreeTest, LayerSpecParsesCleanly) {
  std::vector<Finding> findings;
  const LayerSpec spec =
      ParseLayerSpec("layers.txt", ReadFileOrDie(WEBCC_ANALYZE_LAYERS_FILE), &findings);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(spec.tiers.size(), 5u);
  ASSERT_EQ(spec.tier_of.count("util"), 1u);
  ASSERT_EQ(spec.tier_of.count("chaos"), 1u);
  EXPECT_LT(spec.tier_of.at("util"), spec.tier_of.at("sim"));
  EXPECT_LT(spec.tier_of.at("sim"), spec.tier_of.at("cache"));
  EXPECT_EQ(spec.tier_of.at("cache"), spec.tier_of.at("origin"));
  EXPECT_LT(spec.tier_of.at("core"), spec.tier_of.at("chaos"));
}

}  // namespace
}  // namespace webcc::analyze
