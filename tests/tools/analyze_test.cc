// Tests for webcc-analyze (tools/analyze/): lexer, token rules, layer DAG
// enforcement, baseline mechanism, SARIF output, and the include-graph
// cache. The on-disk fixtures live in WEBCC_ANALYZE_FIXTURE_DIR; the real
// layer spec comes from WEBCC_ANALYZE_LAYERS_FILE so the synthetic layer
// tree is checked against the DAG the tree itself is held to.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyze/analyze.h"
#include "tools/analyze/baseline.h"
#include "tools/analyze/callgraph.h"
#include "tools/analyze/cfg.h"
#include "tools/analyze/layers.h"
#include "tools/analyze/lexer.h"
#include "tools/analyze/rules.h"
#include "tools/analyze/sarif.h"
#include "tools/analyze/symbols.h"
#include "tools/analyze/taint.h"
#include "tools/analyze/timedomain.h"

namespace webcc::analyze {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(WEBCC_ANALYZE_FIXTURE_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> RulesOnly(const std::string& path, const std::string& contents) {
  return AnalyzeSources({SourceFile{path, contents}}, AnalyzeConfig{});
}

std::vector<Finding> OfRule(const std::vector<Finding>& findings, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      out.push_back(f);
    }
  }
  return out;
}

std::vector<size_t> LinesOf(const std::vector<Finding>& findings) {
  std::vector<size_t> lines;
  for (const Finding& f : findings) {
    lines.push_back(f.line);
  }
  return lines;
}

// --- Lexer ------------------------------------------------------------------

TEST(AnalyzeLexerTest, TokenizesIdentifiersNumbersAndPunctuation) {
  const LexedFile lexed = Lex({"a.cc", "int x = a->b + 0x1F;"});
  std::vector<std::string> texts;
  for (const Token& t : lexed.tokens) {
    texts.push_back(t.text);
  }
  EXPECT_EQ(texts,
            (std::vector<std::string>{"int", "x", "=", "a", "->", "b", "+", "0x1F", ";"}));
  EXPECT_EQ(lexed.tokens[4].kind, TokenKind::kPunct);
  EXPECT_EQ(lexed.tokens[7].kind, TokenKind::kNumber);
}

TEST(AnalyzeLexerTest, RawStringWithCustomDelimiterIsOneLiteral) {
  const std::string src =
      "const char* s = R\"trap(line one rand(\n"
      "inner )\" quote std::mt19937\n"
      ")trap\"; int after = 1;\n";
  const LexedFile lexed = Lex({"a.cc", src});
  // Exactly one string token spanning three lines, starting at line 1.
  size_t strings = 0;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kString) {
      ++strings;
      EXPECT_EQ(t.line, 1u);
      EXPECT_NE(t.text.find("std::mt19937"), std::string::npos);
    }
  }
  EXPECT_EQ(strings, 1u);
  // The literal body is blanked out of the code view on every line.
  EXPECT_EQ(lexed.code_lines[0].find("rand"), std::string::npos);
  EXPECT_EQ(lexed.code_lines[1].find("mt19937"), std::string::npos);
  EXPECT_NE(lexed.code_lines[2].find("after"), std::string::npos);
}

TEST(AnalyzeLexerTest, BackslashNewlineSplicesIdentifiers) {
  const LexedFile lexed = Lex({"a.cc", "ra\\\nnd();"});
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(lexed.tokens[0].text, "rand");
  EXPECT_EQ(lexed.tokens[0].line, 1u);
}

TEST(AnalyzeLexerTest, LineCommentContinuesAcrossBackslashNewline) {
  const LexedFile lexed = Lex({"a.cc", "// comment \\\nstill comment\nint x;"});
  // "still comment" belongs to the comment; only "int x;" is code.
  std::vector<std::string> code_texts;
  for (const Token& t : lexed.tokens) {
    if (t.kind != TokenKind::kComment) {
      code_texts.push_back(t.text);
    }
  }
  EXPECT_EQ(code_texts, (std::vector<std::string>{"int", "x", ";"}));
}

TEST(AnalyzeLexerTest, BlockCommentsDoNotNest) {
  const LexedFile lexed = Lex({"a.cc", "/* outer /* inner */ int x;"});
  std::vector<std::string> code_texts;
  for (const Token& t : lexed.tokens) {
    if (t.kind != TokenKind::kComment) {
      code_texts.push_back(t.text);
    }
  }
  // The first */ closed the comment, per the language.
  EXPECT_EQ(code_texts, (std::vector<std::string>{"int", "x", ";"}));
}

TEST(AnalyzeLexerTest, ExtractsQuotedIncludesOnly) {
  const std::string src =
      "#include \"src/util/base.h\"\n"
      "#include <vector>\n"
      "  #  include \"src/sim/engine.h\"\n"
      "// #include \"src/not/real.h\"\n";
  const LexedFile lexed = Lex({"a.cc", src});
  EXPECT_EQ(lexed.includes,
            (std::vector<std::string>{"src/util/base.h", "src/sim/engine.h"}));
  EXPECT_EQ(lexed.include_lines, (std::vector<size_t>{1, 3}));
}

TEST(AnalyzeLexerTest, PreprocessorTokensAreFlagged) {
  const LexedFile lexed = Lex({"a.cc", "#define N 3\nint y = N;"});
  bool saw_define = false;
  for (const Token& t : lexed.tokens) {
    if (t.text == "define") {
      saw_define = true;
      EXPECT_TRUE(t.in_preprocessor);
    }
    if (t.text == "y") {
      EXPECT_FALSE(t.in_preprocessor);
    }
  }
  EXPECT_TRUE(saw_define);
}

TEST(AnalyzeLexerTest, EncodingPrefixedStringsAreLiterals) {
  const LexedFile lexed = Lex({"a.cc", "auto* s = u8\"rand( inside\"; int z;"});
  std::vector<std::string> idents;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      idents.push_back(t.text);
    }
  }
  // u8 is consumed as the literal prefix, and rand stays inside the string.
  EXPECT_EQ(idents, (std::vector<std::string>{"auto", "s", "int", "z"}));
}

TEST(AnalyzeLexerTest, UnterminatedConstructsCloseAtEndOfFile) {
  const LexedFile a = Lex({"a.cc", "/* never closed\nint x;"});
  EXPECT_EQ(a.tokens.size(), 1u);  // one comment token, no code
  const LexedFile b = Lex({"b.cc", "R\"(open forever\nstill open"});
  ASSERT_FALSE(b.tokens.empty());
  EXPECT_EQ(b.tokens.back().kind, TokenKind::kString);
}

// --- Token rules ------------------------------------------------------------

TEST(AnalyzeRulesTest, StdDistributionFlaggedEvenInRngItself) {
  const std::string src = "std::uniform_int_distribution<int> d(0, 9);\n";
  const std::vector<Finding> in_rng = RulesOnly("src/util/rng.cc", src);
  EXPECT_EQ(OfRule(in_rng, "std-distribution").size(), 1u);
  // And banned-random does NOT double-report the same name.
  EXPECT_TRUE(OfRule(in_rng, "banned-random").empty());
}

TEST(AnalyzeRulesTest, DiscardedParseResultIsStatementInitialOnly) {
  const std::string src =
      "bool ParseThing(int*);\n"
      "void F(int* v) {\n"
      "  ParseThing(v);\n"               // flagged
      "  if (ParseThing(v)) { }\n"       // checked
      "  bool ok = ParseThing(v);\n"     // assigned
      "  (void)ok;\n"
      "  return;\n"
      "}\n";
  const std::vector<Finding> findings =
      OfRule(RulesOnly("src/core/f.cc", src), "discarded-parse-result");
  EXPECT_EQ(LinesOf(findings), (std::vector<size_t>{3}));
}

TEST(AnalyzeRulesTest, UnannotatedMutexAppliesTreeWide) {
  // Pass 4's lock-discipline rule made the annotation contract enforceable,
  // so the unannotated-mutex check grew from its util/thread_pool pilot
  // scope to every scanned file.
  const std::string src =
      "#include <mutex>\n"
      "class P {\n"
      "  std::mutex mu_;\n"
      "};\n";
  EXPECT_EQ(OfRule(RulesOnly("src/util/thread_pool.h", src), "unannotated-mutex").size(),
            1u);
  EXPECT_EQ(OfRule(RulesOnly("src/cache/proxy.h", src), "unannotated-mutex").size(), 1u);
  EXPECT_EQ(OfRule(RulesOnly("bench/runner.h", src), "unannotated-mutex").size(), 1u);
}

TEST(AnalyzeRulesTest, GuardsCommentSatisfiesMutexRule) {
  const std::string src =
      "class P {\n"
      "  std::mutex mu_;  // guards: tasks_\n"
      "};\n";
  EXPECT_TRUE(
      OfRule(RulesOnly("src/util/thread_pool.h", src), "unannotated-mutex").empty());
}

TEST(AnalyzeRulesTest, InlineWaiverSuppressesNewRules) {
  const std::string src =
      "std::uniform_int_distribution<int> d(0, 9);  "
      "// webcc-lint: allow(std-distribution) comparing against libstdc++\n";
  EXPECT_TRUE(OfRule(RulesOnly("src/core/f.cc", src), "std-distribution").empty());
}

TEST(AnalyzeRulesTest, SplicedBannedCallIsStillCaught) {
  // The old line-regex scanner could not see a call split by a
  // backslash-newline; the token engine must.
  const std::string src = "int f() { return ra\\\nnd(); }\n";
  const std::vector<Finding> findings =
      OfRule(RulesOnly("src/core/f.cc", src), "banned-random");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1u);
}

// --- On-disk rule fixtures --------------------------------------------------

TEST(AnalyzeFixtureTest, RawStringTrapProducesZeroFindings) {
  // The old regex lint false-positived on every banned name inside the
  // multi-line raw string; the analyzer must report this file clean.
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("raw_string_trap.cc")}, AnalyzeOptions{});
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected finding(s)";
}

TEST(AnalyzeFixtureTest, BadDistributionFixtureFindsAllThree) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("bad_distribution.cc")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "std-distribution")),
            (std::vector<size_t>{11, 17, 18}));
  EXPECT_EQ(findings.size(), 3u);  // the allow() markers hold back banned-random
}

TEST(AnalyzeFixtureTest, BadParseDiscardFixtureFindsBoth) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("bad_parse_discard.cc")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "discarded-parse-result")),
            (std::vector<size_t>{13, 16}));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(AnalyzeFixtureTest, ThreadPoolFixtureFlagsOnlyNakedMutex) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("util/thread_pool_fixture.h")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "unannotated-mutex")), (std::vector<size_t>{12}));
  EXPECT_EQ(findings.size(), 1u);
}

// --- Layer pass -------------------------------------------------------------

AnalyzeOptions LayerOptions() {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  return options;
}

TEST(AnalyzeLayerTest, PlantedSimToCoreIncludeIsReported) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  const std::vector<Finding> violations = OfRule(findings, "layer-violation");
  bool planted = false;
  for (const Finding& f : violations) {
    if (f.file.find("src/sim/bad_uses_core.h") != std::string::npos) {
      planted = true;
      EXPECT_EQ(f.line, 7u);
      EXPECT_NE(f.message.find("src/core/metrics_like.h"), std::string::npos);
    }
  }
  EXPECT_TRUE(planted) << "sim -> core include was not reported";
}

TEST(AnalyzeLayerTest, SrcIncludingBenchIsReported) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  bool escape = false;
  for (const Finding& f : OfRule(findings, "layer-violation")) {
    if (f.file.find("uses_bench.h") != std::string::npos) {
      escape = true;
      EXPECT_EQ(f.line, 6u);
      EXPECT_NE(f.message.find("bench/"), std::string::npos);
    }
  }
  EXPECT_TRUE(escape) << "src -> bench include was not reported";
}

TEST(AnalyzeLayerTest, IncludeCycleIsReportedExactlyOnce) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  const std::vector<Finding> cycles = OfRule(findings, "layer-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("src/cache/cycle_a.h"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("src/cache/cycle_b.h"), std::string::npos);
}

TEST(AnalyzeLayerTest, LegalEdgesProduceNoOtherFindings) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  // Exactly: planted sim->core, src->bench escape, one cycle. Downward and
  // same-module edges (sim->util, core->sim, cache->cache) are clean.
  EXPECT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.rule == "layer-violation" || f.rule == "layer-cycle") << f.rule;
  }
}

TEST(AnalyzeLayerTest, SameTierCrossModuleIncludeIsAllowed) {
  const std::string spec = "util\ncache origin http\n";
  std::vector<Finding> findings;
  const LayerSpec parsed = ParseLayerSpec("layers.txt", spec, &findings);
  const std::vector<LexedFile> files = {
      Lex({"src/cache/a.h", "#include \"src/origin/b.h\"\n"}),
      Lex({"src/origin/b.h", "#include \"src/util/c.h\"\n"}),
      Lex({"src/util/c.h", ""}),
  };
  const std::vector<Finding> layer = CheckLayers(parsed, files);
  EXPECT_TRUE(findings.empty());
  EXPECT_TRUE(layer.empty());
}

TEST(AnalyzeLayerTest, UndeclaredModuleIsConfigError) {
  const std::string spec = "util\n";
  std::vector<Finding> findings;
  const LayerSpec parsed = ParseLayerSpec("layers.txt", spec, &findings);
  const std::vector<LexedFile> files = {
      Lex({"src/mystery/a.h", "#include \"src/util/c.h\"\n"}),
      Lex({"src/util/c.h", ""}),
  };
  const std::vector<Finding> layer = CheckLayers(parsed, files);
  ASSERT_EQ(layer.size(), 1u);
  EXPECT_EQ(layer[0].rule, "layer-config");
  EXPECT_NE(layer[0].message.find("mystery"), std::string::npos);
}

TEST(AnalyzeLayerTest, DuplicateModuleDeclarationIsConfigError) {
  std::vector<Finding> findings;
  ParseLayerSpec("layers.txt", "util\nsim util\n", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-config");
}

TEST(AnalyzeLayerTest, RepoRelativeCutsAtLastRootComponent) {
  EXPECT_EQ(RepoRelative("/root/repo/src/cache/policy.h"), "src/cache/policy.h");
  EXPECT_EQ(RepoRelative("tests/tools/analyze_fixtures/layer_tree/src/sim/a.h"),
            "src/sim/a.h");
  EXPECT_EQ(RepoRelative("bench/fig2.cc"), "bench/fig2.cc");
  EXPECT_EQ(RepoRelative("no/roots/here.h"), "no/roots/here.h");
}

// --- Baseline ---------------------------------------------------------------

AnalyzeConfig BaselineConfig(const std::string& baseline) {
  AnalyzeConfig config;
  config.apply_baseline = true;
  config.baseline_path = "tools/analyze/baseline.txt";
  config.baseline_contents = baseline;
  return config;
}

TEST(AnalyzeBaselineTest, ExactMatchSuppressesFinding) {
  const std::string src = "std::uniform_int_distribution<int> d(0, 9);\n";
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", src}},
      BaselineConfig("src/core/f.cc:1: [std-distribution] comparing against stdlib\n"));
  EXPECT_TRUE(findings.empty()) << findings[0].rule;
}

TEST(AnalyzeBaselineTest, StaleEntryIsAnError) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}},
      BaselineConfig("src/core/f.cc:1: [std-distribution] was fixed long ago\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stale-baseline");
  EXPECT_EQ(findings[0].line, 1u);  // points at the baseline line itself
}

TEST(AnalyzeBaselineTest, MissingJustificationIsAnError) {
  const std::vector<Finding> findings =
      AnalyzeSources({SourceFile{"src/core/f.cc", "int x = 0;\n"}},
                     BaselineConfig("src/core/f.cc:1: [std-distribution]\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "baseline-config");
}

TEST(AnalyzeBaselineTest, MalformedEntryIsAnError) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}}, BaselineConfig("not an entry\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "baseline-config");
}

TEST(AnalyzeBaselineTest, CommentsAndBlanksAreIgnored) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}},
      BaselineConfig("# header comment\n\n   # indented comment\n"));
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeBaselineTest, ConfigErrorsCannotBeBaselined) {
  // A stale-baseline error cannot itself be acknowledged away.
  const std::string baseline =
      "src/core/f.cc:1: [std-distribution] gone\n"
      "tools/analyze/baseline.txt:1: [stale-baseline] trying to mute the mute\n";
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}}, BaselineConfig(baseline));
  // Entry 1 is stale; entry 2 matches nothing either (stale-baseline findings
  // are exempt from matching), so both report stale.
  EXPECT_EQ(OfRule(findings, "stale-baseline").size(), 2u);
}

// --- SARIF ------------------------------------------------------------------

TEST(AnalyzeSarifTest, GoldenOutput) {
  const std::vector<Finding> findings = {
      Finding{"src/cache/alpha.cc", 12, "banned-random",
              "uses \"rand\" \\ here"},
      Finding{"src/core/sweep_runner.cc", 55, "determinism-taint",
              "'webcc::SweepRunner::SweepRunner' transitively reaches getenv() at "
              "src/util/thread_pool.cc:117; call chain: "
              "webcc::SweepRunner::SweepRunner -> webcc::ResolveJobs"},
      Finding{"src/serve/frontend.cc", 140, "time-domain",
              "expression mixes wall-clock nanoseconds ('deadline_ns') with "
              "simulated time ('now'); convert through a sanctioned converter "
              "(tools/analyze/time_domains.txt) instead"},
      Finding{"tools/analyze/baseline.txt", 0, "stale-baseline",
              "entry matches nothing"},
  };
  EXPECT_EQ(RenderSarif(findings), ReadFileOrDie(FixturePath("golden.sarif")));
}

TEST(AnalyzeSarifTest, EmptyFindingsRenderEmptyArrays) {
  const std::string sarif = RenderSarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
}

TEST(AnalyzeSarifTest, PathsAreRepoRelativeUris) {
  const std::string sarif =
      RenderSarif({Finding{"/abs/checkout/src/sim/engine.cc", 3, "r", "m"}});
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/engine.cc\""), std::string::npos);
  EXPECT_EQ(sarif.find("/abs/checkout"), std::string::npos);
}

// --- Include-graph cache ----------------------------------------------------

class AnalyzeGraphCacheTest : public ::testing::Test {
 protected:
  std::string CachePath() const {
    return ::testing::TempDir() + "/webcc_analyze_graph_cache.txt";
  }
  void TearDown() override { std::remove(CachePath().c_str()); }
};

TEST_F(AnalyzeGraphCacheTest, WarmCacheReproducesFindingsExactly) {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  options.graph_cache_file = CachePath();
  const std::vector<Finding> cold =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  std::ifstream cache(CachePath());
  EXPECT_TRUE(cache.good()) << "cache file was not written";
  const std::vector<Finding> warm =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].file, warm[i].file);
    EXPECT_EQ(cold[i].line, warm[i].line);
    EXPECT_EQ(cold[i].rule, warm[i].rule);
    EXPECT_EQ(cold[i].message, warm[i].message);
  }
}

TEST_F(AnalyzeGraphCacheTest, CorruptCacheIsIgnoredNotTrusted) {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  options.graph_cache_file = CachePath();
  const std::vector<Finding> reference =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  {
    std::ofstream out(CachePath(), std::ios::trunc);
    out << "# webcc-analyze graph cache v1\nF garbage\n";
  }
  const std::vector<Finding> after =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  EXPECT_EQ(reference.size(), after.size());
}

// --- Pass 4: symbol index ----------------------------------------------------

SymbolIndex IndexOf(const std::vector<SourceFile>& sources) {
  std::vector<LexedFile> lexed;
  for (const SourceFile& s : sources) {
    lexed.push_back(Lex(s));
  }
  return BuildSymbolIndex(lexed);
}

const FunctionSymbol* FindDef(const SymbolIndex& index, const std::string& qualified) {
  for (const FunctionSymbol& fn : index.functions) {
    if (fn.qualified_name == qualified && fn.is_definition) {
      return &fn;
    }
  }
  return nullptr;
}

std::vector<Finding> Pass4(const std::vector<SourceFile>& sources,
                           const std::string& waivers = "") {
  AnalyzeConfig config;
  config.run_symbols = true;
  config.taint_waivers_contents = waivers;
  return AnalyzeSources(sources, config);
}

TEST(AnalyzeSymbolsTest, IndexesDefsDeclsAndOutOfLineMethods) {
  const SymbolIndex index = IndexOf({
      SourceFile{"src/util/w.h",
                 "namespace fx {\n"
                 "class Widget {\n"
                 " public:\n"
                 "  void Render();\n"
                 "  int size() const { return size_; }\n"
                 " private:\n"
                 "  int size_ = 0;\n"
                 "};\n"
                 "int FreeHelper(int a, int b);\n"
                 "}  // namespace fx\n"},
      SourceFile{"src/util/w.cc",
                 "namespace fx {\n"
                 "void Widget::Render() { FreeHelper(1, 2); }\n"
                 "int FreeHelper(int a, int b) { return a + b; }\n"
                 "}  // namespace fx\n"},
  });
  const FunctionSymbol* render = FindDef(index, "fx::Widget::Render");
  ASSERT_NE(render, nullptr);
  EXPECT_TRUE(render->is_method);
  ASSERT_EQ(render->calls.size(), 1u);
  EXPECT_EQ(render->calls[0].callee, "FreeHelper");
  const FunctionSymbol* size = FindDef(index, "fx::Widget::size");
  ASSERT_NE(size, nullptr);
  EXPECT_TRUE(size->is_method);
  ASSERT_NE(FindDef(index, "fx::FreeHelper"), nullptr);
  // The header carries declarations (no body) for Render and FreeHelper.
  size_t decls = 0;
  for (const FunctionSymbol& fn : index.functions) {
    if (!fn.is_definition && fn.file == "src/util/w.h") {
      ++decls;
    }
  }
  EXPECT_GE(decls, 2u);
}

TEST(AnalyzeSymbolsTest, ConstructorInitializerListCallsAreIndexed) {
  // Regression: a call hidden in a ctor init list (the real tree's
  // `SweepRunner::SweepRunner : jobs_(ResolveJobs(jobs))`) must reach the
  // call graph even though it sits before the `{`.
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/r.cc",
      "namespace fx {\n"
      "int Resolve(int j);\n"
      "class Runner {\n"
      " public:\n"
      "  explicit Runner(int jobs) : jobs_(jobs == 1 ? 1 : Resolve(jobs)) {}\n"
      " private:\n"
      "  int jobs_;\n"
      "};\n"
      "}  // namespace fx\n"}});
  const FunctionSymbol* ctor = FindDef(index, "fx::Runner::Runner");
  ASSERT_NE(ctor, nullptr);
  // The member initializer `jobs_(...)` may itself be recorded as a call-like
  // use (it resolves to nothing); what matters is that Resolve is seen.
  bool saw_resolve = false;
  for (const CallUse& call : ctor->calls) {
    saw_resolve = saw_resolve || call.callee == "Resolve";
  }
  EXPECT_TRUE(saw_resolve);
}

TEST(AnalyzeSymbolsTest, TemplatesOperatorsAndDestructorsIndex) {
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/t.h",
      "namespace fx {\n"
      "template <typename T>\n"
      "T Clamp(T v, T lo, T hi) { return v < lo ? lo : (hi < v ? hi : v); }\n"
      "class Holder {\n"
      " public:\n"
      "  ~Holder() { Release(); }\n"
      "  bool operator==(const Holder& o) const { return id_ == o.id_; }\n"
      " private:\n"
      "  void Release();\n"
      "  int id_ = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  EXPECT_NE(FindDef(index, "fx::Clamp"), nullptr);
  const FunctionSymbol* dtor = FindDef(index, "fx::Holder::~Holder");
  ASSERT_NE(dtor, nullptr);
  ASSERT_EQ(dtor->calls.size(), 1u);
  EXPECT_EQ(dtor->calls[0].callee, "Release");
  EXPECT_NE(FindDef(index, "fx::Holder::operator=="), nullptr);
}

TEST(AnalyzeSymbolsTest, OverloadsShareOneNameAndResolveConservatively) {
  // Two overloads of Pick: a call site links to both candidates, so taint
  // through either overload is caught (over-report, never under-report).
  const std::vector<SourceFile> sources = {SourceFile{
      "src/cache/o.cc",
      "namespace fx {\n"
      "int Pick(int a) { return a; }\n"
      "int Pick(int a, int b) { return getenv(\"X\") ? a : b; }\n"
      "int Decide() { return Pick(1); }\n"
      "}  // namespace fx\n"}};
  const SymbolIndex index = IndexOf(sources);
  EXPECT_EQ(index.definitions_by_name.at("Pick").size(), 2u);
  const std::vector<Finding> findings = Pass4(sources);
  // Decide is tainted through the conservative edge to the getenv overload.
  bool decide_tainted = false;
  for (const Finding& f : OfRule(findings, "determinism-taint")) {
    decide_tainted = decide_tainted || f.message.find("fx::Decide") == 0 ||
                     f.message.find("'fx::Decide'") != std::string::npos;
  }
  EXPECT_TRUE(decide_tainted);
}

TEST(AnalyzeSymbolsTest, ShadowedNamesStayLexical) {
  // A local variable shadowing a function name produces ident uses, not
  // calls; only the real call syntax links into the graph.
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/s.cc",
      "namespace fx {\n"
      "int Level() { return 3; }\n"
      "int Use() {\n"
      "  int Level = 7;\n"
      "  return Level + 1;\n"
      "}\n"
      "}  // namespace fx\n"}});
  const FunctionSymbol* use = FindDef(index, "fx::Use");
  ASSERT_NE(use, nullptr);
  EXPECT_TRUE(use->calls.empty());
}

TEST(AnalyzeSymbolsTest, GuardedMemberAnnotationsAreExtracted) {
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/g.h",
      "namespace fx {\n"
      "class Pool {\n"
      "  std::mutex mu_;  // guards: depth_\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  ASSERT_EQ(index.guarded_members.size(), 1u);
  EXPECT_EQ(index.guarded_members[0].class_name, "fx::Pool");
  EXPECT_EQ(index.guarded_members[0].member, "depth_");
  EXPECT_EQ(index.guarded_members[0].mutex, "mu_");
}

TEST(AnalyzeSymbolsTest, DeadSymbolReportIsCensusBased) {
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/d.cc",
      "namespace fx {\n"
      "int Used() { return 1; }\n"
      "int Unused() { return 2; }\n"
      "int main_like() { return Used(); }\n"
      "int main() { return main_like(); }\n"
      "}  // namespace fx\n"}});
  const std::vector<std::string> dead = DeadSymbolReport(index);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_NE(dead[0].find("fx::Unused"), std::string::npos);
  EXPECT_NE(dead[0].find("src/util/d.cc:3"), std::string::npos);
}

// --- Pass 4: determinism taint ----------------------------------------------

TEST(AnalyzeTaintTest, ThreeDeepChainIsReportedWithFullChain) {
  AnalyzeOptions options;
  options.run_symbols = true;
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("taint_tree")}, options);
  const std::vector<Finding> taint = OfRule(findings, "determinism-taint");
  ASSERT_EQ(taint.size(), 1u);
  EXPECT_NE(taint[0].file.find("src/cache/decision.cc"), std::string::npos);
  EXPECT_NE(taint[0].message.find(
                "call chain: fixture::CacheDecision -> fixture::ProbeLevel -> "
                "fixture::ProbeEnvironment"),
            std::string::npos);
  EXPECT_NE(taint[0].message.find("getenv() at src/util/env_probe.h:9"),
            std::string::npos);
}

TEST(AnalyzeTaintTest, WaiverIsAPropagationBarrier) {
  AnalyzeOptions options;
  options.run_symbols = true;
  std::vector<Finding> unwaived = AnalyzePaths({FixturePath("taint_tree")}, options);
  EXPECT_EQ(OfRule(unwaived, "determinism-taint").size(), 1u);
  // Waiving the middle hop severs the chain above it.
  const std::string waivers_path = ::testing::TempDir() + "/taint_waivers_test.txt";
  {
    std::ofstream out(waivers_path, std::ios::trunc);
    out << "fixture::ProbeLevel fixture probe cannot affect results\n";
  }
  options.taint_waivers_file = waivers_path;
  const std::vector<Finding> waived = AnalyzePaths({FixturePath("taint_tree")}, options);
  EXPECT_TRUE(OfRule(waived, "determinism-taint").empty());
  EXPECT_TRUE(OfRule(waived, "stale-taint-waiver").empty());
  std::remove(waivers_path.c_str());
}

TEST(AnalyzeTaintTest, StaleWaiverIsAFinding) {
  const std::vector<Finding> findings =
      Pass4({SourceFile{"src/cache/clean.cc",
                        "namespace fx {\n"
                        "int Pure() { return 1; }\n"
                        "}  // namespace fx\n"}},
            "fx::Pure waiver kept after the taint was fixed\n");
  const std::vector<Finding> stale = OfRule(findings, "stale-taint-waiver");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].message.find("fx::Pure"), std::string::npos);
}

TEST(AnalyzeTaintTest, WaiverWithoutJustificationIsConfigError) {
  const std::vector<Finding> findings =
      Pass4({SourceFile{"src/cache/c.cc", "int F() { return 0; }\n"}},
            "fx::Naked\n");
  EXPECT_EQ(OfRule(findings, "taint-config").size(), 1u);
}

TEST(AnalyzeTaintTest, NondeterministicAnnotationIsASource) {
  const std::vector<Finding> findings = Pass4({SourceFile{
      "src/sim/a.cc",
      "namespace fx {\n"
      "// webcc-nondeterministic: models outside input\n"
      "int Oracle() { return 4; }\n"
      "int Tick() { return Oracle(); }\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> taint = OfRule(findings, "determinism-taint");
  // Both Oracle (annotated, in a sink dir) and Tick (transitively) report.
  ASSERT_EQ(taint.size(), 2u);
  EXPECT_NE(taint[1].message.find("fx::Tick -> fx::Oracle"), std::string::npos);
  EXPECT_NE(taint[0].message.find("`// webcc-nondeterministic` annotation"),
            std::string::npos);
}

TEST(AnalyzeTaintTest, UnorderedIterationIsASource) {
  const std::vector<Finding> findings = Pass4({SourceFile{
      "src/cache/u.cc",
      "namespace fx {\n"
      "std::unordered_map<int, int> table;\n"
      "int Sum() {\n"
      "  int s = 0;\n"
      "  for (const auto& kv : table) { s += kv.second; }\n"
      "  return s;\n"
      "}\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> taint = OfRule(findings, "determinism-taint");
  ASSERT_EQ(taint.size(), 1u);
  EXPECT_NE(taint[0].message.find("unordered iteration over 'table'"),
            std::string::npos);
}

TEST(AnalyzeTaintTest, RootScopingBlocksCrossRootEdges) {
  // A tools/ helper full of nondeterminism shares a name with nothing in
  // src/; the src caller must not link to it (src never calls tools).
  const std::vector<Finding> findings = Pass4({
      SourceFile{"tools/gen/helper.cc",
                 "namespace fx {\n"
                 "int Helper() { return getenv(\"A\") ? 1 : 0; }\n"
                 "}  // namespace fx\n"},
      SourceFile{"src/cache/caller.cc",
                 "namespace fx {\n"
                 "int Helper();\n"
                 "int Use() { return Helper(); }\n"
                 "}  // namespace fx\n"},
  });
  EXPECT_TRUE(OfRule(findings, "determinism-taint").empty());
}

TEST(AnalyzeTaintTest, SeededRngHelpersStaySanctioned) {
  // src/util/rng.* is the seeded-engine home; its mt19937 use is exempt, so
  // sink-dir callers of Rng helpers stay clean (same carve-out as pass 1).
  const std::vector<Finding> findings = Pass4({
      SourceFile{"src/util/rng.h",
                 "namespace fx {\n"
                 "class Rng {\n"
                 " public:\n"
                 "  uint64_t Next() { return engine_(); }\n"
                 " private:\n"
                 "  std::mt19937_64 engine_;\n"
                 "};\n"
                 "}  // namespace fx\n"},
      SourceFile{"src/sim/roll.cc",
                 "namespace fx {\n"
                 "int Roll(Rng& rng) { return static_cast<int>(rng.Next() % 6); }\n"
                 "}  // namespace fx\n"},
  });
  EXPECT_TRUE(OfRule(findings, "determinism-taint").empty());
}

TEST(AnalyzeTaintTest, TaintFindingsFlowThroughBaseline) {
  AnalyzeConfig config;
  config.run_symbols = true;
  config.apply_baseline = true;
  config.baseline_contents =
      "src/sim/b.cc:2: [determinism-taint] acknowledged during rollout\n";
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/sim/b.cc",
                  "namespace fx {\n"
                  "int Draw() { return rand(); }\n"
                  "}  // namespace fx\n"}},
      config);
  EXPECT_TRUE(OfRule(findings, "determinism-taint").empty());
  // The pass-1 call-site finding for the same line is separate and distinct.
  EXPECT_EQ(OfRule(findings, "banned-random").size(), 1u);
}

// --- Pass 4: lock discipline -------------------------------------------------

TEST(AnalyzeLockTest, UnlockedGuardedAccessIsFlaggedLockedOnesAreNot) {
  AnalyzeOptions options;
  options.run_symbols = true;
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("lock_tree")}, options);
  const std::vector<Finding> locks = OfRule(findings, "lock-discipline");
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_NE(locks[0].message.find("BumpWithoutLock"), std::string::npos);
  EXPECT_NE(locks[0].message.find("'counter_'"), std::string::npos);
  EXPECT_NE(locks[0].message.find("'mu_'"), std::string::npos);
}

TEST(AnalyzeLockTest, OutOfLineMethodsAreCheckedToo) {
  const std::vector<Finding> findings = Pass4({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Drain();\n"
      " private:\n"
      "  std::mutex mu_;  // guards: depth_\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "void Pool::Drain() { depth_ = 0; }\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> locks = OfRule(findings, "lock-discipline");
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_NE(locks[0].message.find("fx::Pool::Drain"), std::string::npos);
}

TEST(AnalyzeLockTest, WrongMutexDoesNotSatisfyTheGuard) {
  const std::vector<Finding> findings = Pass4({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  int Read() {\n"
      "    std::lock_guard<std::mutex> lock(other_mu_);\n"
      "    return depth_;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;  // guards: depth_\n"
      "  std::mutex other_mu_;  // guards: nothing here\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  EXPECT_EQ(OfRule(findings, "lock-discipline").size(), 1u);
}

// --- Pass 4: AnalyzePaths integration ---------------------------------------

TEST(AnalyzePathsTest, TestsDirectoriesAreNeverScanned) {
  AnalyzeOptions options;
  options.run_symbols = true;
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("exclude_tree")}, options);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file.find("/tests/"), std::string::npos) << f.file;
  }
  // The tests/ file is wall-to-wall banned calls; nothing may leak out.
  EXPECT_TRUE(OfRule(findings, "banned-random").empty());
}

TEST(AnalyzePathsTest, JobsSettingsAreByteDeterministic) {
  AnalyzeOptions serial;
  serial.run_symbols = true;
  serial.jobs = 1;
  AnalyzeOptions parallel = serial;
  parallel.jobs = 4;
  const std::vector<std::string> roots = {FixturePath("taint_tree"),
                                          FixturePath("lock_tree")};
  std::vector<std::string> dead1;
  std::vector<std::string> dead4;
  const std::vector<Finding> a = AnalyzePaths(roots, serial, &dead1);
  const std::vector<Finding> b = AnalyzePaths(roots, parallel, &dead4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].file, b[i].file);
    EXPECT_EQ(a[i].line, b[i].line);
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].message, b[i].message);
  }
  EXPECT_EQ(dead1, dead4);
  EXPECT_FALSE(a.empty());
}

TEST_F(AnalyzeGraphCacheTest, ConfigChangeInvalidatesTheCache) {
  const std::string waivers_path = ::testing::TempDir() + "/cache_waivers_test.txt";
  {
    std::ofstream out(waivers_path, std::ios::trunc);
    out << "fixture::ProbeLevel sanctioned while the probe rolls out\n";
  }
  AnalyzeOptions options;
  options.run_symbols = true;
  options.taint_waivers_file = waivers_path;
  options.graph_cache_file = CachePath();
  (void)AnalyzePaths({FixturePath("taint_tree")}, options);
  std::string header_before;
  {
    std::ifstream in(CachePath());
    std::getline(in, header_before);
  }
  // Editing the waiver list must change the cache key: the old graph may
  // not serve an analysis running under a different config.
  {
    std::ofstream out(waivers_path, std::ios::trunc);
    out << "# all waivers deleted\n";
  }
  const std::vector<Finding> after = AnalyzePaths({FixturePath("taint_tree")}, options);
  std::string header_after;
  {
    std::ifstream in(CachePath());
    std::getline(in, header_after);
  }
  EXPECT_NE(header_before, header_after);
  // And the re-run matches a fresh, cache-less analysis exactly.
  AnalyzeOptions no_cache = options;
  no_cache.graph_cache_file.clear();
  const std::vector<Finding> fresh = AnalyzePaths({FixturePath("taint_tree")}, no_cache);
  ASSERT_EQ(after.size(), fresh.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].message, fresh[i].message);
  }
  EXPECT_EQ(OfRule(after, "determinism-taint").size(), 1u);
  std::remove(waivers_path.c_str());
}

// --- Pass 5: control-flow graphs ---------------------------------------------

std::vector<Finding> Pass5(const std::vector<SourceFile>& sources,
                           const std::string& time_domains = "",
                           std::vector<std::string>* edges = nullptr) {
  AnalyzeConfig config;
  config.run_flow = true;
  config.time_domains_contents = time_domains;
  return AnalyzeSources(sources, config, nullptr, edges);
}

const CfgEvent* FindEvent(const Cfg& cfg, CfgEventKind kind) {
  for (const CfgNode& node : cfg.nodes) {
    for (const CfgEvent& ev : node.events) {
      if (ev.kind == kind) {
        return &ev;
      }
    }
  }
  return nullptr;
}

bool ExitReachable(const Cfg& cfg) {
  std::vector<bool> seen(cfg.nodes.size(), false);
  std::vector<size_t> work = {Cfg::kEntry};
  seen[Cfg::kEntry] = true;
  while (!work.empty()) {
    const size_t cur = work.back();
    work.pop_back();
    for (const size_t s : cfg.nodes[cur].succ) {
      if (!seen[s]) {
        seen[s] = true;
        work.push_back(s);
      }
    }
  }
  return seen[Cfg::kExit];
}

TEST(AnalyzeCfgTest, DoWhileBuildsABackEdgeAndStillReachesExit) {
  const SourceFile src{"src/util/c.cc",
                       "namespace fx {\n"
                       "int Count(int n) {\n"
                       "  int total = 0;\n"
                       "  do {\n"
                       "    total += n;\n"
                       "    --n;\n"
                       "  } while (n > 0);\n"
                       "  return total;\n"
                       "}\n"
                       "}  // namespace fx\n"};
  const SymbolIndex index = IndexOf({src});
  const FunctionSymbol* fn = FindDef(index, "fx::Count");
  ASSERT_NE(fn, nullptr);
  const Cfg cfg = BuildCfg(Lex(src), *fn);
  bool back_edge = false;
  for (size_t v = 2; v < cfg.nodes.size(); ++v) {
    for (const size_t s : cfg.nodes[v].succ) {
      back_edge = back_edge || (s < v && s != Cfg::kEntry && s != Cfg::kExit);
    }
  }
  EXPECT_TRUE(back_edge) << "do/while must loop back into its body";
  EXPECT_TRUE(ExitReachable(cfg));
}

TEST(AnalyzeCfgTest, SwitchWithEarlyReturnsKeepsTheExitReachable) {
  const SourceFile src{"src/util/c.cc",
                       "namespace fx {\n"
                       "int Pick(int m) {\n"
                       "  switch (m) {\n"
                       "    case 0:\n"
                       "      return 1;\n"
                       "    case 1:\n"
                       "      m += 2;\n"
                       "      break;\n"
                       "    default:\n"
                       "      if (m > 4) {\n"
                       "        return 9;\n"
                       "      }\n"
                       "  }\n"
                       "  return m;\n"
                       "}\n"
                       "}  // namespace fx\n"};
  const SymbolIndex index = IndexOf({src});
  const FunctionSymbol* fn = FindDef(index, "fx::Pick");
  ASSERT_NE(fn, nullptr);
  const Cfg cfg = BuildCfg(Lex(src), *fn);
  EXPECT_TRUE(ExitReachable(cfg));
  EXPECT_GE(cfg.nodes.size(), 6u) << "cases and joins need their own blocks";
}

TEST(AnalyzeCfgTest, StoredLambdasAreDeferredCvPredicatesAreNot) {
  const SourceFile stored{"src/util/l.cc",
                          "namespace fx {\n"
                          "void Post(std::function<void()>& cb) {\n"
                          "  cb = [] { Work(); };\n"
                          "}\n"
                          "}  // namespace fx\n"};
  const SymbolIndex i1 = IndexOf({stored});
  ASSERT_NE(FindDef(i1, "fx::Post"), nullptr);
  const Cfg c1 = BuildCfg(Lex(stored), *FindDef(i1, "fx::Post"));
  ASSERT_EQ(c1.lambdas.size(), 1u);
  const CfgEvent* stored_ev = FindEvent(c1, CfgEventKind::kLambda);
  ASSERT_NE(stored_ev, nullptr);
  EXPECT_TRUE(stored_ev->deferred);

  const SourceFile predicate{
      "src/util/l.cc",
      "namespace fx {\n"
      "void Wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk) {\n"
      "  cv.wait(lk, [] { return Ready(); });\n"
      "}\n"
      "}  // namespace fx\n"};
  const SymbolIndex i2 = IndexOf({predicate});
  ASSERT_NE(FindDef(i2, "fx::Wait"), nullptr);
  const Cfg c2 = BuildCfg(Lex(predicate), *FindDef(i2, "fx::Wait"));
  ASSERT_EQ(c2.lambdas.size(), 1u);
  const CfgEvent* pred_ev = FindEvent(c2, CfgEventKind::kLambda);
  ASSERT_NE(pred_ev, nullptr);
  EXPECT_FALSE(pred_ev->deferred) << "a cv-wait predicate runs at the wait site";
}

// --- Pass 5: flow-sensitive lock discipline ----------------------------------

TEST(AnalyzeFlowLockTest, GuardScopeEndsAtTheBranchNotTheFunction) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Bump(bool fast) {\n"
      "    if (fast) {\n"
      "      std::lock_guard<std::mutex> lock(mu_);\n"
      "      depth_ = 1;\n"
      "    }\n"
      "    depth_ = 2;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> locks = OfRule(findings, "lock-discipline");
  // Inside the guard's scope the access is clean; past the brace it is not.
  EXPECT_EQ(LinesOf(locks), (std::vector<size_t>{9}));
}

TEST(AnalyzeFlowLockTest, EarlyUnlockIsVisibleOnTheReturnPath) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  int Get(bool quick) {\n"
      "    std::unique_lock<std::mutex> lock(mu_);\n"
      "    if (quick) {\n"
      "      return depth_;\n"
      "    }\n"
      "    lock.unlock();\n"
      "    return depth_;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> locks = OfRule(findings, "lock-discipline");
  // The early return still holds the guard; the second return does not.
  EXPECT_EQ(LinesOf(locks), (std::vector<size_t>{10}));
}

TEST(AnalyzeFlowLockTest, SwitchFallthroughCarriesTheUnlockedState) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Set(int m) {\n"
      "    mu_.lock();\n"
      "    switch (m) {\n"
      "      case 0:\n"
      "        mu_.unlock();\n"
      "      case 1:\n"
      "        depth_ = 1;\n"
      "        break;\n"
      "    }\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  // Case 0 falls through after unlocking, so the case-1 access is reached on
  // a path where the mutex is not held. Without the fallthrough edge this is
  // a false negative.
  EXPECT_EQ(LinesOf(OfRule(findings, "lock-discipline")),
            (std::vector<size_t>{10}));
}

TEST(AnalyzeFlowLockTest, DoWhileFirstIterationRunsBeforeTheLock) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Drain() {\n"
      "    do {\n"
      "      depth_ = 0;\n"
      "      mu_.lock();\n"
      "    } while (depth_ > 0);\n"
      "    mu_.unlock();\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  // The loop condition runs with the lock held (clean); the body's access is
  // unprotected on the first iteration (the must-hold join with the back
  // edge is the empty set).
  EXPECT_EQ(LinesOf(OfRule(findings, "lock-discipline")),
            (std::vector<size_t>{6}));
}

TEST(AnalyzeFlowLockTest, DeferredLambdasStartWithAnEmptyLockset) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Spawn() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    cb_ = [this] { depth_ = 1; };\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::function<void()> cb_;\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  // The stored lambda runs later, after the guard is gone — holding mu_ at
  // the creation point protects nothing.
  EXPECT_EQ(LinesOf(OfRule(findings, "lock-discipline")),
            (std::vector<size_t>{6}));
}

TEST(AnalyzeFlowLockTest, CvWaitPredicateInheritsTheCreationLockset) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void WaitIdle() {\n"
      "    std::unique_lock<std::mutex> lock(mu_);\n"
      "    cv_.wait(lock, [this] { return depth_ == 0; });\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::condition_variable cv_;\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  // The predicate runs at the wait site with mu_ held, and waiting on the
  // guard's own mutex alone is the primitive working as designed.
  EXPECT_TRUE(OfRule(findings, "lock-discipline").empty());
  EXPECT_TRUE(OfRule(findings, "blocking-under-lock").empty());
}

// --- Pass 5: lock order + blocking-under-lock --------------------------------

TEST(AnalyzeLockOrderTest, OppositeNestingAcrossTusIsACycle) {
  const std::vector<Finding> findings = Pass5({
      SourceFile{"src/util/a.cc",
                 "namespace fx {\n"
                 "std::mutex g_a;\n"
                 "std::mutex g_b;\n"
                 "void Left() {\n"
                 "  std::scoped_lock la(g_a);\n"
                 "  std::scoped_lock lb(g_b);\n"
                 "}\n"
                 "}  // namespace fx\n"},
      SourceFile{"src/util/b.cc",
                 "namespace fx {\n"
                 "void Right() {\n"
                 "  std::scoped_lock lb(g_b);\n"
                 "  std::scoped_lock la(g_a);\n"
                 "}\n"
                 "}  // namespace fx\n"},
  });
  const std::vector<Finding> order = OfRule(findings, "lock-order");
  ASSERT_EQ(order.size(), 1u);
  EXPECT_NE(order[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(order[0].message.find("g_a"), std::string::npos);
  EXPECT_NE(order[0].message.find("g_b"), std::string::npos);
  EXPECT_NE(order[0].message.find("observed"), std::string::npos);
}

TEST(AnalyzeLockOrderTest, ConsistentNestingRendersOneObservedEdge) {
  std::vector<std::string> edges;
  const std::vector<Finding> findings = Pass5(
      {SourceFile{"src/util/a.cc",
                  "namespace fx {\n"
                  "std::mutex g_a;\n"
                  "std::mutex g_b;\n"
                  "void Left() {\n"
                  "  std::scoped_lock la(g_a);\n"
                  "  std::scoped_lock lb(g_b);\n"
                  "}\n"
                  "void Also() {\n"
                  "  std::scoped_lock la(g_a);\n"
                  "  std::scoped_lock lb(g_b);\n"
                  "}\n"
                  "}  // namespace fx\n"}},
      "", &edges);
  EXPECT_TRUE(OfRule(findings, "lock-order").empty());
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_NE(edges[0].find("g_a"), std::string::npos);
  EXPECT_NE(edges[0].find("-> "), std::string::npos);
  EXPECT_NE(edges[0].find("(observed at src/util/a.cc:6)"), std::string::npos);
}

TEST(AnalyzeLockOrderTest, TransitiveReacquisitionIsASelfEdge) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Outer() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    Inner();\n"
      "  }\n"
      "  void Inner() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "};\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> order = OfRule(findings, "lock-order");
  ASSERT_EQ(order.size(), 1u);
  EXPECT_NE(order[0].message.find("re-acquisition"), std::string::npos);
  EXPECT_NE(order[0].message.find("fx::Pool::mu_"), std::string::npos);
}

TEST(AnalyzeLockOrderTest, AcquiredAfterDeclaresTheEdgeThatClosesACycle) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Bad() {\n"
      "    std::lock_guard<std::mutex> g(cache_mu_);\n"
      "    std::lock_guard<std::mutex> h(pool_mu_);\n"
      "  }\n"
      " private:\n"
      "  std::mutex pool_mu_;\n"
      "  std::mutex cache_mu_ WEBCC_ACQUIRED_AFTER(pool_mu_);\n"
      "};\n"
      "}  // namespace fx\n"}});
  // The annotation pins pool_mu_ -> cache_mu_; observing the opposite
  // nesting completes the cycle even though no code path ever runs both.
  const std::vector<Finding> order = OfRule(findings, "lock-order");
  ASSERT_EQ(order.size(), 1u);
  EXPECT_NE(order[0].message.find("declared"), std::string::npos);
  EXPECT_NE(order[0].message.find("observed"), std::string::npos);
}

TEST(AnalyzeLockOrderTest, DeclaredEdgeAloneIsNoFinding) {
  std::vector<std::string> edges;
  const std::vector<Finding> findings = Pass5(
      {SourceFile{"src/util/p.cc",
                  "namespace fx {\n"
                  "class Pool {\n"
                  " public:\n"
                  "  void Fine() {\n"
                  "    std::lock_guard<std::mutex> g(pool_mu_);\n"
                  "    std::lock_guard<std::mutex> h(cache_mu_);\n"
                  "  }\n"
                  " private:\n"
                  "  std::mutex pool_mu_;\n"
                  "  std::mutex cache_mu_ WEBCC_ACQUIRED_AFTER(pool_mu_);\n"
                  "};\n"
                  "}  // namespace fx\n"}},
      "", &edges);
  EXPECT_TRUE(OfRule(findings, "lock-order").empty());
  // Declared and observed agree, so the graph has the one edge twice — once
  // per provenance — collapsed to the first insertion.
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_NE(edges[0].find("fx::Pool::pool_mu_ -> fx::Pool::cache_mu_"),
            std::string::npos);
}

TEST(AnalyzeBlockingTest, SleepUnderLockIsFlaggedOutsideIsNot) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Nap() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    SleepNanos(5);\n"
      "  }\n"
      "  void FreeNap() {\n"
      "    SleepNanos(5);\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "};\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> blocking = OfRule(findings, "blocking-under-lock");
  EXPECT_EQ(LinesOf(blocking), (std::vector<size_t>{6}));
  EXPECT_NE(blocking[0].message.find("'SleepNanos'"), std::string::npos);
}

TEST(AnalyzeBlockingTest, TransitiveBlockingReportsTheCallChain) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Outer() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    Helper();\n"
      "  }\n"
      "  void Helper() {\n"
      "    worker_.join();\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::thread worker_;\n"
      "};\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> blocking = OfRule(findings, "blocking-under-lock");
  ASSERT_EQ(blocking.size(), 1u);
  EXPECT_EQ(blocking[0].line, 6u);
  EXPECT_NE(blocking[0].message.find("fx::Pool::Outer -> fx::Pool::Helper"),
            std::string::npos);
  EXPECT_NE(blocking[0].message.find("reaches 'join'"), std::string::npos);
}

TEST(AnalyzeBlockingTest, CvWaitWithASecondLockHeldIsFlagged) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void WaitBoth() {\n"
      "    std::lock_guard<std::mutex> outer(other_mu_);\n"
      "    std::unique_lock<std::mutex> lock(mu_);\n"
      "    cv_.wait(lock);\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::mutex other_mu_;\n"
      "  std::condition_variable cv_;\n"
      "};\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> blocking = OfRule(findings, "blocking-under-lock");
  ASSERT_EQ(blocking.size(), 1u);
  EXPECT_NE(blocking[0].message.find("condition-variable wait"), std::string::npos);
  EXPECT_NE(blocking[0].message.find("other_mu_"), std::string::npos);
}

TEST(AnalyzeBlockingTest, DeferredLambdaBodiesDoNotTaintTheCreator) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Post() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    cb_ = [] { SleepNanos(1); };\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  std::function<void()> cb_;\n"
      "};\n"
      "}  // namespace fx\n"}});
  // Storing a lambda that sleeps is not sleeping: the body runs later,
  // without the creator's lock.
  EXPECT_TRUE(OfRule(findings, "blocking-under-lock").empty());
}

TEST(AnalyzeFlowLockTest, InlineWaiversSilencePass5Rules) {
  const std::vector<Finding> findings = Pass5({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Nap() {\n"
      "    std::lock_guard<std::mutex> lock(mu_);\n"
      "    SleepNanos(5);  // webcc-lint: allow(blocking-under-lock)\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "};\n"
      "}  // namespace fx\n"}});
  EXPECT_TRUE(OfRule(findings, "blocking-under-lock").empty());
}

// --- Pass 5: time domains ----------------------------------------------------

constexpr char kTimeDomains[] =
    "wall-fn NowNanos\n"
    "sim-fn Seconds\n"
    "sim-api RunUntil\n"
    "wall-api SleepNanos\n"
    "escape seconds\n"
    "converter fx::Clock::SimTimeFor\n";

TEST(AnalyzeTimeDomainTest, MixedChainIsFlaggedSeparateStatementsAreNot) {
  const std::vector<Finding> findings = Pass5(
      {SourceFile{"src/serve/t.cc",
                  "namespace fx {\n"
                  "int64_t Mix(int64_t now_ns) {\n"
                  "  SimTime deadline;\n"
                  "  int64_t twice_ns = now_ns * 2;\n"
                  "  SimTime still = deadline;\n"
                  "  return twice_ns + deadline;\n"
                  "}\n"
                  "}  // namespace fx\n"}},
      kTimeDomains);
  const std::vector<Finding> mixes = OfRule(findings, "time-domain");
  ASSERT_EQ(LinesOf(mixes), (std::vector<size_t>{6}));
  EXPECT_NE(mixes[0].message.find("'twice_ns'"), std::string::npos);
  EXPECT_NE(mixes[0].message.find("'deadline'"), std::string::npos);
}

TEST(AnalyzeTimeDomainTest, EscapeCallsStripTheUnit) {
  const std::vector<Finding> findings = Pass5(
      {SourceFile{"src/serve/t.cc",
                  "namespace fx {\n"
                  "int64_t Scale(int64_t now_ns) {\n"
                  "  SimTime deadline;\n"
                  "  return now_ns + deadline.seconds() * 1000;\n"
                  "}\n"
                  "}  // namespace fx\n"}},
      kTimeDomains);
  EXPECT_TRUE(OfRule(findings, "time-domain").empty());
}

TEST(AnalyzeTimeDomainTest, WallArgumentToSimApiIsFlagged) {
  const std::vector<Finding> findings = Pass5(
      {SourceFile{"src/serve/t.cc",
                  "namespace fx {\n"
                  "void Drive(int64_t stop_ns) {\n"
                  "  RunUntil(Seconds(5));\n"
                  "  RunUntil(stop_ns);\n"
                  "}\n"
                  "}  // namespace fx\n"}},
      kTimeDomains);
  const std::vector<Finding> mixes = OfRule(findings, "time-domain");
  ASSERT_EQ(LinesOf(mixes), (std::vector<size_t>{4}));
  EXPECT_NE(mixes[0].message.find("sim-domain API 'RunUntil'"), std::string::npos);
}

TEST(AnalyzeTimeDomainTest, SimArgumentToWallApiIsFlagged) {
  const std::vector<Finding> findings = Pass5(
      {SourceFile{"src/serve/t.cc",
                  "namespace fx {\n"
                  "void Pace(int64_t gap_ns) {\n"
                  "  SimTime deadline;\n"
                  "  SleepNanos(gap_ns);\n"
                  "  SleepNanos(deadline);\n"
                  "}\n"
                  "}  // namespace fx\n"}},
      kTimeDomains);
  const std::vector<Finding> mixes = OfRule(findings, "time-domain");
  ASSERT_EQ(LinesOf(mixes), (std::vector<size_t>{5}));
  EXPECT_NE(mixes[0].message.find("wall-domain API 'SleepNanos'"), std::string::npos);
}

TEST(AnalyzeTimeDomainTest, ConvertersAreSanctionedAtBothEnds) {
  const std::vector<Finding> findings = Pass5(
      {SourceFile{"src/serve/t.cc",
                  "namespace fx {\n"
                  "class Clock {\n"
                  " public:\n"
                  "  SimTime SimTimeFor(int64_t t_ns);\n"
                  "};\n"
                  "SimTime Clock::SimTimeFor(int64_t t_ns) {\n"
                  "  SimTime base;\n"
                  "  return base + t_ns;\n"
                  "}\n"
                  "void Use(Clock& clock, int64_t now_ns) {\n"
                  "  RunUntil(clock.SimTimeFor(now_ns));\n"
                  "}\n"
                  "}  // namespace fx\n"}},
      kTimeDomains);
  // The converter's own body mixes by definition, and its call sites hand a
  // wall value to a sim API on purpose — both are the sanctioned bridge.
  EXPECT_TRUE(OfRule(findings, "time-domain").empty());
}

TEST(AnalyzeTimeDomainTest, MalformedConfigLinesAreConfigFindings) {
  const std::vector<Finding> findings =
      Pass5({SourceFile{"src/serve/t.cc", "int x = 0;\n"}},
            "wall-fn\n"
            "frob NowNanos\n"
            "sim-fn Seconds\n");
  const std::vector<Finding> config = OfRule(findings, "time-domain-config");
  ASSERT_EQ(config.size(), 2u);
  EXPECT_EQ(config[0].line, 1u);
  EXPECT_EQ(config[1].line, 2u);
  EXPECT_NE(config[1].message.find("unknown directive 'frob'"), std::string::npos);
}

// --- Pass 5: dead-symbol gating ----------------------------------------------

std::vector<Finding> DeadGated(const std::vector<SourceFile>& sources,
                               const std::string& waivers) {
  AnalyzeConfig config;
  config.run_symbols = true;
  config.gate_dead_symbols = true;
  config.dead_waivers_contents = waivers;
  return AnalyzeSources(sources, config);
}

const SourceFile kDeadTree{"src/util/d.cc",
                           "namespace fx {\n"
                           "int Used() { return 2; }\n"
                           "int Unused() { return 1; }\n"
                           "}  // namespace fx\n"
                           "int main() { return fx::Used(); }\n"};

TEST(AnalyzeDeadSymbolTest, UnreferencedDefinitionsGateWhenEnabled) {
  const std::vector<Finding> findings = DeadGated({kDeadTree}, "");
  const std::vector<Finding> dead = OfRule(findings, "dead-symbol");
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].line, 3u);
  EXPECT_NE(dead[0].message.find("'fx::Unused'"), std::string::npos);
}

TEST(AnalyzeDeadSymbolTest, JustifiedWaiversSilenceTheGate) {
  const std::vector<Finding> findings = DeadGated(
      {kDeadTree},
      "fx::Unused exercised only from the unit tests,\n"
      "    which the scan unit excludes by design\n");
  EXPECT_TRUE(OfRule(findings, "dead-symbol").empty());
  EXPECT_TRUE(OfRule(findings, "stale-dead-waiver").empty());
  EXPECT_TRUE(OfRule(findings, "dead-config").empty());
}

TEST(AnalyzeDeadSymbolTest, StaleWaiversRatchetLikeTheBaseline) {
  const std::vector<Finding> findings =
      DeadGated({kDeadTree}, "fx::Gone deleted two PRs ago\n");
  EXPECT_EQ(OfRule(findings, "dead-symbol").size(), 1u);
  const std::vector<Finding> stale = OfRule(findings, "stale-dead-waiver");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].message.find("'fx::Gone'"), std::string::npos);
}

TEST(AnalyzeDeadSymbolTest, WaiversWithoutJustificationAreRejected) {
  const std::vector<Finding> findings = DeadGated({kDeadTree}, "fx::Unused\n");
  // The malformed waiver is skipped, so the symbol still gates.
  EXPECT_EQ(OfRule(findings, "dead-config").size(), 1u);
  EXPECT_EQ(OfRule(findings, "dead-symbol").size(), 1u);
}

TEST(AnalyzeDeadSymbolTest, StaleDeadWaiversCannotBeBaselined) {
  AnalyzeConfig config;
  config.run_symbols = true;
  config.gate_dead_symbols = true;
  config.dead_waivers_contents = "fx::Gone deleted two PRs ago\n";
  config.apply_baseline = true;
  config.baseline_contents =
      "tools/analyze/dead_waivers.txt:1: [stale-dead-waiver] muting the ratchet\n";
  const std::vector<Finding> findings = AnalyzeSources({kDeadTree}, config);
  EXPECT_EQ(OfRule(findings, "stale-dead-waiver").size(), 1u);
}

// --- Pass 5: determinism + cache ---------------------------------------------

TEST(AnalyzePathsTest, FlowPassStaysByteDeterministicAcrossJobs) {
  const std::string td_path = ::testing::TempDir() + "/flow_time_domains.txt";
  {
    std::ofstream out(td_path, std::ios::trunc);
    out << "wall-fn NowNanos\nsim-fn Seconds\n";
  }
  AnalyzeOptions serial;
  serial.run_symbols = true;
  serial.run_flow = true;
  serial.time_domains_file = td_path;
  serial.jobs = 1;
  AnalyzeOptions parallel = serial;
  parallel.jobs = 8;
  const std::vector<std::string> roots = {FixturePath("taint_tree"),
                                          FixturePath("lock_tree")};
  std::vector<std::string> edges1;
  std::vector<std::string> edges8;
  const std::vector<Finding> a = AnalyzePaths(roots, serial, nullptr, &edges1);
  const std::vector<Finding> b = AnalyzePaths(roots, parallel, nullptr, &edges8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].file, b[i].file);
    EXPECT_EQ(a[i].line, b[i].line);
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].message, b[i].message);
  }
  EXPECT_EQ(edges1, edges8);
  EXPECT_FALSE(a.empty());
  std::remove(td_path.c_str());
}

TEST_F(AnalyzeGraphCacheTest, TimeDomainEditsInvalidateTheCache) {
  const std::string td_path = ::testing::TempDir() + "/cache_time_domains.txt";
  {
    std::ofstream out(td_path, std::ios::trunc);
    out << "wall-fn NowNanos\n";
  }
  AnalyzeOptions options;
  options.run_flow = true;
  options.time_domains_file = td_path;
  options.graph_cache_file = CachePath();
  (void)AnalyzePaths({FixturePath("lock_tree")}, options);
  std::string header_before;
  {
    std::ifstream in(CachePath());
    std::getline(in, header_before);
  }
  EXPECT_EQ(header_before.rfind("# webcc-analyze graph cache v3 ", 0), 0u)
      << header_before;
  {
    std::ofstream out(td_path, std::ios::trunc);
    out << "wall-fn NowNanos\nwall-api SleepNanos\n";
  }
  (void)AnalyzePaths({FixturePath("lock_tree")}, options);
  std::string header_after;
  {
    std::ifstream in(CachePath());
    std::getline(in, header_after);
  }
  EXPECT_NE(header_before, header_after);
  std::remove(td_path.c_str());
}

// --- Whole-tree gate (mirrors the lint.analyze.tree ctest) ------------------

TEST(AnalyzeTreeTest, LayerSpecParsesCleanly) {
  std::vector<Finding> findings;
  const LayerSpec spec =
      ParseLayerSpec("layers.txt", ReadFileOrDie(WEBCC_ANALYZE_LAYERS_FILE), &findings);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(spec.tiers.size(), 5u);
  ASSERT_EQ(spec.tier_of.count("util"), 1u);
  ASSERT_EQ(spec.tier_of.count("chaos"), 1u);
  EXPECT_LT(spec.tier_of.at("util"), spec.tier_of.at("sim"));
  EXPECT_LT(spec.tier_of.at("sim"), spec.tier_of.at("cache"));
  EXPECT_EQ(spec.tier_of.at("cache"), spec.tier_of.at("origin"));
  EXPECT_LT(spec.tier_of.at("core"), spec.tier_of.at("chaos"));
}

TEST(AnalyzeTreeTest, ShippedTimeDomainConfigParsesCleanly) {
  std::vector<Finding> findings;
  const TimeDomainConfig config = ParseTimeDomainConfig(
      "time_domains.txt", ReadFileOrDie(WEBCC_ANALYZE_TIME_DOMAINS_FILE), &findings);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(config.wall_fns.count("NowNanos"), 1u);
  EXPECT_EQ(config.sim_fns.count("Seconds"), 1u);
  EXPECT_EQ(config.wall_apis.count("SleepNanos"), 1u);
  ASSERT_FALSE(config.converters.empty());
  EXPECT_EQ(config.converters.front(), "webcc::ServeFrontend::SimTimeFor");
}

TEST(AnalyzeTreeTest, ShippedDeadWaiversAllCarryJustifications) {
  std::vector<Finding> findings;
  const std::vector<DeadWaiver> waivers = ParseDeadWaivers(
      "dead_waivers.txt", ReadFileOrDie(WEBCC_ANALYZE_DEAD_WAIVERS_FILE), &findings);
  EXPECT_TRUE(findings.empty());
  EXPECT_FALSE(waivers.empty());
  for (const DeadWaiver& w : waivers) {
    EXPECT_FALSE(w.justification.empty()) << w.function;
  }
}

}  // namespace
}  // namespace webcc::analyze
