// Tests for webcc-analyze (tools/analyze/): lexer, token rules, layer DAG
// enforcement, baseline mechanism, SARIF output, and the include-graph
// cache. The on-disk fixtures live in WEBCC_ANALYZE_FIXTURE_DIR; the real
// layer spec comes from WEBCC_ANALYZE_LAYERS_FILE so the synthetic layer
// tree is checked against the DAG the tree itself is held to.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyze/analyze.h"
#include "tools/analyze/baseline.h"
#include "tools/analyze/callgraph.h"
#include "tools/analyze/layers.h"
#include "tools/analyze/lexer.h"
#include "tools/analyze/rules.h"
#include "tools/analyze/sarif.h"
#include "tools/analyze/symbols.h"
#include "tools/analyze/taint.h"

namespace webcc::analyze {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(WEBCC_ANALYZE_FIXTURE_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> RulesOnly(const std::string& path, const std::string& contents) {
  return AnalyzeSources({SourceFile{path, contents}}, AnalyzeConfig{});
}

std::vector<Finding> OfRule(const std::vector<Finding>& findings, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      out.push_back(f);
    }
  }
  return out;
}

std::vector<size_t> LinesOf(const std::vector<Finding>& findings) {
  std::vector<size_t> lines;
  for (const Finding& f : findings) {
    lines.push_back(f.line);
  }
  return lines;
}

// --- Lexer ------------------------------------------------------------------

TEST(AnalyzeLexerTest, TokenizesIdentifiersNumbersAndPunctuation) {
  const LexedFile lexed = Lex({"a.cc", "int x = a->b + 0x1F;"});
  std::vector<std::string> texts;
  for (const Token& t : lexed.tokens) {
    texts.push_back(t.text);
  }
  EXPECT_EQ(texts,
            (std::vector<std::string>{"int", "x", "=", "a", "->", "b", "+", "0x1F", ";"}));
  EXPECT_EQ(lexed.tokens[4].kind, TokenKind::kPunct);
  EXPECT_EQ(lexed.tokens[7].kind, TokenKind::kNumber);
}

TEST(AnalyzeLexerTest, RawStringWithCustomDelimiterIsOneLiteral) {
  const std::string src =
      "const char* s = R\"trap(line one rand(\n"
      "inner )\" quote std::mt19937\n"
      ")trap\"; int after = 1;\n";
  const LexedFile lexed = Lex({"a.cc", src});
  // Exactly one string token spanning three lines, starting at line 1.
  size_t strings = 0;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kString) {
      ++strings;
      EXPECT_EQ(t.line, 1u);
      EXPECT_NE(t.text.find("std::mt19937"), std::string::npos);
    }
  }
  EXPECT_EQ(strings, 1u);
  // The literal body is blanked out of the code view on every line.
  EXPECT_EQ(lexed.code_lines[0].find("rand"), std::string::npos);
  EXPECT_EQ(lexed.code_lines[1].find("mt19937"), std::string::npos);
  EXPECT_NE(lexed.code_lines[2].find("after"), std::string::npos);
}

TEST(AnalyzeLexerTest, BackslashNewlineSplicesIdentifiers) {
  const LexedFile lexed = Lex({"a.cc", "ra\\\nnd();"});
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(lexed.tokens[0].text, "rand");
  EXPECT_EQ(lexed.tokens[0].line, 1u);
}

TEST(AnalyzeLexerTest, LineCommentContinuesAcrossBackslashNewline) {
  const LexedFile lexed = Lex({"a.cc", "// comment \\\nstill comment\nint x;"});
  // "still comment" belongs to the comment; only "int x;" is code.
  std::vector<std::string> code_texts;
  for (const Token& t : lexed.tokens) {
    if (t.kind != TokenKind::kComment) {
      code_texts.push_back(t.text);
    }
  }
  EXPECT_EQ(code_texts, (std::vector<std::string>{"int", "x", ";"}));
}

TEST(AnalyzeLexerTest, BlockCommentsDoNotNest) {
  const LexedFile lexed = Lex({"a.cc", "/* outer /* inner */ int x;"});
  std::vector<std::string> code_texts;
  for (const Token& t : lexed.tokens) {
    if (t.kind != TokenKind::kComment) {
      code_texts.push_back(t.text);
    }
  }
  // The first */ closed the comment, per the language.
  EXPECT_EQ(code_texts, (std::vector<std::string>{"int", "x", ";"}));
}

TEST(AnalyzeLexerTest, ExtractsQuotedIncludesOnly) {
  const std::string src =
      "#include \"src/util/base.h\"\n"
      "#include <vector>\n"
      "  #  include \"src/sim/engine.h\"\n"
      "// #include \"src/not/real.h\"\n";
  const LexedFile lexed = Lex({"a.cc", src});
  EXPECT_EQ(lexed.includes,
            (std::vector<std::string>{"src/util/base.h", "src/sim/engine.h"}));
  EXPECT_EQ(lexed.include_lines, (std::vector<size_t>{1, 3}));
}

TEST(AnalyzeLexerTest, PreprocessorTokensAreFlagged) {
  const LexedFile lexed = Lex({"a.cc", "#define N 3\nint y = N;"});
  bool saw_define = false;
  for (const Token& t : lexed.tokens) {
    if (t.text == "define") {
      saw_define = true;
      EXPECT_TRUE(t.in_preprocessor);
    }
    if (t.text == "y") {
      EXPECT_FALSE(t.in_preprocessor);
    }
  }
  EXPECT_TRUE(saw_define);
}

TEST(AnalyzeLexerTest, EncodingPrefixedStringsAreLiterals) {
  const LexedFile lexed = Lex({"a.cc", "auto* s = u8\"rand( inside\"; int z;"});
  std::vector<std::string> idents;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      idents.push_back(t.text);
    }
  }
  // u8 is consumed as the literal prefix, and rand stays inside the string.
  EXPECT_EQ(idents, (std::vector<std::string>{"auto", "s", "int", "z"}));
}

TEST(AnalyzeLexerTest, UnterminatedConstructsCloseAtEndOfFile) {
  const LexedFile a = Lex({"a.cc", "/* never closed\nint x;"});
  EXPECT_EQ(a.tokens.size(), 1u);  // one comment token, no code
  const LexedFile b = Lex({"b.cc", "R\"(open forever\nstill open"});
  ASSERT_FALSE(b.tokens.empty());
  EXPECT_EQ(b.tokens.back().kind, TokenKind::kString);
}

// --- Token rules ------------------------------------------------------------

TEST(AnalyzeRulesTest, StdDistributionFlaggedEvenInRngItself) {
  const std::string src = "std::uniform_int_distribution<int> d(0, 9);\n";
  const std::vector<Finding> in_rng = RulesOnly("src/util/rng.cc", src);
  EXPECT_EQ(OfRule(in_rng, "std-distribution").size(), 1u);
  // And banned-random does NOT double-report the same name.
  EXPECT_TRUE(OfRule(in_rng, "banned-random").empty());
}

TEST(AnalyzeRulesTest, DiscardedParseResultIsStatementInitialOnly) {
  const std::string src =
      "bool ParseThing(int*);\n"
      "void F(int* v) {\n"
      "  ParseThing(v);\n"               // flagged
      "  if (ParseThing(v)) { }\n"       // checked
      "  bool ok = ParseThing(v);\n"     // assigned
      "  (void)ok;\n"
      "  return;\n"
      "}\n";
  const std::vector<Finding> findings =
      OfRule(RulesOnly("src/core/f.cc", src), "discarded-parse-result");
  EXPECT_EQ(LinesOf(findings), (std::vector<size_t>{3}));
}

TEST(AnalyzeRulesTest, UnannotatedMutexAppliesTreeWide) {
  // Pass 4's lock-discipline rule made the annotation contract enforceable,
  // so the unannotated-mutex check grew from its util/thread_pool pilot
  // scope to every scanned file.
  const std::string src =
      "#include <mutex>\n"
      "class P {\n"
      "  std::mutex mu_;\n"
      "};\n";
  EXPECT_EQ(OfRule(RulesOnly("src/util/thread_pool.h", src), "unannotated-mutex").size(),
            1u);
  EXPECT_EQ(OfRule(RulesOnly("src/cache/proxy.h", src), "unannotated-mutex").size(), 1u);
  EXPECT_EQ(OfRule(RulesOnly("bench/runner.h", src), "unannotated-mutex").size(), 1u);
}

TEST(AnalyzeRulesTest, GuardsCommentSatisfiesMutexRule) {
  const std::string src =
      "class P {\n"
      "  std::mutex mu_;  // guards: tasks_\n"
      "};\n";
  EXPECT_TRUE(
      OfRule(RulesOnly("src/util/thread_pool.h", src), "unannotated-mutex").empty());
}

TEST(AnalyzeRulesTest, InlineWaiverSuppressesNewRules) {
  const std::string src =
      "std::uniform_int_distribution<int> d(0, 9);  "
      "// webcc-lint: allow(std-distribution) comparing against libstdc++\n";
  EXPECT_TRUE(OfRule(RulesOnly("src/core/f.cc", src), "std-distribution").empty());
}

TEST(AnalyzeRulesTest, SplicedBannedCallIsStillCaught) {
  // The old line-regex scanner could not see a call split by a
  // backslash-newline; the token engine must.
  const std::string src = "int f() { return ra\\\nnd(); }\n";
  const std::vector<Finding> findings =
      OfRule(RulesOnly("src/core/f.cc", src), "banned-random");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1u);
}

// --- On-disk rule fixtures --------------------------------------------------

TEST(AnalyzeFixtureTest, RawStringTrapProducesZeroFindings) {
  // The old regex lint false-positived on every banned name inside the
  // multi-line raw string; the analyzer must report this file clean.
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("raw_string_trap.cc")}, AnalyzeOptions{});
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected finding(s)";
}

TEST(AnalyzeFixtureTest, BadDistributionFixtureFindsAllThree) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("bad_distribution.cc")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "std-distribution")),
            (std::vector<size_t>{11, 17, 18}));
  EXPECT_EQ(findings.size(), 3u);  // the allow() markers hold back banned-random
}

TEST(AnalyzeFixtureTest, BadParseDiscardFixtureFindsBoth) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("bad_parse_discard.cc")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "discarded-parse-result")),
            (std::vector<size_t>{13, 16}));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(AnalyzeFixtureTest, ThreadPoolFixtureFlagsOnlyNakedMutex) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("util/thread_pool_fixture.h")}, AnalyzeOptions{});
  EXPECT_EQ(LinesOf(OfRule(findings, "unannotated-mutex")), (std::vector<size_t>{12}));
  EXPECT_EQ(findings.size(), 1u);
}

// --- Layer pass -------------------------------------------------------------

AnalyzeOptions LayerOptions() {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  return options;
}

TEST(AnalyzeLayerTest, PlantedSimToCoreIncludeIsReported) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  const std::vector<Finding> violations = OfRule(findings, "layer-violation");
  bool planted = false;
  for (const Finding& f : violations) {
    if (f.file.find("src/sim/bad_uses_core.h") != std::string::npos) {
      planted = true;
      EXPECT_EQ(f.line, 7u);
      EXPECT_NE(f.message.find("src/core/metrics_like.h"), std::string::npos);
    }
  }
  EXPECT_TRUE(planted) << "sim -> core include was not reported";
}

TEST(AnalyzeLayerTest, SrcIncludingBenchIsReported) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  bool escape = false;
  for (const Finding& f : OfRule(findings, "layer-violation")) {
    if (f.file.find("uses_bench.h") != std::string::npos) {
      escape = true;
      EXPECT_EQ(f.line, 6u);
      EXPECT_NE(f.message.find("bench/"), std::string::npos);
    }
  }
  EXPECT_TRUE(escape) << "src -> bench include was not reported";
}

TEST(AnalyzeLayerTest, IncludeCycleIsReportedExactlyOnce) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  const std::vector<Finding> cycles = OfRule(findings, "layer-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("src/cache/cycle_a.h"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("src/cache/cycle_b.h"), std::string::npos);
}

TEST(AnalyzeLayerTest, LegalEdgesProduceNoOtherFindings) {
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("layer_tree")}, LayerOptions());
  // Exactly: planted sim->core, src->bench escape, one cycle. Downward and
  // same-module edges (sim->util, core->sim, cache->cache) are clean.
  EXPECT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.rule == "layer-violation" || f.rule == "layer-cycle") << f.rule;
  }
}

TEST(AnalyzeLayerTest, SameTierCrossModuleIncludeIsAllowed) {
  const std::string spec = "util\ncache origin http\n";
  std::vector<Finding> findings;
  const LayerSpec parsed = ParseLayerSpec("layers.txt", spec, &findings);
  const std::vector<LexedFile> files = {
      Lex({"src/cache/a.h", "#include \"src/origin/b.h\"\n"}),
      Lex({"src/origin/b.h", "#include \"src/util/c.h\"\n"}),
      Lex({"src/util/c.h", ""}),
  };
  const std::vector<Finding> layer = CheckLayers(parsed, files);
  EXPECT_TRUE(findings.empty());
  EXPECT_TRUE(layer.empty());
}

TEST(AnalyzeLayerTest, UndeclaredModuleIsConfigError) {
  const std::string spec = "util\n";
  std::vector<Finding> findings;
  const LayerSpec parsed = ParseLayerSpec("layers.txt", spec, &findings);
  const std::vector<LexedFile> files = {
      Lex({"src/mystery/a.h", "#include \"src/util/c.h\"\n"}),
      Lex({"src/util/c.h", ""}),
  };
  const std::vector<Finding> layer = CheckLayers(parsed, files);
  ASSERT_EQ(layer.size(), 1u);
  EXPECT_EQ(layer[0].rule, "layer-config");
  EXPECT_NE(layer[0].message.find("mystery"), std::string::npos);
}

TEST(AnalyzeLayerTest, DuplicateModuleDeclarationIsConfigError) {
  std::vector<Finding> findings;
  ParseLayerSpec("layers.txt", "util\nsim util\n", &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-config");
}

TEST(AnalyzeLayerTest, RepoRelativeCutsAtLastRootComponent) {
  EXPECT_EQ(RepoRelative("/root/repo/src/cache/policy.h"), "src/cache/policy.h");
  EXPECT_EQ(RepoRelative("tests/tools/analyze_fixtures/layer_tree/src/sim/a.h"),
            "src/sim/a.h");
  EXPECT_EQ(RepoRelative("bench/fig2.cc"), "bench/fig2.cc");
  EXPECT_EQ(RepoRelative("no/roots/here.h"), "no/roots/here.h");
}

// --- Baseline ---------------------------------------------------------------

AnalyzeConfig BaselineConfig(const std::string& baseline) {
  AnalyzeConfig config;
  config.apply_baseline = true;
  config.baseline_path = "tools/analyze/baseline.txt";
  config.baseline_contents = baseline;
  return config;
}

TEST(AnalyzeBaselineTest, ExactMatchSuppressesFinding) {
  const std::string src = "std::uniform_int_distribution<int> d(0, 9);\n";
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", src}},
      BaselineConfig("src/core/f.cc:1: [std-distribution] comparing against stdlib\n"));
  EXPECT_TRUE(findings.empty()) << findings[0].rule;
}

TEST(AnalyzeBaselineTest, StaleEntryIsAnError) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}},
      BaselineConfig("src/core/f.cc:1: [std-distribution] was fixed long ago\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stale-baseline");
  EXPECT_EQ(findings[0].line, 1u);  // points at the baseline line itself
}

TEST(AnalyzeBaselineTest, MissingJustificationIsAnError) {
  const std::vector<Finding> findings =
      AnalyzeSources({SourceFile{"src/core/f.cc", "int x = 0;\n"}},
                     BaselineConfig("src/core/f.cc:1: [std-distribution]\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "baseline-config");
}

TEST(AnalyzeBaselineTest, MalformedEntryIsAnError) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}}, BaselineConfig("not an entry\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "baseline-config");
}

TEST(AnalyzeBaselineTest, CommentsAndBlanksAreIgnored) {
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}},
      BaselineConfig("# header comment\n\n   # indented comment\n"));
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeBaselineTest, ConfigErrorsCannotBeBaselined) {
  // A stale-baseline error cannot itself be acknowledged away.
  const std::string baseline =
      "src/core/f.cc:1: [std-distribution] gone\n"
      "tools/analyze/baseline.txt:1: [stale-baseline] trying to mute the mute\n";
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/core/f.cc", "int x = 0;\n"}}, BaselineConfig(baseline));
  // Entry 1 is stale; entry 2 matches nothing either (stale-baseline findings
  // are exempt from matching), so both report stale.
  EXPECT_EQ(OfRule(findings, "stale-baseline").size(), 2u);
}

// --- SARIF ------------------------------------------------------------------

TEST(AnalyzeSarifTest, GoldenOutput) {
  const std::vector<Finding> findings = {
      Finding{"src/cache/alpha.cc", 12, "banned-random",
              "uses \"rand\" \\ here"},
      Finding{"src/core/sweep_runner.cc", 55, "determinism-taint",
              "'webcc::SweepRunner::SweepRunner' transitively reaches getenv() at "
              "src/util/thread_pool.cc:117; call chain: "
              "webcc::SweepRunner::SweepRunner -> webcc::ResolveJobs"},
      Finding{"tools/analyze/baseline.txt", 0, "stale-baseline",
              "entry matches nothing"},
  };
  EXPECT_EQ(RenderSarif(findings), ReadFileOrDie(FixturePath("golden.sarif")));
}

TEST(AnalyzeSarifTest, EmptyFindingsRenderEmptyArrays) {
  const std::string sarif = RenderSarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
}

TEST(AnalyzeSarifTest, PathsAreRepoRelativeUris) {
  const std::string sarif =
      RenderSarif({Finding{"/abs/checkout/src/sim/engine.cc", 3, "r", "m"}});
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/engine.cc\""), std::string::npos);
  EXPECT_EQ(sarif.find("/abs/checkout"), std::string::npos);
}

// --- Include-graph cache ----------------------------------------------------

class AnalyzeGraphCacheTest : public ::testing::Test {
 protected:
  std::string CachePath() const {
    return ::testing::TempDir() + "/webcc_analyze_graph_cache.txt";
  }
  void TearDown() override { std::remove(CachePath().c_str()); }
};

TEST_F(AnalyzeGraphCacheTest, WarmCacheReproducesFindingsExactly) {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  options.graph_cache_file = CachePath();
  const std::vector<Finding> cold =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  std::ifstream cache(CachePath());
  EXPECT_TRUE(cache.good()) << "cache file was not written";
  const std::vector<Finding> warm =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].file, warm[i].file);
    EXPECT_EQ(cold[i].line, warm[i].line);
    EXPECT_EQ(cold[i].rule, warm[i].rule);
    EXPECT_EQ(cold[i].message, warm[i].message);
  }
}

TEST_F(AnalyzeGraphCacheTest, CorruptCacheIsIgnoredNotTrusted) {
  AnalyzeOptions options;
  options.layers_file = WEBCC_ANALYZE_LAYERS_FILE;
  options.graph_cache_file = CachePath();
  const std::vector<Finding> reference =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  {
    std::ofstream out(CachePath(), std::ios::trunc);
    out << "# webcc-analyze graph cache v1\nF garbage\n";
  }
  const std::vector<Finding> after =
      AnalyzePaths({FixturePath("layer_tree")}, options);
  EXPECT_EQ(reference.size(), after.size());
}

// --- Pass 4: symbol index ----------------------------------------------------

SymbolIndex IndexOf(const std::vector<SourceFile>& sources) {
  std::vector<LexedFile> lexed;
  for (const SourceFile& s : sources) {
    lexed.push_back(Lex(s));
  }
  return BuildSymbolIndex(lexed);
}

const FunctionSymbol* FindDef(const SymbolIndex& index, const std::string& qualified) {
  for (const FunctionSymbol& fn : index.functions) {
    if (fn.qualified_name == qualified && fn.is_definition) {
      return &fn;
    }
  }
  return nullptr;
}

std::vector<Finding> Pass4(const std::vector<SourceFile>& sources,
                           const std::string& waivers = "") {
  AnalyzeConfig config;
  config.run_symbols = true;
  config.taint_waivers_contents = waivers;
  return AnalyzeSources(sources, config);
}

TEST(AnalyzeSymbolsTest, IndexesDefsDeclsAndOutOfLineMethods) {
  const SymbolIndex index = IndexOf({
      SourceFile{"src/util/w.h",
                 "namespace fx {\n"
                 "class Widget {\n"
                 " public:\n"
                 "  void Render();\n"
                 "  int size() const { return size_; }\n"
                 " private:\n"
                 "  int size_ = 0;\n"
                 "};\n"
                 "int FreeHelper(int a, int b);\n"
                 "}  // namespace fx\n"},
      SourceFile{"src/util/w.cc",
                 "namespace fx {\n"
                 "void Widget::Render() { FreeHelper(1, 2); }\n"
                 "int FreeHelper(int a, int b) { return a + b; }\n"
                 "}  // namespace fx\n"},
  });
  const FunctionSymbol* render = FindDef(index, "fx::Widget::Render");
  ASSERT_NE(render, nullptr);
  EXPECT_TRUE(render->is_method);
  ASSERT_EQ(render->calls.size(), 1u);
  EXPECT_EQ(render->calls[0].callee, "FreeHelper");
  const FunctionSymbol* size = FindDef(index, "fx::Widget::size");
  ASSERT_NE(size, nullptr);
  EXPECT_TRUE(size->is_method);
  ASSERT_NE(FindDef(index, "fx::FreeHelper"), nullptr);
  // The header carries declarations (no body) for Render and FreeHelper.
  size_t decls = 0;
  for (const FunctionSymbol& fn : index.functions) {
    if (!fn.is_definition && fn.file == "src/util/w.h") {
      ++decls;
    }
  }
  EXPECT_GE(decls, 2u);
}

TEST(AnalyzeSymbolsTest, ConstructorInitializerListCallsAreIndexed) {
  // Regression: a call hidden in a ctor init list (the real tree's
  // `SweepRunner::SweepRunner : jobs_(ResolveJobs(jobs))`) must reach the
  // call graph even though it sits before the `{`.
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/r.cc",
      "namespace fx {\n"
      "int Resolve(int j);\n"
      "class Runner {\n"
      " public:\n"
      "  explicit Runner(int jobs) : jobs_(jobs == 1 ? 1 : Resolve(jobs)) {}\n"
      " private:\n"
      "  int jobs_;\n"
      "};\n"
      "}  // namespace fx\n"}});
  const FunctionSymbol* ctor = FindDef(index, "fx::Runner::Runner");
  ASSERT_NE(ctor, nullptr);
  // The member initializer `jobs_(...)` may itself be recorded as a call-like
  // use (it resolves to nothing); what matters is that Resolve is seen.
  bool saw_resolve = false;
  for (const CallUse& call : ctor->calls) {
    saw_resolve = saw_resolve || call.callee == "Resolve";
  }
  EXPECT_TRUE(saw_resolve);
}

TEST(AnalyzeSymbolsTest, TemplatesOperatorsAndDestructorsIndex) {
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/t.h",
      "namespace fx {\n"
      "template <typename T>\n"
      "T Clamp(T v, T lo, T hi) { return v < lo ? lo : (hi < v ? hi : v); }\n"
      "class Holder {\n"
      " public:\n"
      "  ~Holder() { Release(); }\n"
      "  bool operator==(const Holder& o) const { return id_ == o.id_; }\n"
      " private:\n"
      "  void Release();\n"
      "  int id_ = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  EXPECT_NE(FindDef(index, "fx::Clamp"), nullptr);
  const FunctionSymbol* dtor = FindDef(index, "fx::Holder::~Holder");
  ASSERT_NE(dtor, nullptr);
  ASSERT_EQ(dtor->calls.size(), 1u);
  EXPECT_EQ(dtor->calls[0].callee, "Release");
  EXPECT_NE(FindDef(index, "fx::Holder::operator=="), nullptr);
}

TEST(AnalyzeSymbolsTest, OverloadsShareOneNameAndResolveConservatively) {
  // Two overloads of Pick: a call site links to both candidates, so taint
  // through either overload is caught (over-report, never under-report).
  const std::vector<SourceFile> sources = {SourceFile{
      "src/cache/o.cc",
      "namespace fx {\n"
      "int Pick(int a) { return a; }\n"
      "int Pick(int a, int b) { return getenv(\"X\") ? a : b; }\n"
      "int Decide() { return Pick(1); }\n"
      "}  // namespace fx\n"}};
  const SymbolIndex index = IndexOf(sources);
  EXPECT_EQ(index.definitions_by_name.at("Pick").size(), 2u);
  const std::vector<Finding> findings = Pass4(sources);
  // Decide is tainted through the conservative edge to the getenv overload.
  bool decide_tainted = false;
  for (const Finding& f : OfRule(findings, "determinism-taint")) {
    decide_tainted = decide_tainted || f.message.find("fx::Decide") == 0 ||
                     f.message.find("'fx::Decide'") != std::string::npos;
  }
  EXPECT_TRUE(decide_tainted);
}

TEST(AnalyzeSymbolsTest, ShadowedNamesStayLexical) {
  // A local variable shadowing a function name produces ident uses, not
  // calls; only the real call syntax links into the graph.
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/s.cc",
      "namespace fx {\n"
      "int Level() { return 3; }\n"
      "int Use() {\n"
      "  int Level = 7;\n"
      "  return Level + 1;\n"
      "}\n"
      "}  // namespace fx\n"}});
  const FunctionSymbol* use = FindDef(index, "fx::Use");
  ASSERT_NE(use, nullptr);
  EXPECT_TRUE(use->calls.empty());
}

TEST(AnalyzeSymbolsTest, GuardedMemberAnnotationsAreExtracted) {
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/g.h",
      "namespace fx {\n"
      "class Pool {\n"
      "  std::mutex mu_;  // guards: depth_\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  ASSERT_EQ(index.guarded_members.size(), 1u);
  EXPECT_EQ(index.guarded_members[0].class_name, "fx::Pool");
  EXPECT_EQ(index.guarded_members[0].member, "depth_");
  EXPECT_EQ(index.guarded_members[0].mutex, "mu_");
}

TEST(AnalyzeSymbolsTest, DeadSymbolReportIsCensusBased) {
  const SymbolIndex index = IndexOf({SourceFile{
      "src/util/d.cc",
      "namespace fx {\n"
      "int Used() { return 1; }\n"
      "int Unused() { return 2; }\n"
      "int main_like() { return Used(); }\n"
      "int main() { return main_like(); }\n"
      "}  // namespace fx\n"}});
  const std::vector<std::string> dead = DeadSymbolReport(index);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_NE(dead[0].find("fx::Unused"), std::string::npos);
  EXPECT_NE(dead[0].find("src/util/d.cc:3"), std::string::npos);
}

// --- Pass 4: determinism taint ----------------------------------------------

TEST(AnalyzeTaintTest, ThreeDeepChainIsReportedWithFullChain) {
  AnalyzeOptions options;
  options.run_symbols = true;
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("taint_tree")}, options);
  const std::vector<Finding> taint = OfRule(findings, "determinism-taint");
  ASSERT_EQ(taint.size(), 1u);
  EXPECT_NE(taint[0].file.find("src/cache/decision.cc"), std::string::npos);
  EXPECT_NE(taint[0].message.find(
                "call chain: fixture::CacheDecision -> fixture::ProbeLevel -> "
                "fixture::ProbeEnvironment"),
            std::string::npos);
  EXPECT_NE(taint[0].message.find("getenv() at src/util/env_probe.h:9"),
            std::string::npos);
}

TEST(AnalyzeTaintTest, WaiverIsAPropagationBarrier) {
  AnalyzeOptions options;
  options.run_symbols = true;
  std::vector<Finding> unwaived = AnalyzePaths({FixturePath("taint_tree")}, options);
  EXPECT_EQ(OfRule(unwaived, "determinism-taint").size(), 1u);
  // Waiving the middle hop severs the chain above it.
  const std::string waivers_path = ::testing::TempDir() + "/taint_waivers_test.txt";
  {
    std::ofstream out(waivers_path, std::ios::trunc);
    out << "fixture::ProbeLevel fixture probe cannot affect results\n";
  }
  options.taint_waivers_file = waivers_path;
  const std::vector<Finding> waived = AnalyzePaths({FixturePath("taint_tree")}, options);
  EXPECT_TRUE(OfRule(waived, "determinism-taint").empty());
  EXPECT_TRUE(OfRule(waived, "stale-taint-waiver").empty());
  std::remove(waivers_path.c_str());
}

TEST(AnalyzeTaintTest, StaleWaiverIsAFinding) {
  const std::vector<Finding> findings =
      Pass4({SourceFile{"src/cache/clean.cc",
                        "namespace fx {\n"
                        "int Pure() { return 1; }\n"
                        "}  // namespace fx\n"}},
            "fx::Pure waiver kept after the taint was fixed\n");
  const std::vector<Finding> stale = OfRule(findings, "stale-taint-waiver");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].message.find("fx::Pure"), std::string::npos);
}

TEST(AnalyzeTaintTest, WaiverWithoutJustificationIsConfigError) {
  const std::vector<Finding> findings =
      Pass4({SourceFile{"src/cache/c.cc", "int F() { return 0; }\n"}},
            "fx::Naked\n");
  EXPECT_EQ(OfRule(findings, "taint-config").size(), 1u);
}

TEST(AnalyzeTaintTest, NondeterministicAnnotationIsASource) {
  const std::vector<Finding> findings = Pass4({SourceFile{
      "src/sim/a.cc",
      "namespace fx {\n"
      "// webcc-nondeterministic: models outside input\n"
      "int Oracle() { return 4; }\n"
      "int Tick() { return Oracle(); }\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> taint = OfRule(findings, "determinism-taint");
  // Both Oracle (annotated, in a sink dir) and Tick (transitively) report.
  ASSERT_EQ(taint.size(), 2u);
  EXPECT_NE(taint[1].message.find("fx::Tick -> fx::Oracle"), std::string::npos);
  EXPECT_NE(taint[0].message.find("`// webcc-nondeterministic` annotation"),
            std::string::npos);
}

TEST(AnalyzeTaintTest, UnorderedIterationIsASource) {
  const std::vector<Finding> findings = Pass4({SourceFile{
      "src/cache/u.cc",
      "namespace fx {\n"
      "std::unordered_map<int, int> table;\n"
      "int Sum() {\n"
      "  int s = 0;\n"
      "  for (const auto& kv : table) { s += kv.second; }\n"
      "  return s;\n"
      "}\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> taint = OfRule(findings, "determinism-taint");
  ASSERT_EQ(taint.size(), 1u);
  EXPECT_NE(taint[0].message.find("unordered iteration over 'table'"),
            std::string::npos);
}

TEST(AnalyzeTaintTest, RootScopingBlocksCrossRootEdges) {
  // A tools/ helper full of nondeterminism shares a name with nothing in
  // src/; the src caller must not link to it (src never calls tools).
  const std::vector<Finding> findings = Pass4({
      SourceFile{"tools/gen/helper.cc",
                 "namespace fx {\n"
                 "int Helper() { return getenv(\"A\") ? 1 : 0; }\n"
                 "}  // namespace fx\n"},
      SourceFile{"src/cache/caller.cc",
                 "namespace fx {\n"
                 "int Helper();\n"
                 "int Use() { return Helper(); }\n"
                 "}  // namespace fx\n"},
  });
  EXPECT_TRUE(OfRule(findings, "determinism-taint").empty());
}

TEST(AnalyzeTaintTest, SeededRngHelpersStaySanctioned) {
  // src/util/rng.* is the seeded-engine home; its mt19937 use is exempt, so
  // sink-dir callers of Rng helpers stay clean (same carve-out as pass 1).
  const std::vector<Finding> findings = Pass4({
      SourceFile{"src/util/rng.h",
                 "namespace fx {\n"
                 "class Rng {\n"
                 " public:\n"
                 "  uint64_t Next() { return engine_(); }\n"
                 " private:\n"
                 "  std::mt19937_64 engine_;\n"
                 "};\n"
                 "}  // namespace fx\n"},
      SourceFile{"src/sim/roll.cc",
                 "namespace fx {\n"
                 "int Roll(Rng& rng) { return static_cast<int>(rng.Next() % 6); }\n"
                 "}  // namespace fx\n"},
  });
  EXPECT_TRUE(OfRule(findings, "determinism-taint").empty());
}

TEST(AnalyzeTaintTest, TaintFindingsFlowThroughBaseline) {
  AnalyzeConfig config;
  config.run_symbols = true;
  config.apply_baseline = true;
  config.baseline_contents =
      "src/sim/b.cc:2: [determinism-taint] acknowledged during rollout\n";
  const std::vector<Finding> findings = AnalyzeSources(
      {SourceFile{"src/sim/b.cc",
                  "namespace fx {\n"
                  "int Draw() { return rand(); }\n"
                  "}  // namespace fx\n"}},
      config);
  EXPECT_TRUE(OfRule(findings, "determinism-taint").empty());
  // The pass-1 call-site finding for the same line is separate and distinct.
  EXPECT_EQ(OfRule(findings, "banned-random").size(), 1u);
}

// --- Pass 4: lock discipline -------------------------------------------------

TEST(AnalyzeLockTest, UnlockedGuardedAccessIsFlaggedLockedOnesAreNot) {
  AnalyzeOptions options;
  options.run_symbols = true;
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("lock_tree")}, options);
  const std::vector<Finding> locks = OfRule(findings, "lock-discipline");
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_NE(locks[0].message.find("BumpWithoutLock"), std::string::npos);
  EXPECT_NE(locks[0].message.find("'counter_'"), std::string::npos);
  EXPECT_NE(locks[0].message.find("'mu_'"), std::string::npos);
}

TEST(AnalyzeLockTest, OutOfLineMethodsAreCheckedToo) {
  const std::vector<Finding> findings = Pass4({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  void Drain();\n"
      " private:\n"
      "  std::mutex mu_;  // guards: depth_\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "void Pool::Drain() { depth_ = 0; }\n"
      "}  // namespace fx\n"}});
  const std::vector<Finding> locks = OfRule(findings, "lock-discipline");
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_NE(locks[0].message.find("fx::Pool::Drain"), std::string::npos);
}

TEST(AnalyzeLockTest, WrongMutexDoesNotSatisfyTheGuard) {
  const std::vector<Finding> findings = Pass4({SourceFile{
      "src/util/p.cc",
      "namespace fx {\n"
      "class Pool {\n"
      " public:\n"
      "  int Read() {\n"
      "    std::lock_guard<std::mutex> lock(other_mu_);\n"
      "    return depth_;\n"
      "  }\n"
      " private:\n"
      "  std::mutex mu_;  // guards: depth_\n"
      "  std::mutex other_mu_;  // guards: nothing here\n"
      "  int depth_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "}  // namespace fx\n"}});
  EXPECT_EQ(OfRule(findings, "lock-discipline").size(), 1u);
}

// --- Pass 4: AnalyzePaths integration ---------------------------------------

TEST(AnalyzePathsTest, TestsDirectoriesAreNeverScanned) {
  AnalyzeOptions options;
  options.run_symbols = true;
  const std::vector<Finding> findings =
      AnalyzePaths({FixturePath("exclude_tree")}, options);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file.find("/tests/"), std::string::npos) << f.file;
  }
  // The tests/ file is wall-to-wall banned calls; nothing may leak out.
  EXPECT_TRUE(OfRule(findings, "banned-random").empty());
}

TEST(AnalyzePathsTest, JobsSettingsAreByteDeterministic) {
  AnalyzeOptions serial;
  serial.run_symbols = true;
  serial.jobs = 1;
  AnalyzeOptions parallel = serial;
  parallel.jobs = 4;
  const std::vector<std::string> roots = {FixturePath("taint_tree"),
                                          FixturePath("lock_tree")};
  std::vector<std::string> dead1;
  std::vector<std::string> dead4;
  const std::vector<Finding> a = AnalyzePaths(roots, serial, &dead1);
  const std::vector<Finding> b = AnalyzePaths(roots, parallel, &dead4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].file, b[i].file);
    EXPECT_EQ(a[i].line, b[i].line);
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].message, b[i].message);
  }
  EXPECT_EQ(dead1, dead4);
  EXPECT_FALSE(a.empty());
}

TEST_F(AnalyzeGraphCacheTest, ConfigChangeInvalidatesTheCache) {
  const std::string waivers_path = ::testing::TempDir() + "/cache_waivers_test.txt";
  {
    std::ofstream out(waivers_path, std::ios::trunc);
    out << "fixture::ProbeLevel sanctioned while the probe rolls out\n";
  }
  AnalyzeOptions options;
  options.run_symbols = true;
  options.taint_waivers_file = waivers_path;
  options.graph_cache_file = CachePath();
  (void)AnalyzePaths({FixturePath("taint_tree")}, options);
  std::string header_before;
  {
    std::ifstream in(CachePath());
    std::getline(in, header_before);
  }
  // Editing the waiver list must change the cache key: the old graph may
  // not serve an analysis running under a different config.
  {
    std::ofstream out(waivers_path, std::ios::trunc);
    out << "# all waivers deleted\n";
  }
  const std::vector<Finding> after = AnalyzePaths({FixturePath("taint_tree")}, options);
  std::string header_after;
  {
    std::ifstream in(CachePath());
    std::getline(in, header_after);
  }
  EXPECT_NE(header_before, header_after);
  // And the re-run matches a fresh, cache-less analysis exactly.
  AnalyzeOptions no_cache = options;
  no_cache.graph_cache_file.clear();
  const std::vector<Finding> fresh = AnalyzePaths({FixturePath("taint_tree")}, no_cache);
  ASSERT_EQ(after.size(), fresh.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].message, fresh[i].message);
  }
  EXPECT_EQ(OfRule(after, "determinism-taint").size(), 1u);
  std::remove(waivers_path.c_str());
}

// --- Whole-tree gate (mirrors the lint.analyze.tree ctest) ------------------

TEST(AnalyzeTreeTest, LayerSpecParsesCleanly) {
  std::vector<Finding> findings;
  const LayerSpec spec =
      ParseLayerSpec("layers.txt", ReadFileOrDie(WEBCC_ANALYZE_LAYERS_FILE), &findings);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(spec.tiers.size(), 5u);
  ASSERT_EQ(spec.tier_of.count("util"), 1u);
  ASSERT_EQ(spec.tier_of.count("chaos"), 1u);
  EXPECT_LT(spec.tier_of.at("util"), spec.tier_of.at("sim"));
  EXPECT_LT(spec.tier_of.at("sim"), spec.tier_of.at("cache"));
  EXPECT_EQ(spec.tier_of.at("cache"), spec.tier_of.at("origin"));
  EXPECT_LT(spec.tier_of.at("core"), spec.tier_of.at("chaos"));
}

}  // namespace
}  // namespace webcc::analyze
