// Fixture for the file-scoped waiver: this file plays the role of a timing
// harness whose whole purpose is reading the host clock.
// webcc-lint: allow-file(banned-wallclock) measurement harness, host time never feeds a sim

#include <chrono>

double WallSeconds() {
  const auto t0 = std::chrono::steady_clock::now();  // waived file-wide
  const auto t1 = std::chrono::high_resolution_clock::now();  // also waived
  return std::chrono::duration<double>(t1 - t0).count();
}

// The waiver is rule-specific: other rules still fire in this file.
int BadDraw() { return rand(); }  // BAD banned-random
