// Lint fixture: bare assert in simulator code.
#include <cassert>

void Validate(int n) {
  assert(n > 0);                                        // BAD: bare-assert
  static_assert(sizeof(int) >= 4, "ok");                // OK: compile-time
}
