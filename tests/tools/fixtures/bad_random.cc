// Lint fixture: every line marked BAD must be reported by webcc-lint.
#include <cstdlib>
#include <random>

int DrawBad() {
  std::mt19937 gen(42);              // BAD: banned-random
  int a = rand();                    // BAD: banned-random
  srand(7);                          // BAD: banned-random
  std::random_device rd;             // BAD: banned-random
  int b = rand();  // webcc-lint: allow(banned-random) fixture exercising suppression
  return a + b + static_cast<int>(gen()) + static_cast<int>(rd());
}
