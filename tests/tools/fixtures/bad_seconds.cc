// Lint fixture: raw-seconds parameters that should be SimDuration.
#include <cstdint>

void Expire(int64_t ttl_seconds);                       // BAD: raw-seconds-param
void Wait(int timeout_secs, bool flag);                 // BAD: raw-seconds-param
void Tick(double seconds);                              // BAD: raw-seconds-param
void RatePerSec(double requests_per_second);            // OK: a rate, not a span
void Sized(int64_t size_bytes);                         // OK: not a time at all
