// Lint fixture: float equality in stats code ("stats" in the path scopes it).
bool Converged(double mean, double target) {
  if (mean == 0.0) {                                    // BAD: float-equality
    return false;
  }
  return mean != target;  // OK: no literal/accessor pattern on this line
}
