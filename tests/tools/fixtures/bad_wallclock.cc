// Lint fixture: host-clock reads that must be reported.
#include <chrono>
#include <ctime>

long ReadClocks() {
  auto a = std::time(nullptr);                          // BAD: banned-wallclock
  auto b = time(NULL);                                  // BAD: banned-wallclock
  auto c = std::chrono::system_clock::now();            // BAD: banned-wallclock
  auto d = std::chrono::steady_clock::now();            // BAD: banned-wallclock
  return static_cast<long>(a) + static_cast<long>(b) +
         c.time_since_epoch().count() + d.time_since_epoch().count();
}
