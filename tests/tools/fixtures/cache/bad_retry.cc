// Lint fixture: unbounded retry loops and ignored upstream error returns.
// Lives under a cache/ path so the upstream-code rules apply.

struct Upstream {
  bool FetchFull(int id);
  bool FetchIfModified(int id);
  bool DeliverInvalidation(int id);
};

void Bad(Upstream& up) {
  while (true) {  // BAD: unbounded-retry
    if (up.FetchFull(1)) {  // fine: result drives the branch
      break;
    }
  }
  while (1) {  // BAD: unbounded-retry
    break;
  }
  for (;;) {  // BAD: unbounded-retry
    break;
  }
  up.FetchFull(2);            // BAD: ignored-upstream-error
  up.DeliverInvalidation(3);  // BAD: ignored-upstream-error
}

void Good(Upstream& up) {
  for (int attempt = 0; attempt < 4; ++attempt) {  // bounded: fine
    if (up.FetchIfModified(4)) {
      break;
    }
  }
  const bool ok = up.DeliverInvalidation(5);  // result captured: fine
  (void)ok;
  while (up.FetchFull(6)) {  // condition consumes the result: fine
    break;
  }
}
