// Lint fixture: hash-order iteration in a cache hot path (the "cache/"
// directory component scopes the rule).
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Fixture {
  std::unordered_map<int, int> entries_;
  std::unordered_set<int> live_;
  std::vector<int> ordered_;

  int Sum() const {
    int total = 0;
    for (const auto& kv : entries_) {                   // BAD: unordered-iteration
      total += kv.second;
    }
    for (int id : live_) {                              // BAD: unordered-iteration
      total += id;
    }
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {  // BAD: unordered-iteration
      total += it->first;
    }
    for (int id : ordered_) {  // OK: vector iteration is deterministic
      total += id;
    }
    return total;
  }
};
