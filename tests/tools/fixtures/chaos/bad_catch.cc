// Lint fixture: catch clauses inside src/chaos/ swallow oracle violations.
// Expected: 2 oracle-bypass hits (lines marked BAD), the allow-marked catch
// and the commented/string mentions stay silent.

void Bad1() {
  try {
    Run();
  } catch (const OracleViolation& v) {  // BAD: swallows the violation
    (void)v;
  }
}

void Bad2() {
  try {
    Run();
  } catch (...) {  // BAD: even a catch-all can eat an OracleViolation
  }
}

void Sanctioned() {
  try {
    Run();
  } catch (const OracleViolation& v) {  // webcc-lint: allow(oracle-bypass) fixture's sanctioned site
    (void)v;
  }
}

// catch (in a comment) is not code.
const char* kText = "catch (in a string) is not code";
