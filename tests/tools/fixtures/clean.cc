// Lint fixture: a clean file full of near-misses that must NOT be reported.
//
// Comment mentions rand() and std::random_device and assert() — comments are
// stripped before matching.
#include <cstdint>
#include <string>

/* block comment with std::time(nullptr) inside */
std::string Describe() {
  // String literals are stripped too:
  std::string s = "call rand() then assert(x) at std::chrono::system_clock";
  const char quote = '"';
  s.push_back(quote);
  int64_t operand = 4;       // "operand" contains "rand" but has no word boundary
  int strand_count = 1;      // likewise "strand"
  return s + std::to_string(operand + strand_count);
}
