#include "tools/lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace webcc::lint {
namespace {

std::vector<Violation> LintOne(const std::string& path, const std::string& contents) {
  return LintSources({SourceFile{path, contents}});
}

bool HasRule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&rule](const Violation& v) { return v.rule == rule; });
}

size_t CountRule(const std::vector<Violation>& vs, const std::string& rule) {
  return static_cast<size_t>(std::count_if(
      vs.begin(), vs.end(), [&rule](const Violation& v) { return v.rule == rule; }));
}

TEST(LintTest, FlagsBannedRandomness) {
  const auto vs = LintOne("src/core/foo.cc", "int x = rand();\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "banned-random");
  EXPECT_EQ(vs[0].line, 1u);
}

TEST(LintTest, AllowsRandomnessInsideRng) {
  EXPECT_TRUE(LintOne("src/util/rng.cc", "std::random_device rd;\n").empty());
}

TEST(LintTest, FlagsWallClockReads) {
  EXPECT_TRUE(HasRule(LintOne("src/core/foo.cc", "auto t = std::time(nullptr);\n"),
                      "banned-wallclock"));
  EXPECT_TRUE(HasRule(
      LintOne("bench/foo.cc", "auto t = std::chrono::high_resolution_clock::now();\n"),
      "banned-wallclock"));
}

TEST(LintTest, FlagsRawSecondsParameters) {
  const auto vs = LintOne("src/cache/foo.h", "void Expire(int64_t ttl_seconds);\n");
  EXPECT_TRUE(HasRule(vs, "raw-seconds-param"));
}

TEST(LintTest, RatePerSecondIsNotATimeSpan) {
  EXPECT_TRUE(
      LintOne("src/workload/foo.h", "void Rate(double requests_per_second);\n").empty());
}

TEST(LintTest, SimTimeConstructorsAreAllowlisted) {
  EXPECT_TRUE(
      LintOne("src/util/sim_time.h", "explicit SimDuration(int64_t seconds);\n").empty());
}

TEST(LintTest, FlagsFloatEqualityOnlyInStatsCode) {
  const std::string line = "if (x == 0.0) { return; }\n";
  EXPECT_TRUE(HasRule(LintOne("src/util/stats.cc", line), "float-equality"));
  EXPECT_TRUE(HasRule(LintOne("src/core/metrics.cc", line), "float-equality"));
  EXPECT_FALSE(HasRule(LintOne("src/core/simulation.cc", line), "float-equality"));
}

TEST(LintTest, FlagsStatAccessorEquality) {
  EXPECT_TRUE(HasRule(LintOne("src/core/metrics.cc", "if (a.mean() == b) { }\n"),
                      "float-equality"));
}

TEST(LintTest, FlagsBareAssertOutsideBench) {
  EXPECT_TRUE(HasRule(LintOne("src/cache/foo.cc", "assert(ok);\n"), "bare-assert"));
  EXPECT_FALSE(HasRule(LintOne("bench/foo.cc", "assert(ok);\n"), "bare-assert"));
}

TEST(LintTest, StaticAssertIsNotBareAssert) {
  EXPECT_TRUE(LintOne("src/cache/foo.cc", "static_assert(sizeof(int) == 4);\n").empty());
}

TEST(LintTest, UnorderedIterationMatchesAcrossHeaderAndSource) {
  // Declaration in the header, loop in the .cc: the scan unit links them.
  const SourceFile header{"src/cache/foo.h", "std::unordered_map<int, int> entries_;\n"};
  const SourceFile source{"src/cache/foo.cc",
                          "int Sum() {\n"
                          "  int t = 0;\n"
                          "  for (const auto& kv : entries_) { t += kv.second; }\n"
                          "  return t;\n"
                          "}\n"};
  const auto vs = LintSources({header, source});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unordered-iteration");
  EXPECT_EQ(vs[0].file, "src/cache/foo.cc");
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(LintTest, UnorderedIterationIgnoredOutsideHotPaths) {
  const SourceFile file{"src/workload/foo.cc",
                        "std::unordered_map<int, int> m_;\n"
                        "void F() { for (auto& kv : m_) { (void)kv; } }\n"};
  EXPECT_TRUE(LintSources({file}).empty());
}

TEST(LintTest, CommentsAndStringsAreStripped) {
  const std::string contents =
      "// rand() in a comment\n"
      "/* assert(x) in a block\n"
      "   spanning lines with std::time(nullptr) */\n"
      "const char* s = \"rand() assert(y)\";\n";
  EXPECT_TRUE(LintOne("src/core/foo.cc", contents).empty());
}

TEST(LintTest, InlineSuppressionWaivesOneLine) {
  const std::string contents =
      "int a = rand();  // webcc-lint: allow(banned-random) reason here\n"
      "int b = rand();\n";
  const auto vs = LintOne("src/core/foo.cc", contents);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 2u);
}

TEST(LintTest, AllowFileWaivesWholeFile) {
  const std::string contents =
      "// webcc-lint: allow-file(banned-wallclock) timing harness\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(LintOne("bench/foo.h", contents).empty());
}

TEST(LintTest, AllowFileIsRuleSpecific) {
  const std::string contents =
      "// webcc-lint: allow-file(banned-wallclock) timing harness\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "int b = rand();\n";
  const auto vs = LintOne("bench/foo.h", contents);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "banned-random");
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(LintTest, AllowFileCoversUnorderedIteration) {
  const SourceFile file{"src/sim/foo.cc",
                        "// webcc-lint: allow-file(unordered-iteration) order-insensitive sums\n"
                        "std::unordered_map<int, int> m_;\n"
                        "void F() { for (auto& kv : m_) { (void)kv; } }\n"};
  EXPECT_TRUE(LintSources({file}).empty());
}

TEST(LintTest, SuppressionIsRuleSpecific) {
  // Naming the wrong rule does not waive the violation.
  const auto vs = LintOne("src/core/foo.cc",
                          "int a = rand();  // webcc-lint: allow(bare-assert)\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "banned-random");
}

TEST(LintTest, FlagsUnboundedRetryOnlyInUpstreamCode) {
  EXPECT_TRUE(HasRule(LintOne("src/cache/foo.cc", "while (true) { Retry(); }\n"),
                      "unbounded-retry"));
  EXPECT_TRUE(HasRule(LintOne("src/origin/foo.cc", "for (;;) { Retry(); }\n"),
                      "unbounded-retry"));
  // Event loops elsewhere are allowed to spin until drained.
  EXPECT_FALSE(HasRule(LintOne("src/sim/engine.cc", "while (true) { Step(); }\n"),
                       "unbounded-retry"));
  // A bounded loop is fine where it matters.
  EXPECT_FALSE(HasRule(
      LintOne("src/cache/foo.cc", "for (int i = 0; i < max_attempts; ++i) { }\n"),
      "unbounded-retry"));
}

TEST(LintTest, FlagsIgnoredUpstreamErrorReturns) {
  EXPECT_TRUE(HasRule(LintOne("src/cache/foo.cc", "  upstream_->FetchFull(id, now);\n"),
                      "ignored-upstream-error"));
  EXPECT_TRUE(HasRule(LintOne("src/origin/foo.cc", "  sink->DeliverInvalidation(id, now);\n"),
                      "ignored-upstream-error"));
  // Any use of the result — assignment, condition, return — is fine.
  EXPECT_FALSE(HasRule(
      LintOne("src/cache/foo.cc", "  auto reply = upstream_->FetchFull(id, now);\n"),
      "ignored-upstream-error"));
  EXPECT_FALSE(HasRule(
      LintOne("src/cache/foo.cc", "  if (sink->DeliverInvalidation(id, now)) { n++; }\n"),
      "ignored-upstream-error"));
  EXPECT_FALSE(HasRule(LintOne("src/cache/foo.cc", "  return FetchFull(id, now);\n"),
                       "ignored-upstream-error"));
  // Same statement outside cache/origin code is out of scope.
  EXPECT_FALSE(HasRule(LintOne("src/core/foo.cc", "  upstream_->FetchFull(id, now);\n"),
                       "ignored-upstream-error"));
}

TEST(LintTest, FlagsCatchOnlyInChaosCode) {
  const std::string contents =
      "try { Run(); } catch (const OracleViolation& v) { (void)v; }\n";
  EXPECT_TRUE(HasRule(LintOne("src/chaos/foo.cc", contents), "oracle-bypass"));
  EXPECT_TRUE(
      HasRule(LintOne("src/chaos/foo.cc", "try { Run(); } catch (...) {}\n"), "oracle-bypass"));
  // Exception handling elsewhere is out of scope for this rule.
  EXPECT_FALSE(HasRule(LintOne("src/core/foo.cc", contents), "oracle-bypass"));
}

TEST(LintTest, OracleBypassHonorsSanctionedSiteMarker) {
  const std::string contents =
      "try { Run(); } catch (const OracleViolation& v) {"
      "  // webcc-lint: allow(oracle-bypass) sanctioned\n"
      "  return v;\n"
      "}\n";
  EXPECT_FALSE(HasRule(LintOne("src/chaos/shrinker.cc", contents), "oracle-bypass"));
}

TEST(LintTest, MissingPathReportsIoViolation) {
  const auto vs = LintPaths({"no/such/path"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "lint-io");
}

// End-to-end over the checked-in fixture files: every BAD line is reported,
// nothing else is.
TEST(LintFixtureTest, FixtureTreeReportsExactlyTheBadLines) {
  const auto vs = LintPaths({WEBCC_LINT_FIXTURE_DIR});
  EXPECT_FALSE(HasRule(vs, "lint-io"));
  // allow_file_scoped.cc contributes one banned-random hit and waives its
  // two wall-clock reads file-wide.
  EXPECT_EQ(CountRule(vs, "banned-random"), 5u);
  EXPECT_EQ(CountRule(vs, "banned-wallclock"), 4u);
  EXPECT_EQ(CountRule(vs, "raw-seconds-param"), 3u);
  EXPECT_EQ(CountRule(vs, "float-equality"), 1u);
  EXPECT_EQ(CountRule(vs, "bare-assert"), 1u);
  EXPECT_EQ(CountRule(vs, "unordered-iteration"), 3u);
  EXPECT_EQ(CountRule(vs, "unbounded-retry"), 3u);
  EXPECT_EQ(CountRule(vs, "ignored-upstream-error"), 2u);
  EXPECT_EQ(CountRule(vs, "oracle-bypass"), 2u);
  // Nothing from clean.cc, and no unexpected rules.
  for (const Violation& v : vs) {
    EXPECT_EQ(v.file.find("clean.cc"), std::string::npos) << v.file << " rule " << v.rule;
  }
  EXPECT_EQ(vs.size(), 24u);
}

}  // namespace
}  // namespace webcc::lint
