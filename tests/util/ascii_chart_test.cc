#include "src/util/ascii_chart.h"

#include <cmath>

#include <gtest/gtest.h>

namespace webcc {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    const size_t eol = text.find('\n', start);
    lines.push_back(text.substr(start, eol - start));
    if (eol == std::string::npos) {
      break;
    }
    start = eol + 1;
  }
  return lines;
}

TEST(AsciiChartTest, TitleLabelsAndLegendPresent) {
  ChartSeries s;
  s.label = "alex";
  s.marker = '*';
  s.points = {{0, 1}, {50, 2}, {100, 3}};
  ChartOptions options;
  options.title = "My Figure";
  options.y_label = "MB";
  options.x_label = "threshold";
  const std::string chart = RenderChart({s}, options);
  EXPECT_NE(chart.find("My Figure"), std::string::npos);
  EXPECT_NE(chart.find("MB"), std::string::npos);
  EXPECT_NE(chart.find("threshold"), std::string::npos);
  EXPECT_NE(chart.find("* alex"), std::string::npos);
}

TEST(AsciiChartTest, CornersLandAtExtremes) {
  ChartSeries s;
  s.marker = 'o';
  s.points = {{0, 0}, {10, 100}};
  ChartOptions options;
  options.width = 20;
  options.height = 10;
  const std::string chart = RenderChart({s}, options);
  const auto lines = Lines(chart);
  // First grid row (y max) must contain a marker at the far right; last grid
  // row (y min) at the far left. Grid rows are those containing '|'.
  std::vector<std::string> grid;
  for (const auto& line : lines) {
    if (line.find('|') != std::string::npos) {
      grid.push_back(line.substr(line.find('|') + 1));
    }
  }
  ASSERT_EQ(grid.size(), 10u);
  EXPECT_EQ(grid.front().back(), 'o');   // (10, 100) top-right
  EXPECT_EQ(grid.back().front(), 'o');   // (0, 0) bottom-left
}

TEST(AsciiChartTest, LogScaleSpacing) {
  // On a log axis, 1 -> 10 -> 100 are equally spaced: the middle point sits
  // in the middle row, which would not happen linearly.
  ChartSeries s;
  s.marker = 'x';
  s.points = {{0, 1}, {1, 10}, {2, 100}};
  ChartOptions options;
  options.width = 21;
  options.height = 11;
  options.log_y = true;
  const std::string chart = RenderChart({s}, options);
  const auto lines = Lines(chart);
  std::vector<std::string> grid;
  for (const auto& line : lines) {
    if (line.find('|') != std::string::npos) {
      grid.push_back(line.substr(line.find('|') + 1));
    }
  }
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_NE(grid[5].find('x'), std::string::npos);  // exactly halfway
  EXPECT_NE(chart.find("(log scale)"), std::string::npos);
}

TEST(AsciiChartTest, NonPositiveValuesSkippedInLogMode) {
  ChartSeries s;
  s.marker = 'x';
  s.points = {{0, 0.0}, {1, -5.0}, {2, 100.0}};
  ChartOptions options;
  options.log_y = true;
  const std::string chart = RenderChart({s}, options);
  // Only the single positive point plots; no crash, one marker.
  size_t count = 0;
  for (char c : chart) {
    if (c == 'x') {
      ++count;
    }
  }
  EXPECT_EQ(count, 2u);  // one on the grid + one in the legend
}

TEST(AsciiChartTest, EmptySeriesRendersFrame) {
  const std::string chart = RenderChart({}, ChartOptions{});
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find('|'), std::string::npos);
}

TEST(AsciiChartTest, OverlapMarkedWithHash) {
  ChartSeries a;
  a.label = "a";
  a.marker = 'a';
  a.points = {{0, 0}, {1, 1}};
  ChartSeries b;
  b.label = "b";
  b.marker = 'b';
  b.points = {{0, 0}};  // collides with a's first point
  const std::string chart = RenderChart({a, b}, ChartOptions{});
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  ChartSeries s;
  s.marker = '-';
  s.points = {{0, 5}, {1, 5}, {2, 5}};
  EXPECT_NO_THROW(RenderChart({s}, ChartOptions{}));
}

TEST(AsciiChartTest, NansIgnored) {
  ChartSeries s;
  s.marker = '*';
  s.points = {{0, std::nan("")}, {std::nan(""), 1}, {1, 2}};
  EXPECT_NO_THROW(RenderChart({s}, ChartOptions{}));
}

TEST(AsciiChartTest, Deterministic) {
  ChartSeries s;
  s.label = "d";
  s.marker = 'd';
  for (int i = 0; i < 30; ++i) {
    s.points.emplace_back(i, std::sin(i) * 10 + 20);
  }
  EXPECT_EQ(RenderChart({s}, ChartOptions{}), RenderChart({s}, ChartOptions{}));
}

}  // namespace
}  // namespace webcc
