#include "src/util/check.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/util/sim_time.h"

namespace webcc {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  WEBCC_CHECK(true);
  WEBCC_CHECK(1 + 1 == 2) << "never rendered";
  WEBCC_CHECK_EQ(4, 4);
  WEBCC_CHECK_NE(4, 5);
  WEBCC_CHECK_LT(4, 5);
  WEBCC_CHECK_LE(4, 4);
  WEBCC_CHECK_GT(5, 4);
  WEBCC_CHECK_GE(5, 5);
}

TEST(CheckDeathTest, FailureReportsConditionAndLocation) {
  EXPECT_DEATH(WEBCC_CHECK(2 < 1), "WEBCC_CHECK failed at .*check_test.cc.*2 < 1");
}

TEST(CheckDeathTest, StreamedMessageIsIncluded) {
  EXPECT_DEATH(WEBCC_CHECK(false) << "cache " << 7 << " broke", "cache 7 broke");
}

TEST(CheckDeathTest, ComparisonPrintsBothOperands) {
  const int64_t hits = 12;
  const int64_t requests = 7;
  EXPECT_DEATH(WEBCC_CHECK_LE(hits, requests), "hits <= requests \\(12 vs 7\\)");
}

TEST(CheckDeathTest, AllComparisonFormsFire) {
  EXPECT_DEATH(WEBCC_CHECK_EQ(1, 2), "1 == 2 \\(1 vs 2\\)");
  EXPECT_DEATH(WEBCC_CHECK_NE(3, 3), "3 != 3 \\(3 vs 3\\)");
  EXPECT_DEATH(WEBCC_CHECK_LT(2, 2), "2 < 2 \\(2 vs 2\\)");
  EXPECT_DEATH(WEBCC_CHECK_LE(3, 2), "3 <= 2 \\(3 vs 2\\)");
  EXPECT_DEATH(WEBCC_CHECK_GT(2, 2), "2 > 2 \\(2 vs 2\\)");
  EXPECT_DEATH(WEBCC_CHECK_GE(2, 3), "2 >= 3 \\(2 vs 3\\)");
}

TEST(CheckTest, OperandsEvaluateExactlyOnce) {
  int evaluations = 0;
  const auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  WEBCC_CHECK_EQ(count(), 1);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, MessageExpressionsOnlyEvaluateOnFailure) {
  int evaluations = 0;
  const auto count = [&evaluations]() {
    ++evaluations;
    return "msg";
  };
  WEBCC_CHECK(true) << count();
  WEBCC_CHECK_EQ(1, 1) << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckTest, MixedSignComparisonsAreValueCorrect) {
  // size_t vs negative int: plain `>=` would convert -1 to huge and pass.
  const size_t n = 4;
  WEBCC_CHECK_GE(n, -1);
  EXPECT_DEATH(WEBCC_CHECK_LT(n, -1), "n < -1 \\(4 vs -1\\)");
}

TEST(CheckDeathTest, ToStringTypesRenderViaToString) {
  EXPECT_DEATH(WEBCC_CHECK_EQ(Hours(2), Hours(3)), "\\(2h 0m 0s vs 3h 0m 0s\\)");
}

TEST(CheckDeathTest, UnprintableOperandsStillFail) {
  struct Opaque {
    bool operator==(const Opaque&) const { return false; }
  };
  EXPECT_DEATH(WEBCC_CHECK_EQ(Opaque{}, Opaque{}), "<unprintable> vs <unprintable>");
}

TEST(CheckTest, CheckWorksInUnbracedIf) {
  // The macros must parse as a single statement.
  if (true) WEBCC_CHECK(true);
  if (false) WEBCC_CHECK_EQ(1, 2);  // not reached, must still compile
}

TEST(CheckedArithmeticTest, InRangeValuesPassThrough) {
  EXPECT_EQ(CheckedAdd(2, 3, "t"), 5);
  EXPECT_EQ(CheckedSub(2, 3, "t"), -1);
  EXPECT_EQ(CheckedMul(-4, 5, "t"), -20);
  EXPECT_EQ(CheckedDiv(20, 5, "t"), 4);
  // Compile-time evaluation still works.
  static_assert(CheckedAdd(1, 2, "t") == 3);
  static_assert(CheckedMul(86400, 186, "t") == 16070400);
}

TEST(CheckedArithmeticDeathTest, OverflowAborts) {
  EXPECT_DEATH(CheckedAdd(INT64_MAX, 1, "add-test"), "int64 overflow in add-test");
  EXPECT_DEATH(CheckedSub(INT64_MIN, 1, "sub-test"), "int64 overflow in sub-test");
  EXPECT_DEATH(CheckedMul(INT64_MAX / 2, 3, "mul-test"), "int64 overflow in mul-test");
  EXPECT_DEATH(CheckedDiv(1, 0, "div-test"), "int64 overflow in div-test");
  EXPECT_DEATH(CheckedDiv(INT64_MIN, -1, "div-test"), "int64 overflow in div-test");
}

}  // namespace
}  // namespace webcc
