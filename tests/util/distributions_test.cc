#include "src/util/distributions.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfDistribution zipf(10, 0.0);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 0.8);
  double total = 0;
  for (size_t r = 0; r < 100; ++r) {
    total += zipf.Pmf(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfDistribution zipf(50, 1.1);
  for (size_t r = 1; r < 50; ++r) {
    EXPECT_GE(zipf.Pmf(r - 1), zipf.Pmf(r));
  }
}

TEST(ZipfTest, PmfRatioMatchesPowerLaw) {
  ZipfDistribution zipf(1000, 1.0);
  // p(r=0)/p(r=9) == (10/1)^1.
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(9), 10.0, 1e-6);
}

TEST(ZipfTest, DrawFrequenciesTrackPmf) {
  ZipfDistribution zipf(20, 0.9);
  Rng rng(123);
  std::vector<int> counts(20, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    ++counts[zipf.Draw(rng)];
  }
  for (size_t r = 0; r < 20; ++r) {
    const double expected = zipf.Pmf(r) * kN;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 10);
  }
}

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 1.5);
  Rng rng(1);
  EXPECT_EQ(zipf.Draw(rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

TEST(DiscreteTest, ProbabilitiesNormalized) {
  DiscreteDistribution dist({2.0, 6.0, 2.0});
  EXPECT_NEAR(dist.Probability(0), 0.2, 1e-12);
  EXPECT_NEAR(dist.Probability(1), 0.6, 1e-12);
  EXPECT_NEAR(dist.Probability(2), 0.2, 1e-12);
}

TEST(DiscreteTest, ZeroWeightNeverDrawn) {
  DiscreteDistribution dist({1.0, 0.0, 1.0});
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(dist.Draw(rng), 1u);
  }
}

TEST(DiscreteTest, DrawFrequencies) {
  DiscreteDistribution dist({0.55, 0.22, 0.10, 0.09, 0.04});
  Rng rng(6);
  std::vector<int> counts(5, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[dist.Draw(rng)];
  }
  EXPECT_NEAR(counts[0], 55000, 1500);
  EXPECT_NEAR(counts[1], 22000, 1200);
  EXPECT_NEAR(counts[4], 4000, 600);
}

TEST(FlatLifetimeTest, BoundsRespected) {
  FlatLifetime flat(Hours(12), Hours(269));
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const SimDuration d = flat.NextLifetime(rng);
    EXPECT_GE(d, Hours(12));
    EXPECT_LE(d, Hours(269));
  }
}

TEST(FlatLifetimeTest, MeanIsMidpoint) {
  FlatLifetime flat(Hours(10), Hours(30));
  EXPECT_EQ(flat.MeanLifetime(), Hours(20));
  Rng rng(8);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(flat.NextLifetime(rng).seconds());
  }
  EXPECT_NEAR(sum / kN, Hours(20).seconds(), Hours(20).seconds() * 0.02);
}

TEST(FlatLifetimeTest, DegenerateRange) {
  FlatLifetime flat(Hours(5), Hours(5));
  Rng rng(9);
  EXPECT_EQ(flat.NextLifetime(rng), Hours(5));
}

TEST(ExponentialLifetimeTest, MeanMatches) {
  ExponentialLifetime exp_lt(Days(5));
  Rng rng(10);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(exp_lt.NextLifetime(rng).seconds());
  }
  EXPECT_NEAR(sum / kN, Days(5).seconds(), Days(5).seconds() * 0.03);
}

TEST(ExponentialLifetimeTest, NeverZero) {
  ExponentialLifetime exp_lt(Seconds(2));
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(exp_lt.NextLifetime(rng).seconds(), 1);
  }
}

TEST(BimodalLifetimeTest, MeanIsMixture) {
  BimodalLifetime bimodal(0.25, Days(1), Days(100));
  const double expected = 0.25 * Days(1).seconds() + 0.75 * Days(100).seconds();
  EXPECT_NEAR(static_cast<double>(bimodal.MeanLifetime().seconds()), expected, 1.0);
}

TEST(BimodalLifetimeTest, DrawMeanApproachesMixture) {
  BimodalLifetime bimodal(0.5, Days(1), Days(20));
  Rng rng(12);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(bimodal.NextLifetime(rng).seconds());
  }
  const double expected = 0.5 * Days(1).seconds() + 0.5 * Days(20).seconds();
  EXPECT_NEAR(sum / kN, expected, expected * 0.03);
}

TEST(BimodalLifetimeTest, IsGenuinelyBimodal) {
  // With hot mean 1d and cold mean 100d, draws should cluster: many below
  // 5 days AND many above 20 days.
  BimodalLifetime bimodal(0.5, Days(1), Days(100));
  Rng rng(13);
  int below = 0;
  int above = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const SimDuration d = bimodal.NextLifetime(rng);
    if (d < Days(5)) {
      ++below;
    }
    if (d > Days(20)) {
      ++above;
    }
  }
  EXPECT_GT(below, kN / 4);
  EXPECT_GT(above, kN / 4);
}

TEST(ImmutableLifetimeTest, EffectivelyInfinite) {
  ImmutableLifetime immutable;
  Rng rng(14);
  EXPECT_TRUE((SimTime::Epoch() + immutable.NextLifetime(rng)).IsInfinite());
}

}  // namespace
}  // namespace webcc
