#include "src/util/inline_vector.h"

#include <gtest/gtest.h>

#include "src/util/sim_time.h"

namespace webcc {
namespace {

TEST(InlineVectorTest, StartsEmpty) {
  InlineVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_EQ(v.begin(), v.end());
}

TEST(InlineVectorTest, PushBackWithinInlineCapacity) {
  InlineVector<int, 4> v;
  for (int i = 0; i < 4; ++i) {
    v.push_back(i * 10);
  }
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i * 10);
  }
}

TEST(InlineVectorTest, SpillsToHeapAndPreservesElements) {
  InlineVector<int, 2> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(InlineVectorTest, ClearKeepsCapacity) {
  InlineVector<int, 2> v;
  for (int i = 0; i < 50; ++i) {
    v.push_back(i);
  }
  const size_t grown = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), grown);  // refill up to the high-water mark is allocation-free
  v.push_back(7);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v.capacity(), grown);
}

TEST(InlineVectorTest, RangeForIteration) {
  InlineVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  v.push_back(3);
  int sum = 0;
  for (int x : v) {
    sum += x;
  }
  EXPECT_EQ(sum, 6);
}

TEST(InlineVectorTest, CopyConstructInline) {
  InlineVector<int, 4> a;
  a.push_back(5);
  a.push_back(6);
  InlineVector<int, 4> b(a);
  a.clear();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 5);
  EXPECT_EQ(b[1], 6);
}

TEST(InlineVectorTest, CopyConstructHeap) {
  InlineVector<int, 2> a;
  for (int i = 0; i < 20; ++i) {
    a.push_back(i);
  }
  InlineVector<int, 2> b(a);
  ASSERT_EQ(b.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(b[static_cast<size_t>(i)], i);
  }
}

TEST(InlineVectorTest, CopyAssignBothDirections) {
  InlineVector<int, 2> small;
  small.push_back(1);
  InlineVector<int, 2> big;
  for (int i = 0; i < 30; ++i) {
    big.push_back(i);
  }
  // big into small: must grow.
  InlineVector<int, 2> dst(small);
  dst = big;
  ASSERT_EQ(dst.size(), 30u);
  EXPECT_EQ(dst[29], 29);
  // small into big: shrinks logically, keeps capacity.
  big = small;
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0], 1);
}

TEST(InlineVectorTest, SelfAssignIsNoOp) {
  InlineVector<int, 2> v;
  for (int i = 0; i < 5; ++i) {
    v.push_back(i);
  }
  v = *&v;
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 4);
}

TEST(InlineVectorTest, HoldsSimTime) {
  InlineVector<SimTime, 8> v;
  for (int i = 0; i < 12; ++i) {
    v.push_back(SimTime::Epoch() + Seconds(i));
  }
  ASSERT_EQ(v.size(), 12u);
  EXPECT_EQ(v[11], SimTime::Epoch() + Seconds(11));
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(InlineVectorTest, OutOfRangeIndexDies) {
  InlineVector<int, 2> v;
  v.push_back(1);
  EXPECT_DEATH(v[1], "WEBCC_CHECK failed");
}

}  // namespace
}  // namespace webcc
