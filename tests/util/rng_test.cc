#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference outputs for seed 1234567, from the published splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.Next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.Next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.Next(), 9817491932198370423ULL);
}

TEST(SplitMix64Test, DistinctSeedsDistinctStreams) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int collisions = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xoshiro256Test, JumpDecorrelatesStreams) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256Test, NoShortCycle) {
  Xoshiro256 gen(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(gen.Next());
  }
  // All 10k outputs distinct (collisions astronomically unlikely).
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(2);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(4);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(6);
  constexpr int kBuckets = 7;
  constexpr int kN = 140000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.UniformInt(0, kBuckets - 1)];
  }
  const double expected = static_cast<double>(kN) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.05);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(8);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(10);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ParetoBoundedBelowByScale) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ParetoMeanMatchesFormula) {
  // Mean of Pareto(xm, alpha) = alpha*xm/(alpha-1) for alpha > 1.
  Rng rng(12);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Pareto(1.0, 3.0);
  }
  EXPECT_NEAR(sum / kN, 1.5, 0.03);
}

TEST(RngTest, LognormalMedianIsExpMu) {
  Rng rng(13);
  std::vector<double> draws;
  constexpr int kN = 50001;
  draws.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    draws.push_back(rng.Lognormal(2.0, 0.7));
  }
  std::nth_element(draws.begin(), draws.begin() + kN / 2, draws.end());
  EXPECT_NEAR(draws[kN / 2], std::exp(2.0), std::exp(2.0) * 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(14);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.engine().Next() == child.engine().Next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SameSeedSameSequenceAcrossHelperMix) {
  // Interleaving helper calls must stay deterministic.
  auto run = [] {
    Rng rng(99);
    std::vector<double> out;
    for (int i = 0; i < 50; ++i) {
      out.push_back(rng.NextDouble());
      out.push_back(static_cast<double>(rng.UniformInt(0, 100)));
      out.push_back(rng.Exponential(2.0));
      out.push_back(rng.Normal(0, 1));
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace webcc
