#include "src/util/sim_time.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(SimDurationTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Seconds(90).seconds(), 90);
  EXPECT_EQ(Minutes(2).seconds(), 120);
  EXPECT_EQ(Hours(3).seconds(), 10800);
  EXPECT_EQ(Days(2).seconds(), 172800);
  EXPECT_DOUBLE_EQ(Hours(36).days(), 1.5);
  EXPECT_DOUBLE_EQ(Minutes(90).hours(), 1.5);
}

TEST(SimDurationTest, Arithmetic) {
  EXPECT_EQ((Hours(1) + Minutes(30)).seconds(), 5400);
  EXPECT_EQ((Hours(1) - Minutes(30)).seconds(), 1800);
  EXPECT_EQ((-Hours(1)).seconds(), -3600);
  EXPECT_EQ((Minutes(10) * 6).seconds(), 3600);
  EXPECT_EQ((Hours(1) / 4).seconds(), 900);
  SimDuration d = Hours(1);
  d += Minutes(15);
  EXPECT_EQ(d.seconds(), 4500);
  d -= Minutes(15);
  EXPECT_EQ(d.seconds(), 3600);
}

TEST(SimDurationTest, Comparison) {
  EXPECT_LT(Minutes(59), Hours(1));
  EXPECT_EQ(Minutes(60), Hours(1));
  EXPECT_GT(Days(1), Hours(23));
}

TEST(SimDurationTest, ScaledByRounds) {
  EXPECT_EQ(Days(30).ScaledBy(0.10), Days(3));
  EXPECT_EQ(Seconds(10).ScaledBy(0.25), Seconds(3));  // 2.5 rounds to 3
  EXPECT_EQ(Seconds(10).ScaledBy(0.0), Seconds(0));
  EXPECT_EQ(Seconds(100).ScaledBy(1.5), Seconds(150));
}

TEST(SimDurationTest, FloatingBuilders) {
  EXPECT_EQ(SecondsF(1.4).seconds(), 1);
  EXPECT_EQ(SecondsF(1.6).seconds(), 2);
  EXPECT_EQ(HoursF(0.5).seconds(), 1800);
  EXPECT_EQ(DaysF(0.5).seconds(), 43200);
}

TEST(SimDurationTest, ToStringForms) {
  EXPECT_EQ(Seconds(5).ToString(), "5s");
  EXPECT_EQ(Seconds(65).ToString(), "1m 5s");
  EXPECT_EQ((Hours(1) + Seconds(1)).ToString(), "1h 0m 1s");
  EXPECT_EQ((Days(2) + Hours(3) + Minutes(15) + Seconds(42)).ToString(), "2d 3h 15m 42s");
  EXPECT_EQ((-Seconds(5)).ToString(), "-5s");
}

TEST(SimTimeTest, EpochAndAffineAlgebra) {
  const SimTime t0 = SimTime::Epoch();
  const SimTime t1 = t0 + Hours(2);
  EXPECT_EQ((t1 - t0), Hours(2));
  EXPECT_EQ((t0 - t1), -Hours(2));
  EXPECT_EQ(t1 - Hours(2), t0);
  SimTime t = t0;
  t += Days(1);
  EXPECT_EQ(t.seconds(), 86400);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::Epoch(), SimTime::Epoch() + Seconds(1));
  EXPECT_LT(SimTime::Epoch() - Seconds(1), SimTime::Epoch());
  EXPECT_LT(SimTime::Epoch() + Days(10000), SimTime::Infinite());
}

TEST(SimTimeTest, InfiniteSentinel) {
  EXPECT_TRUE(SimTime::Infinite().IsInfinite());
  EXPECT_FALSE(SimTime::Epoch().IsInfinite());
  EXPECT_EQ(SimTime::Infinite().ToString(), "inf");
}

TEST(SimTimeTest, NegativeTimesRepresentThePast) {
  // Objects last modified before the experiment start carry negative times.
  const SimTime past = SimTime::Epoch() - Days(30);
  EXPECT_EQ((SimTime::Epoch() - past), Days(30));
  EXPECT_LT(past, SimTime::Epoch());
}

TEST(SimTimeTest, ToStringFormat) {
  EXPECT_EQ(SimTime::Epoch().ToString(), "0+00:00:00");
  EXPECT_EQ((SimTime::Epoch() + Days(12) + Hours(7) + Minutes(30)).ToString(), "12+07:30:00");
}

}  // namespace
}  // namespace webcc
