#include "src/util/sim_time.h"

#include <cstdint>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(SimDurationTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Seconds(90).seconds(), 90);
  EXPECT_EQ(Minutes(2).seconds(), 120);
  EXPECT_EQ(Hours(3).seconds(), 10800);
  EXPECT_EQ(Days(2).seconds(), 172800);
  EXPECT_DOUBLE_EQ(Hours(36).days(), 1.5);
  EXPECT_DOUBLE_EQ(Minutes(90).hours(), 1.5);
}

TEST(SimDurationTest, Arithmetic) {
  EXPECT_EQ((Hours(1) + Minutes(30)).seconds(), 5400);
  EXPECT_EQ((Hours(1) - Minutes(30)).seconds(), 1800);
  EXPECT_EQ((-Hours(1)).seconds(), -3600);
  EXPECT_EQ((Minutes(10) * 6).seconds(), 3600);
  EXPECT_EQ((Hours(1) / 4).seconds(), 900);
  SimDuration d = Hours(1);
  d += Minutes(15);
  EXPECT_EQ(d.seconds(), 4500);
  d -= Minutes(15);
  EXPECT_EQ(d.seconds(), 3600);
}

TEST(SimDurationTest, Comparison) {
  EXPECT_LT(Minutes(59), Hours(1));
  EXPECT_EQ(Minutes(60), Hours(1));
  EXPECT_GT(Days(1), Hours(23));
}

TEST(SimDurationTest, ScaledByRounds) {
  EXPECT_EQ(Days(30).ScaledBy(0.10), Days(3));
  EXPECT_EQ(Seconds(10).ScaledBy(0.25), Seconds(3));  // 2.5 rounds to 3
  EXPECT_EQ(Seconds(10).ScaledBy(0.0), Seconds(0));
  EXPECT_EQ(Seconds(100).ScaledBy(1.5), Seconds(150));
}

TEST(SimDurationTest, FloatingBuilders) {
  EXPECT_EQ(SecondsF(1.4).seconds(), 1);
  EXPECT_EQ(SecondsF(1.6).seconds(), 2);
  EXPECT_EQ(HoursF(0.5).seconds(), 1800);
  EXPECT_EQ(DaysF(0.5).seconds(), 43200);
}

TEST(SimDurationTest, ToStringForms) {
  EXPECT_EQ(Seconds(5).ToString(), "5s");
  EXPECT_EQ(Seconds(65).ToString(), "1m 5s");
  EXPECT_EQ((Hours(1) + Seconds(1)).ToString(), "1h 0m 1s");
  EXPECT_EQ((Days(2) + Hours(3) + Minutes(15) + Seconds(42)).ToString(), "2d 3h 15m 42s");
  EXPECT_EQ((-Seconds(5)).ToString(), "-5s");
}

TEST(SimTimeTest, EpochAndAffineAlgebra) {
  const SimTime t0 = SimTime::Epoch();
  const SimTime t1 = t0 + Hours(2);
  EXPECT_EQ((t1 - t0), Hours(2));
  EXPECT_EQ((t0 - t1), -Hours(2));
  EXPECT_EQ(t1 - Hours(2), t0);
  SimTime t = t0;
  t += Days(1);
  EXPECT_EQ(t.seconds(), 86400);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::Epoch(), SimTime::Epoch() + Seconds(1));
  EXPECT_LT(SimTime::Epoch() - Seconds(1), SimTime::Epoch());
  EXPECT_LT(SimTime::Epoch() + Days(10000), SimTime::Infinite());
}

TEST(SimTimeTest, InfiniteSentinel) {
  EXPECT_TRUE(SimTime::Infinite().IsInfinite());
  EXPECT_FALSE(SimTime::Epoch().IsInfinite());
  EXPECT_EQ(SimTime::Infinite().ToString(), "inf");
}

TEST(SimTimeTest, NegativeTimesRepresentThePast) {
  // Objects last modified before the experiment start carry negative times.
  const SimTime past = SimTime::Epoch() - Days(30);
  EXPECT_EQ((SimTime::Epoch() - past), Days(30));
  EXPECT_LT(past, SimTime::Epoch());
}

TEST(SimTimeTest, ToStringFormat) {
  EXPECT_EQ(SimTime::Epoch().ToString(), "0+00:00:00");
  EXPECT_EQ((SimTime::Epoch() + Days(12) + Hours(7) + Minutes(30)).ToString(), "12+07:30:00");
}

// Regression tests for the overflow-checked arithmetic: UBSan flagged the
// old operators as silently wrapping (signed-integer-overflow) on extreme
// inputs; they now abort with the operation name.

TEST(SimDurationDeathTest, MultiplyOverflowAborts) {
  const SimDuration near_max = Seconds(INT64_MAX / 2);
  EXPECT_DEATH(near_max * 3, "int64 overflow in SimDuration \\*");
}

TEST(SimDurationDeathTest, AddAndSubtractOverflowAbort) {
  const SimDuration near_max = Seconds(INT64_MAX - 10);
  EXPECT_DEATH(near_max + near_max, "int64 overflow in SimDuration \\+");
  EXPECT_DEATH(Seconds(INT64_MIN + 10) - near_max, "int64 overflow in SimDuration -");
  EXPECT_DEATH(-Seconds(INT64_MIN), "int64 overflow in SimDuration unary -");
}

TEST(SimDurationDeathTest, DivideByZeroAborts) {
  EXPECT_DEATH(Hours(1) / 0, "int64 overflow in SimDuration /");
}

TEST(SimDurationDeathTest, BuilderOverflowAborts) {
  EXPECT_DEATH(Days(INT64_MAX / 1000), "int64 overflow in Days\\(\\)");
}

TEST(SimDurationDeathTest, ScaledByRejectsNonFiniteAndOutOfRange) {
  // llround on NaN/out-of-range is UB; RoundToInt64 aborts instead.
  EXPECT_DEATH(std::ignore = Hours(1).ScaledBy(std::numeric_limits<double>::quiet_NaN()),
               "non-finite");
  EXPECT_DEATH(std::ignore = Seconds(INT64_MAX / 2).ScaledBy(1e10), "overflows int64 seconds");
  EXPECT_DEATH(SecondsF(1e30), "overflows int64 seconds");
}

TEST(SimDurationTest, ToStringHandlesInt64Min) {
  // Negating INT64_MIN was UB in the old rendering path.
  const SimDuration min = Seconds(INT64_MIN);
  EXPECT_EQ(min.ToString().front(), '-');
  EXPECT_EQ(Seconds(INT64_MIN + 1).ToString(), "-106751991167300d 15h 30m 7s");
}

TEST(SimTimeDeathTest, ArithmeticOverflowAborts) {
  const SimTime far = SimTime(INT64_MAX - 5);
  EXPECT_DEATH(far + Seconds(10), "int64 overflow in SimTime \\+");
  EXPECT_DEATH(SimTime(INT64_MIN + 5) - Seconds(10), "int64 overflow in SimTime -");
  EXPECT_DEATH(SimTime(INT64_MIN + 5) - far, "int64 overflow in SimTime - SimTime");
}

TEST(SimTimeTest, ToStringHandlesInt64Min) {
  EXPECT_EQ(SimTime(INT64_MIN).ToString().front(), '-');
}

}  // namespace
}  // namespace webcc
