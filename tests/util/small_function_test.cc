#include "src/util/small_function.h"

#include <array>
#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(SmallFunctionTest, DefaultIsEmpty) {
  SmallFunction<int()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  SmallFunction<int()> g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(SmallFunctionTest, InvokesSmallCapture) {
  int x = 41;
  SmallFunction<int()> f = [&x] { return x + 1; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 42);
}

TEST(SmallFunctionTest, ForwardsArgumentsAndReturn) {
  SmallFunction<int(int, int)> f = [](int a, int b) { return a * 10 + b; };
  EXPECT_EQ(f(3, 4), 34);
}

TEST(SmallFunctionTest, MoveTransfersOwnership) {
  SmallFunction<int()> f = [] { return 7; };
  SmallFunction<int()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move) moved-from is empty by contract
  ASSERT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), 7);
}

TEST(SmallFunctionTest, MoveAssignmentDestroysOldTarget) {
  auto counter = std::make_shared<int>(0);
  SmallFunction<void()> f = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  f = [] {};  // old capture (and its shared_ptr) must be destroyed
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(SmallFunctionTest, MoveOnlyCapture) {
  auto p = std::make_unique<int>(5);
  SmallFunction<int()> f = [p = std::move(p)] { return *p; };
  SmallFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 5);
}

TEST(SmallFunctionTest, LargeCaptureUsesHeapPathCorrectly) {
  std::array<int64_t, 32> big{};  // 256 bytes: well past any inline budget
  big[0] = 1;
  big[31] = 2;
  SmallFunction<int64_t()> f = [big] { return big[0] + big[31]; };
  EXPECT_EQ(f(), 3);
  SmallFunction<int64_t()> g = std::move(f);
  EXPECT_EQ(g(), 3);
}

TEST(SmallFunctionTest, HeapTargetDestroyedExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  struct Big {
    std::shared_ptr<int> p;
    std::array<int64_t, 32> pad{};
    void operator()() const { ++*p; }
  };
  {
    SmallFunction<void()> f = Big{counter, {}};
    EXPECT_EQ(counter.use_count(), 2);
    SmallFunction<void()> g = std::move(f);
    g();
    EXPECT_EQ(*counter, 1);
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(SmallFunctionTest, SelfMoveAssignIsSafe) {
  SmallFunction<int()> f = [] { return 9; };
  SmallFunction<int()>& alias = f;
  f = std::move(alias);
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 9);
}

TEST(SmallFunctionTest, CapturedStateSurvivesManyMoves) {
  SmallFunction<std::string()> f = [s = std::string("payload")] { return s; };
  for (int i = 0; i < 10; ++i) {
    SmallFunction<std::string()> g = std::move(f);
    f = std::move(g);
  }
  EXPECT_EQ(f(), "payload");
}

}  // namespace
}  // namespace webcc
