#include "src/util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    ((i % 2 == 0) ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStat other;
  other.Merge(a);
  EXPECT_EQ(other.count(), 2);
  EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(QuantileTest, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0); }

TEST(QuantileTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 9.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 2.0), 2.0);
}

TEST(QuantileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bucket 0
  h.Add(3.0);   // bucket 1
  h.Add(9.9);   // bucket 4
  h.Add(-5.0);  // clamps to bucket 0
  h.Add(42.0);  // clamps to bucket 4
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.BucketCount(0), 2);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 0);
  EXPECT_EQ(h.BucketCount(4), 2);
}

TEST(HistogramTest, BucketEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(2), 15.0);
  EXPECT_EQ(h.num_buckets(), 4u);
}

}  // namespace
}  // namespace webcc
