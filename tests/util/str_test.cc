#include "src/util/str.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");

  const auto with_empty = Split("a,,c,", ',');
  ASSERT_EQ(with_empty.size(), 4u);
  EXPECT_EQ(with_empty[1], "");
  EXPECT_EQ(with_empty[3], "");
}

TEST(SplitTest, NoSeparator) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespaceTest, DropsRuns) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespaceTest, EmptyAndAllSpace) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n ").empty());
}

TEST(TrimTest, Variants) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(CaseTest, ToLowerAndCompare) {
  EXPECT_EQ(ToLower("HeLLo-123"), "hello-123");
  EXPECT_TRUE(EqualsIgnoreCase("If-Modified-Since", "if-modified-since"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "ab"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(ParseIntTest, ValidInputs) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-17"), -17);
  EXPECT_EQ(ParseInt("  99 "), 99);
  EXPECT_EQ(ParseInt("0"), 0);
}

TEST(ParseIntTest, InvalidInputs) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("abc").has_value());
  EXPECT_FALSE(ParseInt("12x").has_value());
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("99999999999999999999999").has_value());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x1").has_value());
  EXPECT_FALSE(ParseDouble("1.5z").has_value());
}

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string wide = StrFormat("%0500d", 1);
  EXPECT_EQ(wide.size(), 500u);
}

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(1536 * 1024), "1.50 MB");
}

TEST(FormatPercentTest, Defaults) {
  EXPECT_EQ(FormatPercent(0.0314), "3.14%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
  EXPECT_EQ(FormatPercent(1.0, 1), "100.0%");
}

}  // namespace
}  // namespace webcc
