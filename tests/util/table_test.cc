#include "src/util/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = t.ToString();
  // Header and both rows present, separated by a rule.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // All lines align: each line has the same position for the second column.
  const size_t name_col_width = std::string("longer").size() + 2;
  EXPECT_EQ(out.find("value"), out.find("name") + name_col_width);
}

TEST(TextTableTest, TitleRendersFirst) {
  TextTable t;
  t.SetTitle("My Table");
  t.SetHeader({"a"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  EXPECT_EQ(out.rfind("My Table", 0), 0u);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_NO_THROW(t.ToString());
}

TEST(TextTableTest, RowsWiderThanHeader) {
  TextTable t;
  t.SetHeader({"a"});
  t.AddRow({"1", "2", "3"});
  EXPECT_EQ(t.num_cols(), 3u);
}

TEST(TextTableTest, CsvBasic) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream oss;
  t.RenderCsv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TextTableTest, CsvEscapesSpecialCells) {
  TextTable t;
  t.AddRow({"plain", "with,comma", "with\"quote"});
  std::ostringstream oss;
  t.RenderCsv(oss);
  EXPECT_EQ(oss.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(TextTableTest, EmptyTable) {
  TextTable t;
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_cols(), 0u);
  EXPECT_EQ(t.ToString(), "");
}

}  // namespace
}  // namespace webcc
