#include "src/util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // no Wait(): destructor must finish the queue before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForMoreWorkersThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&hits](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on this thread, so the plain int is race-free.
  pool.ParallelFor(1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

// ThreadSanitizer-targeted stress: submissions racing from several producer
// threads while the pool's workers drain, repeated across generations. Run
// under -DWEBCC_SANITIZE=thread this hammers the queue/counter paths; any
// missing synchronization in Submit/Wait/WorkerLoop shows up as a TSan
// report rather than a flaky count.
TEST(ThreadPoolTest, ConcurrentProducersHammer) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &sum, p] {
        for (int i = 0; i < kTasksPerProducer; ++i) {
          pool.Submit([&sum, p, i] {
            sum.fetch_add(static_cast<int64_t>(p) * kTasksPerProducer + i,
                          std::memory_order_relaxed);
          });
        }
      });
    }
    for (std::thread& producer : producers) {
      producer.join();
    }
    pool.Wait();
  }
  int64_t expected_round = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kTasksPerProducer; ++i) {
      expected_round += static_cast<int64_t>(p) * kTasksPerProducer + i;
    }
  }
  EXPECT_EQ(sum.load(), 3 * expected_round);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedButUnstartedTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  // The single worker chews slowly through the first task while the rest
  // sit queued; Shutdown must run them all before joining.
  pool.Submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(30)); });
  for (int i = 0; i < 40; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 40);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentIncludingTheDestructor) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Shutdown();
    pool.Shutdown();  // second explicit call: no-op
  }  // destructor: third call, still a no-op
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ExceptionDuringShutdownDrainStillReachesWait) {
  ThreadPool pool(1);
  pool.Submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  pool.Submit([] { throw std::runtime_error("drained boom"); });
  pool.Shutdown();
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ElasticThreadPoolTest, RunsTasksWithMinimalOptions) {
  ElasticThreadPool::Options options;
  options.min_threads = 1;
  options.max_threads = 1;
  ElasticThreadPool pool(options);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.threads(), 1u);
  EXPECT_EQ(pool.peak_threads(), 1u);
}

TEST(ElasticThreadPoolTest, OptionsAreClampedToSanity) {
  ElasticThreadPool::Options options;
  options.min_threads = 5;
  options.max_threads = 0;  // max below min (and below 1): both clamp
  options.idle_timeout_ms = -7;
  ElasticThreadPool pool(options);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_GE(pool.threads(), 1u);
}

TEST(ElasticThreadPoolTest, GrowsOnDemandUpToMaxWhenAllWorkersBlock) {
  constexpr size_t kMax = 4;
  ElasticThreadPool::Options options;
  options.min_threads = 1;
  options.max_threads = kMax;
  options.idle_timeout_ms = 10'000;  // no shrink during the test
  ElasticThreadPool pool(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<size_t> running{0};
  for (size_t i = 0; i < kMax; ++i) {
    pool.Submit([&] {
      running.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
  }
  // All kMax tasks must end up running simultaneously: the pool grew.
  for (int spin = 0; spin < 2000 && running.load() < kMax; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(running.load(), kMax);
  EXPECT_EQ(pool.threads(), kMax);
  EXPECT_EQ(pool.peak_threads(), kMax);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
}

TEST(ElasticThreadPoolTest, SurplusWorkersExitAfterIdleTimeout) {
  ElasticThreadPool::Options options;
  options.min_threads = 1;
  options.max_threads = 4;
  options.idle_timeout_ms = 20;
  ElasticThreadPool pool(options);

  std::atomic<int> counter{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      counter.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 4);
  const size_t peak = pool.peak_threads();
  EXPECT_GE(peak, 2u);
  // Surplus workers drain back toward min once idle; give the timeout a
  // generous grace period before asserting.
  for (int spin = 0; spin < 5000 && pool.threads() > 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.threads(), 1u);
  EXPECT_EQ(pool.peak_threads(), peak);  // the high-water mark survives
}

TEST(ElasticThreadPoolTest, WaitRethrowsFirstTaskException) {
  ElasticThreadPool::Options options;
  options.min_threads = 2;
  options.max_threads = 4;
  ElasticThreadPool pool(options);
  pool.Submit([] { throw std::runtime_error("elastic boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([] {});
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool keeps working after a rethrow.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ElasticThreadPoolTest, ShutdownDrainsAndIsIdempotent) {
  std::atomic<int> counter{0};
  {
    ElasticThreadPool::Options options;
    options.min_threads = 1;
    options.max_threads = 2;
    ElasticThreadPool pool(options);
    pool.Submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Shutdown();
    EXPECT_EQ(counter.load(), 30);
    EXPECT_EQ(pool.threads(), 0u);
    pool.Shutdown();  // no-op
  }  // destructor: also a no-op
  EXPECT_EQ(counter.load(), 30);
}

TEST(ElasticThreadPoolTest, ConcurrentProducersHammer) {
  constexpr int kProducers = 6;
  constexpr int kTasksPerProducer = 400;
  ElasticThreadPool::Options options;
  options.min_threads = 1;
  options.max_threads = 8;
  options.idle_timeout_ms = 5;  // aggressive shrink while the hammer runs
  ElasticThreadPool pool(options);
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        const int64_t value = static_cast<int64_t>(p) * kTasksPerProducer + i;
        pool.Submit([&sum, value] { sum.fetch_add(value, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  pool.Wait();
  int64_t expected = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kTasksPerProducer; ++i) {
      expected += static_cast<int64_t>(p) * kTasksPerProducer + i;
    }
  }
  EXPECT_EQ(sum.load(), expected);
  EXPECT_LE(pool.peak_threads(), 8u);
  EXPECT_GE(pool.peak_threads(), 1u);
}

TEST(ResolveJobsTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveJobs(3), 3u);
  EXPECT_EQ(ResolveJobs(1), 1u);
}

TEST(ResolveJobsTest, AutoReadsEnvironment) {
  ASSERT_EQ(setenv("WEBCC_JOBS", "5", 1), 0);
  EXPECT_EQ(ResolveJobs(0), 5u);
  ASSERT_EQ(setenv("WEBCC_JOBS", "not-a-number", 1), 0);
  EXPECT_EQ(ResolveJobs(0), HardwareJobs());
  ASSERT_EQ(unsetenv("WEBCC_JOBS"), 0);
  EXPECT_EQ(ResolveJobs(0), HardwareJobs());
}

TEST(ResolveJobsTest, HardwareJobsIsPositive) { EXPECT_GE(HardwareJobs(), 1u); }

}  // namespace
}  // namespace webcc
