#include "src/util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // no Wait(): destructor must finish the queue before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForMoreWorkersThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&hits](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on this thread, so the plain int is race-free.
  pool.ParallelFor(1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

// ThreadSanitizer-targeted stress: submissions racing from several producer
// threads while the pool's workers drain, repeated across generations. Run
// under -DWEBCC_SANITIZE=thread this hammers the queue/counter paths; any
// missing synchronization in Submit/Wait/WorkerLoop shows up as a TSan
// report rather than a flaky count.
TEST(ThreadPoolTest, ConcurrentProducersHammer) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&pool, &sum, p] {
        for (int i = 0; i < kTasksPerProducer; ++i) {
          pool.Submit([&sum, p, i] {
            sum.fetch_add(static_cast<int64_t>(p) * kTasksPerProducer + i,
                          std::memory_order_relaxed);
          });
        }
      });
    }
    for (std::thread& producer : producers) {
      producer.join();
    }
    pool.Wait();
  }
  int64_t expected_round = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kTasksPerProducer; ++i) {
      expected_round += static_cast<int64_t>(p) * kTasksPerProducer + i;
    }
  }
  EXPECT_EQ(sum.load(), 3 * expected_round);
}

TEST(ResolveJobsTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveJobs(3), 3u);
  EXPECT_EQ(ResolveJobs(1), 1u);
}

TEST(ResolveJobsTest, AutoReadsEnvironment) {
  ASSERT_EQ(setenv("WEBCC_JOBS", "5", 1), 0);
  EXPECT_EQ(ResolveJobs(0), 5u);
  ASSERT_EQ(setenv("WEBCC_JOBS", "not-a-number", 1), 0);
  EXPECT_EQ(ResolveJobs(0), HardwareJobs());
  ASSERT_EQ(unsetenv("WEBCC_JOBS"), 0);
  EXPECT_EQ(ResolveJobs(0), HardwareJobs());
}

TEST(ResolveJobsTest, HardwareJobsIsPositive) { EXPECT_GE(HardwareJobs(), 1u); }

}  // namespace
}  // namespace webcc
