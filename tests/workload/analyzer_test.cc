#include "src/workload/analyzer.h"

#include "src/util/str.h"

#include <cmath>
#include <map>
#include <set>
#include <algorithm>

#include <gtest/gtest.h>

namespace webcc {
namespace {

Workload MutabilityFixture() {
  // 4 objects: one immutable, one changed once, one changed twice (mutable),
  // one changed six times (very mutable).
  Workload load;
  load.name = "fixture";
  for (int i = 0; i < 4; ++i) {
    load.objects.push_back(ObjectSpec{StrFormat("/o%d", i), FileType::kHtml, 100, Days(1)});
  }
  load.horizon = SimTime::Epoch() + Days(30);
  auto change = [&](uint32_t obj, int64_t hours) {
    load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Hours(hours), obj, -1});
  };
  change(1, 1);
  change(2, 2);
  change(2, 3);
  for (int i = 0; i < 6; ++i) {
    change(3, 10 + i);
  }
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(1), 0, 0, false});
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(2), 1, 1, true});
  load.Finalize();
  return load;
}

TEST(MutabilityAnalysisTest, PaperDefinitions) {
  const MutabilityStats stats = AnalyzeWorkloadMutability(MutabilityFixture());
  EXPECT_EQ(stats.server, "fixture");
  EXPECT_EQ(stats.files, 4u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.total_changes, 9u);
  // Mutable = changed MORE THAN once (objects 2 and 3).
  EXPECT_DOUBLE_EQ(stats.mutable_fraction, 0.5);
  // Very mutable = changed MORE THAN 5 times (object 3 only).
  EXPECT_DOUBLE_EQ(stats.very_mutable_fraction, 0.25);
  EXPECT_DOUBLE_EQ(stats.remote_fraction, 0.5);
}

TEST(MutabilityAnalysisTest, PerDayChangeProbability) {
  const MutabilityStats stats = AnalyzeWorkloadMutability(MutabilityFixture());
  // 9 changes / (4 files * 30 days).
  EXPECT_NEAR(stats.PerDayChangeProbability(30.0), 0.075, 1e-9);
  EXPECT_DOUBLE_EQ(stats.PerDayChangeProbability(0.0), 0.0);
}

TEST(MutabilityAnalysisTest, TraceAnalysisSeesOnlyObservableChanges) {
  // Render the fixture's trace with NO requests after the changes to most
  // objects: the log can't observe them.
  Workload truth = MutabilityFixture();
  const Trace trace = RenderTraceFromWorkload(truth, "obs");
  const MutabilityStats observed = AnalyzeTraceMutability(trace);
  // Requests happen at hours 1 and 2; only object 1's change at hour 1 and
  // object 2's change at hour 2 could be visible (LM <= request time), and
  // in fact the hour-2 request targets object 1.
  EXPECT_LE(observed.total_changes, 1u);
}

TEST(MutabilityAnalysisTest, DenseRequestsObserveEverything) {
  Workload truth = MutabilityFixture();
  // Add a request to every object every hour: all transitions observable.
  truth.requests.clear();
  for (int h = 0; h <= 24; ++h) {
    for (uint32_t o = 0; o < 4; ++o) {
      truth.requests.push_back(
          RequestEvent{SimTime::Epoch() + Hours(h) + Minutes(30), o, o, false});
    }
  }
  truth.Finalize();
  const MutabilityStats observed = AnalyzeTraceMutability(RenderTraceFromWorkload(truth, "d"));
  EXPECT_EQ(observed.total_changes, 9u);
  EXPECT_DOUBLE_EQ(observed.mutable_fraction, 0.5);
  EXPECT_DOUBLE_EQ(observed.very_mutable_fraction, 0.25);
}

TEST(AccessMixAnalysisTest, SharesAndSizes) {
  std::vector<AccessLogRecord> log;
  for (int i = 0; i < 6; ++i) {
    log.push_back({SimTime(i), "/a.gif", FileType::kGif, 1000});
  }
  for (int i = 0; i < 4; ++i) {
    log.push_back({SimTime(10 + i), "/b.html", FileType::kHtml, 500});
  }
  const auto rows = AnalyzeAccessMix(log);
  ASSERT_EQ(rows.size(), static_cast<size_t>(kNumFileTypes));
  EXPECT_DOUBLE_EQ(rows[static_cast<size_t>(FileType::kGif)].access_share, 0.6);
  EXPECT_DOUBLE_EQ(rows[static_cast<size_t>(FileType::kGif)].mean_size_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(rows[static_cast<size_t>(FileType::kHtml)].access_share, 0.4);
  EXPECT_DOUBLE_EQ(rows[static_cast<size_t>(FileType::kJpg)].access_share, 0.0);
}

TEST(AccessMixAnalysisTest, EmptyLog) {
  const auto rows = AnalyzeAccessMix({});
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.access_share, 0.0);
    EXPECT_EQ(row.access_count, 0u);
  }
}

TEST(BuLifespanAnalysisTest, ConservativeCensoring) {
  BuModificationLog log;
  log.num_days = 100;
  log.changed_by_day.resize(100);
  // File 0: never changes -> lifespan = window (assumed changed once).
  // File 1: changes on 4 days -> lifespan = 25.
  log.files.push_back({"/never.gif", FileType::kGif});
  log.files.push_back({"/often.gif", FileType::kGif});
  for (int d : {10, 30, 50, 70}) {
    log.changed_by_day[d].push_back(1);
  }
  const auto rows = AnalyzeBuLifespans(log);
  const auto& gif = rows[static_cast<size_t>(FileType::kGif)];
  EXPECT_EQ(gif.file_count, 2u);
  // Median of {100, 25} with interpolation = 62.5.
  EXPECT_DOUBLE_EQ(gif.median_lifespan_days, 62.5);
  // Ages: never-changed -> 100; last change day 70 -> 30. Mean 65.
  EXPECT_DOUBLE_EQ(gif.mean_age_days, 65.0);
}

TEST(MergeTypeStatsTest, JoinsColumns) {
  std::vector<FileTypeStats> microsoft(kNumFileTypes);
  std::vector<FileTypeStats> bu(kNumFileTypes);
  for (int t = 0; t < kNumFileTypes; ++t) {
    microsoft[t].type = static_cast<FileType>(t);
    bu[t].type = static_cast<FileType>(t);
  }
  microsoft[0].access_share = 0.55;
  microsoft[0].mean_size_bytes = 7791;
  bu[0].mean_age_days = 85;
  bu[0].median_lifespan_days = 146;
  const auto merged = MergeTypeStats(microsoft, bu);
  EXPECT_DOUBLE_EQ(merged[0].access_share, 0.55);
  EXPECT_DOUBLE_EQ(merged[0].mean_size_bytes, 7791);
  EXPECT_DOUBLE_EQ(merged[0].mean_age_days, 85);
  EXPECT_DOUBLE_EQ(merged[0].median_lifespan_days, 146);
}

TEST(EndToEndTable2Test, GeneratedDataProducesPaperShape) {
  MicrosoftMixConfig mix;
  mix.num_requests = 40000;
  const auto access_rows = AnalyzeAccessMix(GenerateMicrosoftAccessLog(mix));
  const auto bu_rows = AnalyzeBuLifespans(GenerateBuModificationLog(BuModLogConfig{}));
  const auto merged = MergeTypeStats(access_rows, bu_rows);

  const auto& gif = merged[static_cast<size_t>(FileType::kGif)];
  const auto& html = merged[static_cast<size_t>(FileType::kHtml)];
  const auto& jpg = merged[static_cast<size_t>(FileType::kJpg)];
  const auto& cgi = merged[static_cast<size_t>(FileType::kCgi)];

  // Access mix ordering: gif > html > jpg > cgi.
  EXPECT_GT(gif.access_share, html.access_share);
  EXPECT_GT(html.access_share, jpg.access_share);
  EXPECT_GT(jpg.access_share, cgi.access_share);
  // Images live longest ("the most popular web objects also have the
  // longest life-span"); cgi churns.
  EXPECT_GT(gif.mean_age_days, cgi.mean_age_days);
  EXPECT_GT(jpg.mean_age_days, html.mean_age_days);
  // Images are relatively small: gif mean size below jpg.
  EXPECT_LT(gif.mean_size_bytes, jpg.mean_size_bytes);
}

}  // namespace
}  // namespace webcc
