#include "src/workload/campus.h"

#include <cmath>
#include <map>
#include <set>
#include <algorithm>

#include <gtest/gtest.h>

#include "src/workload/analyzer.h"

namespace webcc {
namespace {

TEST(CampusProfileTest, Table1RowsMatchPaper) {
  const auto das = CampusServerProfile::Das();
  EXPECT_EQ(das.num_files, 1403u);
  EXPECT_EQ(das.num_requests, 30093u);
  EXPECT_DOUBLE_EQ(das.remote_fraction, 0.84);
  EXPECT_EQ(das.total_changes, 321u);

  const auto fas = CampusServerProfile::Fas();
  EXPECT_EQ(fas.num_files, 290u);
  EXPECT_EQ(fas.num_requests, 56660u);
  EXPECT_EQ(fas.total_changes, 11u);
  EXPECT_DOUBLE_EQ(fas.very_mutable_fraction, 0.0);

  const auto hcs = CampusServerProfile::Hcs();
  EXPECT_EQ(hcs.num_files, 573u);
  EXPECT_EQ(hcs.total_changes, 260u);
  EXPECT_EQ(hcs.duration_days, 25u);  // "573 files changing 260 times over 25 days"

  EXPECT_EQ(CampusServerProfile::AllTable1().size(), 3u);
}

class CampusGenTest : public ::testing::TestWithParam<const char*> {
 protected:
  static CampusServerProfile ProfileFor(const std::string& name) {
    if (name == "DAS") {
      return CampusServerProfile::Das();
    }
    if (name == "FAS") {
      return CampusServerProfile::Fas();
    }
    return CampusServerProfile::Hcs();
  }
};

TEST_P(CampusGenTest, WorkloadValidAndExactlyCalibrated) {
  const CampusServerProfile profile = ProfileFor(GetParam());
  const CampusGenerationResult result = GenerateCampusWorkload(profile);
  const Workload& load = result.workload;

  EXPECT_EQ(load.Validate(), "");
  // Exact: file count, request count, total changes.
  EXPECT_EQ(load.objects.size(), profile.num_files);
  EXPECT_EQ(load.requests.size(), profile.num_requests);
  EXPECT_EQ(load.modifications.size(), profile.total_changes);
  // Approximate: remote fraction (Bernoulli).
  EXPECT_NEAR(load.RemoteFraction(), profile.remote_fraction, 0.02);
  // Horizon matches the trace duration.
  EXPECT_EQ(load.horizon, SimTime::Epoch() + Days(profile.duration_days));
}

TEST_P(CampusGenTest, TraceMatchesWorkload) {
  const CampusGenerationResult result = GenerateCampusWorkload(ProfileFor(GetParam()));
  EXPECT_EQ(result.trace.records.size(), result.workload.requests.size());
  // Every record's Last-Modified must not postdate its request.
  for (const TraceRecord& r : result.trace.records) {
    EXPECT_LE(r.last_modified, r.timestamp);
  }
}

TEST_P(CampusGenTest, GroundTruthMutabilityNearTargets) {
  const CampusServerProfile profile = ProfileFor(GetParam());
  const CampusGenerationResult result = GenerateCampusWorkload(profile);
  const MutabilityStats stats = AnalyzeWorkloadMutability(result.workload);
  EXPECT_EQ(stats.total_changes, profile.total_changes);
  // The generator reports its feasibility-repaired achieved counts; the
  // analyzer must agree with them.
  EXPECT_EQ(stats.mutable_fraction,
            static_cast<double>(result.mutable_files) / profile.num_files);
  EXPECT_EQ(stats.very_mutable_fraction,
            static_cast<double>(result.very_mutable_files) / profile.num_files);
  // And the repaired counts never exceed the paper's targets beyond the
  // half-file slack inherent in rounding fractions to whole files.
  const double half_file = 0.5 / profile.num_files;
  EXPECT_LE(stats.mutable_fraction, profile.mutable_fraction + half_file);
  EXPECT_LE(stats.very_mutable_fraction, profile.very_mutable_fraction + half_file);
}

TEST_P(CampusGenTest, Deterministic) {
  const CampusServerProfile profile = ProfileFor(GetParam());
  const auto a = GenerateCampusWorkload(profile);
  const auto b = GenerateCampusWorkload(profile);
  ASSERT_EQ(a.workload.requests.size(), b.workload.requests.size());
  for (size_t i = 0; i < a.workload.requests.size(); i += 501) {
    EXPECT_EQ(a.workload.requests[i].at, b.workload.requests[i].at);
    EXPECT_EQ(a.workload.requests[i].object_index, b.workload.requests[i].object_index);
  }
}

INSTANTIATE_TEST_SUITE_P(Table1Servers, CampusGenTest, ::testing::Values("DAS", "FAS", "HCS"));

TEST(CampusGenTest2, PopularFilesChangeLeast) {
  // Bestavros's coupling: aggregate requests to mutable files must be well
  // below their population share (they sit in the unpopular band).
  const CampusGenerationResult result = GenerateCampusWorkload(CampusServerProfile::Hcs());
  const Workload& load = result.workload;
  std::vector<uint64_t> changes(load.objects.size(), 0);
  for (const ModificationEvent& m : load.modifications) {
    ++changes[m.object_index];
  }
  uint64_t requests_to_mutable = 0;
  uint64_t mutable_files = 0;
  for (size_t i = 0; i < changes.size(); ++i) {
    if (changes[i] > 0) {
      ++mutable_files;
    }
  }
  for (const RequestEvent& r : load.requests) {
    if (changes[r.object_index] > 0) {
      ++requests_to_mutable;
    }
  }
  const double request_share =
      static_cast<double>(requests_to_mutable) / static_cast<double>(load.requests.size());
  const double population_share =
      static_cast<double>(mutable_files) / static_cast<double>(load.objects.size());
  EXPECT_LT(request_share, population_share);
}

TEST(CampusGenTest2, ChangesClusterInBursts) {
  // Per-file change spans should be far shorter than the full run for most
  // mutable files (the bimodal "hot period" structure).
  const CampusGenerationResult result = GenerateCampusWorkload(CampusServerProfile::Das());
  const Workload& load = result.workload;
  std::map<uint32_t, std::pair<SimTime, SimTime>> span;
  std::map<uint32_t, int> count;
  for (const ModificationEvent& m : load.modifications) {
    auto [it, fresh] = span.try_emplace(m.object_index, m.at, m.at);
    if (!fresh) {
      it->second.first = std::min(it->second.first, m.at);
      it->second.second = std::max(it->second.second, m.at);
    }
    ++count[m.object_index];
  }
  int bursty = 0;
  int multi = 0;
  for (const auto& [obj, minmax] : span) {
    if (count[obj] >= 3) {
      ++multi;
      if ((minmax.second - minmax.first) < Days(10)) {
        ++bursty;
      }
    }
  }
  ASSERT_GT(multi, 0);
  EXPECT_GT(static_cast<double>(bursty) / multi, 0.5);
}

TEST(CampusGenTest2, MutablePlacementControlsCoupling) {
  auto request_share_to_mutable = [](MutablePlacement placement) {
    CampusServerProfile profile = CampusServerProfile::Hcs();
    profile.mutable_placement = placement;
    const Workload load = GenerateCampusWorkload(profile).workload;
    std::vector<bool> is_mutable(load.objects.size(), false);
    for (const ModificationEvent& m : load.modifications) {
      is_mutable[m.object_index] = true;
    }
    uint64_t to_mutable = 0;
    for (const RequestEvent& r : load.requests) {
      to_mutable += is_mutable[r.object_index] ? 1 : 0;
    }
    return static_cast<double>(to_mutable) / static_cast<double>(load.requests.size());
  };
  const double unpopular = request_share_to_mutable(MutablePlacement::kUnpopular);
  const double uniform = request_share_to_mutable(MutablePlacement::kUniform);
  const double popular = request_share_to_mutable(MutablePlacement::kPopular);
  EXPECT_LT(unpopular, uniform);
  EXPECT_LT(uniform, popular);
  EXPECT_GT(popular, 0.4);  // the hottest ranks dominate the Zipf mass
}

TEST(CampusGenTest2, PlacementPreservesCalibration) {
  for (const MutablePlacement placement :
       {MutablePlacement::kUniform, MutablePlacement::kPopular}) {
    CampusServerProfile profile = CampusServerProfile::Das();
    profile.mutable_placement = placement;
    const auto result = GenerateCampusWorkload(profile);
    EXPECT_EQ(result.workload.Validate(), "");
    EXPECT_EQ(result.workload.modifications.size(), profile.total_changes);
    EXPECT_EQ(result.workload.requests.size(), profile.num_requests);
  }
}

TEST(CampusGenTest2, PerDayChangeProbabilityInBestavrosRange) {
  // §4.2: trace change probabilities land around 0.5–2.0%/day.
  for (const auto& profile : CampusServerProfile::AllTable1()) {
    const auto result = GenerateCampusWorkload(profile);
    const MutabilityStats stats = AnalyzeWorkloadMutability(result.workload);
    const double per_day = stats.PerDayChangeProbability(profile.duration_days);
    EXPECT_LT(per_day, 0.025) << profile.name;
  }
}

}  // namespace
}  // namespace webcc
