#include "src/workload/clf.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/http/date.h"

namespace webcc {
namespace {

constexpr char kClassicLine[] =
    R"(wpbfl2-45.gate.net - - [10/Oct/1995:13:55:36 -0700] "GET /apollo.gif HTTP/1.0" 200 2326)";

TEST(ClfParseTest, ClassicLine) {
  const auto record = ParseClfLine(kClassicLine);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->host, "wpbfl2-45.gate.net");
  EXPECT_EQ(record->uri, "/apollo.gif");
  EXPECT_EQ(record->status, 200);
  EXPECT_EQ(record->bytes, 2326);
  EXPECT_FALSE(record->last_modified.has_value());
  // 13:55:36 -0700 == 20:55:36 GMT.
  const CivilDateTime c = CivilFromSimTime(record->timestamp);
  EXPECT_EQ(c, (CivilDateTime{1995, 10, 10, 20, 55, 36}));
}

TEST(ClfParseTest, PositiveZoneOffset) {
  const auto record = ParseClfLine(
      R"(h - - [01/Jan/1996:01:30:00 +0200] "GET /x HTTP/1.0" 200 1)");
  ASSERT_TRUE(record.has_value());
  // 01:30 +0200 == 23:30 GMT the previous day.
  const CivilDateTime c = CivilFromSimTime(record->timestamp);
  EXPECT_EQ(c, (CivilDateTime{1995, 12, 31, 23, 30, 0}));
}

TEST(ClfParseTest, LastModifiedExtension) {
  const auto record = ParseClfLine(
      R"(h - - [10/Oct/1995:13:55:36 -0700] "GET /a.gif HTTP/1.0" 200 2326 "Sun, 08 Oct 1995 04:00:00 GMT")");
  ASSERT_TRUE(record.has_value());
  ASSERT_TRUE(record->last_modified.has_value());
  EXPECT_EQ(CivilFromSimTime(*record->last_modified),
            (CivilDateTime{1995, 10, 8, 4, 0, 0}));
}

TEST(ClfParseTest, DashBytesMeansZero) {
  const auto record =
      ParseClfLine(R"(h - - [10/Oct/1995:13:55:36 -0700] "GET /x HTTP/1.0" 304 -)");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->bytes, 0);
  EXPECT_EQ(record->status, 304);
}

TEST(ClfParseTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseClfLine("").has_value());
  EXPECT_FALSE(ParseClfLine("# comment").has_value());
  EXPECT_FALSE(ParseClfLine("no brackets here").has_value());
  EXPECT_FALSE(ParseClfLine(R"(h - [10/Oct/1995:13:55:36 -0700] "GET /x HTTP/1.0" 200 1)")
                   .has_value());  // only 2 prefix fields
  EXPECT_FALSE(
      ParseClfLine(R"(h - - [99/Oct/1995:13:55:36 -0700] "GET /x HTTP/1.0" 200 1)").has_value());
  EXPECT_FALSE(
      ParseClfLine(R"(h - - [10/Oct/1995:13:55:36 -0700] "GET /x HTTP/1.0" abc 1)").has_value());
  EXPECT_FALSE(ParseClfLine(R"(h - - [10/Oct/1995:13:55:36 -0700] "GETONLY" 200 1)").has_value());
  // Present but bogus LM extension is a hard reject.
  EXPECT_FALSE(ParseClfLine(
                   R"(h - - [10/Oct/1995:13:55:36 -0700] "GET /x HTTP/1.0" 200 1 "not a date")")
                   .has_value());
}

TEST(ClfReadTest, BuildsRebasedSortedTrace) {
  std::istringstream is(
      R"(remote1.com - - [02/Jan/1996:10:00:00 +0000] "GET /b.html HTTP/1.0" 200 500
local1.campus.edu - - [01/Jan/1996:09:00:00 +0000] "GET /a.html HTTP/1.0" 200 100 "Mon, 01 Jan 1996 03:00:00 GMT"
junk line that does not parse
remote2.com - - [03/Jan/1996:12:00:00 +0000] "GET /a.html HTTP/1.0" 404 0
)");
  ClfParseOptions options;
  options.local_suffix = ".campus.edu";
  ClfReadStats stats;
  const Trace trace = ReadClfTrace(is, options, &stats);

  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.skipped_malformed, 1u);
  EXPECT_EQ(stats.skipped_status, 1u);  // the 404

  ASSERT_EQ(trace.records.size(), 2u);
  // Rebased: the earliest record sits at the epoch.
  EXPECT_EQ(trace.records[0].timestamp, SimTime::Epoch());
  EXPECT_EQ(trace.records[0].uri, "/a.html");
  EXPECT_FALSE(trace.records[0].remote);
  // Its Last-Modified keeps the same relative offset (6 hours earlier).
  EXPECT_EQ(trace.records[0].last_modified, SimTime::Epoch() - Hours(6));
  // The next day's record is 25 hours later.
  EXPECT_EQ(trace.records[1].timestamp, SimTime::Epoch() + Hours(25));
  EXPECT_TRUE(trace.records[1].remote);
}

TEST(ClfReadTest, StampLessObjectsGetFirstSeenLm) {
  std::istringstream is(
      R"(h1 - - [01/Jan/1996:00:00:00 +0000] "GET /x HTTP/1.0" 200 10
h2 - - [01/Jan/1996:05:00:00 +0000] "GET /x HTTP/1.0" 200 10
)");
  const Trace trace = ReadClfTrace(is);
  ASSERT_EQ(trace.records.size(), 2u);
  EXPECT_EQ(trace.records[0].last_modified, trace.records[0].timestamp);
  // Second sighting keeps the FIRST sighting's stamp: no phantom change.
  EXPECT_EQ(trace.records[1].last_modified, trace.records[0].timestamp);
}

TEST(ClfReadTest, ResultFeedsTheCompiler) {
  std::istringstream is(
      R"(h - - [01/Jan/1996:00:00:00 +0000] "GET /x.html HTTP/1.0" 200 10 "Sun, 31 Dec 1995 00:00:00 GMT"
h - - [02/Jan/1996:00:00:00 +0000] "GET /x.html HTTP/1.0" 200 12 "Mon, 01 Jan 1996 12:00:00 GMT"
)");
  const Trace trace = ReadClfTrace(is);
  const Workload load = CompileTrace(trace);
  EXPECT_EQ(load.Validate(), "");
  EXPECT_EQ(load.objects.size(), 1u);
  EXPECT_EQ(load.requests.size(), 2u);
  ASSERT_EQ(load.modifications.size(), 1u);  // the LM transition
  EXPECT_EQ(load.objects[0].initial_age, Days(1));
}

TEST(ClfReadTest, ClockSkewClamped) {
  // LM stamp AFTER the request time (broken server clock): clamped.
  std::istringstream is(
      R"(h - - [01/Jan/1996:00:00:00 +0000] "GET /x HTTP/1.0" 200 10 "Mon, 01 Jan 1996 05:00:00 GMT"
)");
  const Trace trace = ReadClfTrace(is);
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_LE(trace.records[0].last_modified, trace.records[0].timestamp);
}

TEST(ClfWriteTest, RoundTripsThroughReader) {
  Trace original;
  original.source = "rt";
  original.records.push_back(
      {SimTime::Epoch(), "local1.campus.edu", "/a.html", 500, SimTime::Epoch() - Days(3), false});
  original.records.push_back({SimTime::Epoch() + Hours(5), "remote9.example.com", "/b.gif", 800,
                              SimTime::Epoch() + Hours(1), true});
  std::stringstream ss;
  WriteClfTrace(original, ss);

  ClfParseOptions options;
  options.local_suffix = ".campus.edu";
  ClfReadStats stats;
  const Trace parsed = ReadClfTrace(ss, options, &stats);
  EXPECT_EQ(stats.skipped_malformed, 0u);
  ASSERT_EQ(parsed.records.size(), 2u);
  // Timestamps are rebased to the first record; the original already starts
  // at the epoch so everything matches exactly.
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed.records[i].timestamp, original.records[i].timestamp) << i;
    EXPECT_EQ(parsed.records[i].uri, original.records[i].uri) << i;
    EXPECT_EQ(parsed.records[i].size_bytes, original.records[i].size_bytes) << i;
    EXPECT_EQ(parsed.records[i].last_modified, original.records[i].last_modified) << i;
    EXPECT_EQ(parsed.records[i].remote, original.records[i].remote) << i;
  }
}

TEST(ClfReadTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadClfTraceFile("/nonexistent/access.log").has_value());
}

TEST(ClfReadTest, IncludeErrorsOption) {
  std::istringstream is(
      R"(h - - [01/Jan/1996:00:00:00 +0000] "GET /x HTTP/1.0" 404 0
)");
  ClfParseOptions options;
  options.include_errors = true;
  const Trace trace = ReadClfTrace(is, options);
  EXPECT_EQ(trace.records.size(), 1u);
}

}  // namespace
}  // namespace webcc
