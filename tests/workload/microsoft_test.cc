#include "src/workload/microsoft.h"

#include <cmath>
#include <map>
#include <set>
#include <algorithm>

#include <gtest/gtest.h>

namespace webcc {
namespace {

MicrosoftMixConfig SmallMixConfig() {
  MicrosoftMixConfig config;
  config.num_requests = 30000;
  config.seed = 77;
  return config;
}

TEST(MicrosoftMixTest, GeneratesRequestedCount) {
  const auto log = GenerateMicrosoftAccessLog(SmallMixConfig());
  EXPECT_EQ(log.size(), 30000u);
}

TEST(MicrosoftMixTest, TimestampsSortedWithinDuration) {
  const MicrosoftMixConfig config = SmallMixConfig();
  const auto log = GenerateMicrosoftAccessLog(config);
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_GE(log[i].at, SimTime::Epoch());
    EXPECT_LE(log[i].at, SimTime::Epoch() + config.duration);
    if (i > 0) {
      EXPECT_LE(log[i - 1].at, log[i].at);
    }
  }
}

TEST(MicrosoftMixTest, TypeMixMatchesTable2) {
  const auto log = GenerateMicrosoftAccessLog(SmallMixConfig());
  std::array<int, kNumFileTypes> counts{};
  for (const auto& record : log) {
    ++counts[static_cast<size_t>(record.type)];
  }
  const double n = static_cast<double>(log.size());
  EXPECT_NEAR(counts[0] / n, 0.55, 0.01);  // gif
  EXPECT_NEAR(counts[1] / n, 0.22, 0.01);  // html
  EXPECT_NEAR(counts[2] / n, 0.10, 0.01);  // jpg
  EXPECT_NEAR(counts[3] / n, 0.09, 0.01);  // cgi
  EXPECT_NEAR(counts[4] / n, 0.04, 0.01);  // other
}

TEST(MicrosoftMixTest, ImagesAreTwoThirdsOfAccesses) {
  // "Of these, 65% are for image files (gif and jpg)."
  const auto log = GenerateMicrosoftAccessLog(SmallMixConfig());
  int images = 0;
  for (const auto& record : log) {
    if (record.type == FileType::kGif || record.type == FileType::kJpg) {
      ++images;
    }
  }
  EXPECT_NEAR(static_cast<double>(images) / static_cast<double>(log.size()), 0.65, 0.015);
}

TEST(MicrosoftMixTest, CgiUrisLookDynamic) {
  const auto log = GenerateMicrosoftAccessLog(SmallMixConfig());
  for (const auto& record : log) {
    if (record.type == FileType::kCgi) {
      EXPECT_NE(record.uri.find("cgi"), std::string::npos);
    }
  }
}

TEST(MicrosoftMixTest, RepeatedUriHasStableSize) {
  const auto log = GenerateMicrosoftAccessLog(SmallMixConfig());
  std::map<std::string, int64_t> sizes;
  for (const auto& record : log) {
    auto [it, fresh] = sizes.try_emplace(record.uri, record.size_bytes);
    if (!fresh) {
      EXPECT_EQ(it->second, record.size_bytes) << record.uri;
    }
  }
}

TEST(MicrosoftMixTest, Deterministic) {
  const auto a = GenerateMicrosoftAccessLog(SmallMixConfig());
  const auto b = GenerateMicrosoftAccessLog(SmallMixConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 997) {
    EXPECT_EQ(a[i].uri, b[i].uri);
    EXPECT_EQ(a[i].at, b[i].at);
  }
}

BuModLogConfig SmallBuConfig() {
  BuModLogConfig config;
  config.num_files = 800;
  config.seed = 31;
  return config;
}

TEST(BuModLogTest, StructureMatchesConfig) {
  const BuModificationLog log = GenerateBuModificationLog(SmallBuConfig());
  EXPECT_EQ(log.files.size(), 800u);
  EXPECT_EQ(log.num_days, 186u);
  EXPECT_EQ(log.changed_by_day.size(), 186u);
}

TEST(BuModLogTest, AtMostOneObservationPerFilePerDay) {
  const BuModificationLog log = GenerateBuModificationLog(SmallBuConfig());
  for (const auto& day : log.changed_by_day) {
    std::set<uint32_t> seen(day.begin(), day.end());
    EXPECT_EQ(seen.size(), day.size());
  }
}

TEST(BuModLogTest, DefaultCalibrationNearPaperVolume) {
  // ~2,500 files and ~14,000 observations over 186 days.
  BuModLogConfig config;
  config.seed = 5;
  const BuModificationLog log = GenerateBuModificationLog(config);
  const uint64_t total = log.TotalObservations();
  EXPECT_GT(total, 9000u);
  EXPECT_LT(total, 20000u);
}

TEST(BuModLogTest, HotSubsetDominatesObservations) {
  const BuModificationLog log = GenerateBuModificationLog(SmallBuConfig());
  std::vector<int> per_file(log.files.size(), 0);
  for (const auto& day : log.changed_by_day) {
    for (uint32_t f : day) {
      ++per_file[f];
    }
  }
  // Sort descending; the top 15% of files must carry most observations.
  std::sort(per_file.begin(), per_file.end(), std::greater<>());
  int64_t total = 0;
  int64_t top = 0;
  for (size_t i = 0; i < per_file.size(); ++i) {
    total += per_file[i];
    if (i < per_file.size() * 15 / 100) {
      top += per_file[i];
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.6);
}

TEST(BuModLogTest, Deterministic) {
  const auto a = GenerateBuModificationLog(SmallBuConfig());
  const auto b = GenerateBuModificationLog(SmallBuConfig());
  EXPECT_EQ(a.TotalObservations(), b.TotalObservations());
  for (size_t d = 0; d < a.changed_by_day.size(); d += 17) {
    EXPECT_EQ(a.changed_by_day[d], b.changed_by_day[d]);
  }
}

}  // namespace
}  // namespace webcc
