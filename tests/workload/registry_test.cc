#include "src/workload/registry.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

WorrellConfig SmallConfig(uint64_t seed) {
  WorrellConfig config;
  config.num_files = 10;
  config.duration = Days(1);
  config.requests_per_second = 0.01;
  config.seed = seed;
  return config;
}

TEST(WorkloadRegistryTest, BuildsOncePerKeyAndReturnsStableReference) {
  ClearSharedWorkloads();
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return GenerateWorrellWorkload(SmallConfig(1));
  };
  const Workload& a = SharedWorkload("registry-test-a", build);
  const Workload& b = SharedWorkload("registry-test-a", build);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(SharedWorkloadCount(), 1u);
  ClearSharedWorkloads();
  EXPECT_EQ(SharedWorkloadCount(), 0u);
}

TEST(WorkloadRegistryTest, WorrellKeyFoldsInEveryField) {
  const WorrellConfig base = SmallConfig(1);
  WorrellConfig other = base;
  other.seed = 2;
  EXPECT_NE(WorrellWorkloadKey(base), WorrellWorkloadKey(other));
  other = base;
  other.num_files = 11;
  EXPECT_NE(WorrellWorkloadKey(base), WorrellWorkloadKey(other));
  other = base;
  other.requests_per_second = 0.02;
  EXPECT_NE(WorrellWorkloadKey(base), WorrellWorkloadKey(other));
  EXPECT_EQ(WorrellWorkloadKey(base), WorrellWorkloadKey(SmallConfig(1)));
}

TEST(WorkloadRegistryTest, SharedWorrellWorkloadMatchesDirectGeneration) {
  ClearSharedWorkloads();
  const Workload& shared = SharedWorrellWorkload(SmallConfig(3));
  const Workload direct = GenerateWorrellWorkload(SmallConfig(3));
  ASSERT_EQ(shared.requests.size(), direct.requests.size());
  ASSERT_EQ(shared.modifications.size(), direct.modifications.size());
  for (size_t i = 0; i < shared.requests.size(); ++i) {
    EXPECT_EQ(shared.requests[i].at, direct.requests[i].at) << i;
    EXPECT_EQ(shared.requests[i].object_index, direct.requests[i].object_index) << i;
  }
  ClearSharedWorkloads();
}

TEST(WorkloadRegistryTest, ConcurrentLookupsNeverGenerateTwice) {
  ClearSharedWorkloads();
  std::atomic<int> builds{0};
  const auto build = [&builds] {
    ++builds;
    return GenerateWorrellWorkload(SmallConfig(4));
  };
  std::vector<std::thread> threads;
  std::vector<const Workload*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back(
        [&, t] { seen[static_cast<size_t>(t)] = &SharedWorkload("registry-race", build); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(builds.load(), 1);
  for (const Workload* w : seen) {
    EXPECT_EQ(w, seen[0]);
  }
  ClearSharedWorkloads();
}

}  // namespace
}  // namespace webcc
