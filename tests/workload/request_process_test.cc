#include "src/workload/request_process.h"

#include <vector>

#include <gtest/gtest.h>

namespace webcc {
namespace {

TEST(RequestProcessTest, IssuesAtConfiguredRate) {
  SimEngine engine;
  uint64_t issued = 0;
  PoissonRequestProcess process(&engine, 0.1, 10, Rng(1),
                                [&issued](uint32_t, SimTime) { ++issued; });
  process.Start();
  engine.RunUntil(SimTime::Epoch() + Days(10));
  // Expected 0.1/s * 10 days = 86400 arrivals; Poisson sd ~ 294.
  EXPECT_NEAR(static_cast<double>(issued), 86400.0, 1500.0);
  EXPECT_EQ(process.requests_issued(), issued);
}

TEST(RequestProcessTest, UniformObjectPick) {
  SimEngine engine;
  std::vector<int> counts(10, 0);
  PoissonRequestProcess process(&engine, 1.0, 10, Rng(2),
                                [&counts](uint32_t obj, SimTime) { ++counts[obj]; });
  process.Start();
  engine.RunUntil(SimTime::Epoch() + Days(1));
  const double expected = 86400.0 / 10;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.10);
  }
}

TEST(RequestProcessTest, ZipfObjectPickSkews) {
  SimEngine engine;
  std::vector<int> counts(20, 0);
  auto zipf = std::make_shared<const ZipfDistribution>(20, 1.0);
  PoissonRequestProcess process(&engine, 1.0, zipf, Rng(3),
                                [&counts](uint32_t obj, SimTime) { ++counts[obj]; });
  process.Start();
  engine.RunUntil(SimTime::Epoch() + Days(1));
  EXPECT_GT(counts[0], 4 * counts[9]);
  EXPECT_GT(counts[0], 10 * counts[19]);
}

TEST(RequestProcessTest, StopHaltsArrivals) {
  SimEngine engine;
  uint64_t issued = 0;
  PoissonRequestProcess process(&engine, 1.0, 5, Rng(4),
                                [&issued](uint32_t, SimTime) { ++issued; });
  process.Start();
  engine.RunUntil(SimTime::Epoch() + Hours(1));
  const uint64_t at_stop = issued;
  EXPECT_GT(at_stop, 0u);
  process.Stop();
  engine.RunUntil(SimTime::Epoch() + Hours(2));
  EXPECT_EQ(issued, at_stop);
}

TEST(RequestProcessTest, RestartAfterStop) {
  SimEngine engine;
  uint64_t issued = 0;
  PoissonRequestProcess process(&engine, 1.0, 5, Rng(5),
                                [&issued](uint32_t, SimTime) { ++issued; });
  process.Start();
  engine.RunUntil(SimTime::Epoch() + Minutes(30));
  process.Stop();
  const uint64_t mid = issued;
  engine.RunUntil(SimTime::Epoch() + Hours(1));
  EXPECT_EQ(issued, mid);
  process.Start();
  engine.RunUntil(SimTime::Epoch() + Hours(2));
  EXPECT_GT(issued, mid);
}

TEST(RequestProcessTest, TimestampsNeverExceedEngineClock) {
  SimEngine engine;
  SimTime last;
  PoissonRequestProcess process(&engine, 0.5, 3, Rng(6), [&](uint32_t, SimTime now) {
    EXPECT_GE(now, last);
    last = now;
  });
  process.Start();
  engine.RunUntil(SimTime::Epoch() + Hours(6));
  EXPECT_LE(last, SimTime::Epoch() + Hours(6));
}

TEST(RequestProcessTest, HighRateNotDistortedByClockResolution) {
  // 5 requests/second: sub-second gaps must collapse into same-second
  // events rather than being stretched to one second each.
  SimEngine engine;
  uint64_t issued = 0;
  PoissonRequestProcess process(&engine, 5.0, 3, Rng(7),
                                [&issued](uint32_t, SimTime) { ++issued; });
  process.Start();
  engine.RunUntil(SimTime::Epoch() + Hours(1));
  EXPECT_NEAR(static_cast<double>(issued), 18000.0, 600.0);
}

}  // namespace
}  // namespace webcc
