// Property tests for the workload <-> trace round trip: rendering a
// workload to the log a server would write and recompiling it must preserve
// everything a log CAN preserve, and lose only what the paper says logs
// lose (changes never observed by a later request).

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/str.h"
#include "src/workload/clf.h"
#include "src/workload/trace.h"
#include "src/workload/workload.h"

namespace webcc {
namespace {

Workload RandomWorkload(uint64_t seed) {
  Rng rng(seed);
  Workload load;
  load.name = "prop";
  const int64_t horizon_s = rng.UniformInt(86400, 20 * 86400);
  load.horizon = SimTime::Epoch() + Seconds(horizon_s);
  const uint32_t objects = static_cast<uint32_t>(rng.UniformInt(1, 40));
  for (uint32_t i = 0; i < objects; ++i) {
    load.objects.push_back(ObjectSpec{StrFormat("/p/%u.html", i), FileType::kHtml,
                                      rng.UniformInt(1, 9999),
                                      Seconds(rng.UniformInt(0, 100 * 86400))});
  }
  const int changes = static_cast<int>(rng.UniformInt(0, 60));
  for (int i = 0; i < changes; ++i) {
    load.modifications.push_back(
        ModificationEvent{SimTime::Epoch() + Seconds(rng.UniformInt(1, horizon_s)),
                          static_cast<uint32_t>(rng.UniformInt(0, objects - 1)),
                          rng.UniformInt(1, 9999)});
  }
  const int requests = static_cast<int>(rng.UniformInt(1, 400));
  for (int i = 0; i < requests; ++i) {
    load.requests.push_back(
        RequestEvent{SimTime::Epoch() + Seconds(rng.UniformInt(0, horizon_s)),
                     static_cast<uint32_t>(rng.UniformInt(0, objects - 1)),
                     static_cast<uint32_t>(rng.UniformInt(0, 9)), rng.Bernoulli(0.5)});
  }
  load.Finalize();
  // Deduplicate same-second modifications of the same object: a log cannot
  // distinguish them, so the property is stated on the deduplicated truth.
  std::set<std::pair<int64_t, uint32_t>> seen;
  std::vector<ModificationEvent> unique_mods;
  for (const auto& m : load.modifications) {
    if (seen.emplace(m.at.seconds(), m.object_index).second) {
      unique_mods.push_back(m);
    }
  }
  load.modifications = std::move(unique_mods);
  return load;
}

class TraceRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceRoundTripTest, CompiledWorkloadIsValidAndPreservesRequests) {
  const Workload truth = RandomWorkload(GetParam());
  const Trace trace = RenderTraceFromWorkload(truth, "prop");
  const Workload compiled = CompileTrace(trace);
  EXPECT_EQ(compiled.Validate(), "");
  // Requests survive exactly (count, times, order).
  ASSERT_EQ(compiled.requests.size(), truth.requests.size());
  for (size_t i = 0; i < truth.requests.size(); ++i) {
    EXPECT_EQ(compiled.requests[i].at, truth.requests[i].at);
    EXPECT_EQ(compiled.requests[i].remote, truth.requests[i].remote);
  }
  // Objects: only requested objects appear, each once.
  std::set<uint32_t> requested;
  for (const auto& r : truth.requests) {
    requested.insert(r.object_index);
  }
  EXPECT_EQ(compiled.objects.size(), requested.size());
}

TEST_P(TraceRoundTripTest, InferredChangesAreSubsetOfTruth) {
  const Workload truth = RandomWorkload(GetParam() ^ 0xfeed);
  const Trace trace = RenderTraceFromWorkload(truth, "prop");
  const Workload compiled = CompileTrace(trace);

  // Map compiled object names back to truth indices.
  std::map<std::string, uint32_t> truth_index;
  for (uint32_t i = 0; i < truth.objects.size(); ++i) {
    truth_index[truth.objects[i].name] = i;
  }
  // Every inferred modification corresponds to a true modification instant
  // of the same object (inference can only collapse or miss, never invent).
  std::set<std::pair<int64_t, uint32_t>> true_changes;
  for (const auto& m : truth.modifications) {
    true_changes.emplace(m.at.seconds(), m.object_index);
  }
  for (const auto& m : compiled.modifications) {
    const uint32_t truth_obj = truth_index.at(compiled.objects[m.object_index].name);
    EXPECT_TRUE(true_changes.count({m.at.seconds(), truth_obj}))
        << "invented change at " << m.at.seconds();
  }
  EXPECT_LE(compiled.modifications.size(), truth.modifications.size());
}

TEST_P(TraceRoundTripTest, ObservedChangesAreInferred) {
  // Completeness: every true change that IS observable (a request to the
  // object strictly between it and its next change, or after the last
  // change) must be inferred.
  const Workload truth = RandomWorkload(GetParam() ^ 0xbead);
  const Trace trace = RenderTraceFromWorkload(truth, "prop");
  const Workload compiled = CompileTrace(trace);

  std::map<std::string, uint32_t> compiled_index;
  for (uint32_t i = 0; i < compiled.objects.size(); ++i) {
    compiled_index[compiled.objects[i].name] = i;
  }
  std::set<std::pair<int64_t, uint32_t>> inferred;  // (time, compiled obj)
  for (const auto& m : compiled.modifications) {
    inferred.emplace(m.at.seconds(), m.object_index);
  }

  for (const auto& change : truth.modifications) {
    // Next change of the same object (if any).
    SimTime next = SimTime::Infinite();
    for (const auto& other : truth.modifications) {
      if (other.object_index == change.object_index && other.at > change.at) {
        next = std::min(next, other.at);
      }
    }
    bool observed = false;
    for (const auto& req : truth.requests) {
      if (req.object_index == change.object_index && req.at >= change.at && req.at < next) {
        observed = true;
        break;
      }
    }
    if (!observed) {
      continue;
    }
    const auto it = compiled_index.find(truth.objects[change.object_index].name);
    ASSERT_NE(it, compiled_index.end());
    EXPECT_TRUE(inferred.count({change.at.seconds(), it->second}))
        << "observed change at " << change.at.seconds() << " not inferred";
  }
}

TEST_P(TraceRoundTripTest, ClfPathPreservesTheSameInformation) {
  // trace -> CLF text -> trace: the compiled workloads agree.
  const Workload truth = RandomWorkload(GetParam() ^ 0xc1f);
  const Trace direct = RenderTraceFromWorkload(truth, "prop");
  std::stringstream clf_text;
  WriteClfTrace(direct, clf_text);
  ClfReadStats stats;
  const Trace via_clf = ReadClfTrace(clf_text, ClfParseOptions{}, &stats);
  EXPECT_EQ(stats.skipped_malformed, 0u);

  const Workload a = CompileTrace(direct);
  const Workload b = CompileTrace(via_clf);
  EXPECT_EQ(a.objects.size(), b.objects.size());
  EXPECT_EQ(a.requests.size(), b.requests.size());
  // The CLF reader rebases so its first record sits at the epoch; all times
  // shift uniformly by the first request's offset. A real log has no notion
  // of "experiment start", so changes stamped BEFORE the first request fold
  // into initial ages rather than modification events.
  const SimDuration shift = direct.records.front().timestamp - SimTime::Epoch();
  std::vector<SimTime> expected;
  for (const auto& m : a.modifications) {
    if (m.at - shift > SimTime::Epoch()) {
      expected.push_back(m.at - shift);
    }
  }
  ASSERT_EQ(expected.size(), b.modifications.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], b.modifications[i].at) << i;
  }
  for (size_t i = 0; i < a.requests.size(); i += 37) {
    EXPECT_EQ(a.requests[i].at - shift, b.requests[i].at) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTripTest, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace webcc
