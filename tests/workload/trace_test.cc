#include "src/workload/trace.h"

#include <sstream>

#include <gtest/gtest.h>

namespace webcc {
namespace {

Trace SampleTrace() {
  Trace trace;
  trace.source = "unit";
  // Object /a last modified 100s before the epoch; /b changes mid-trace.
  trace.records.push_back({SimTime(10), "local1.campus.edu", "/a.html", 500, SimTime(-100), false});
  trace.records.push_back({SimTime(20), "remote1.example.com", "/b.gif", 800, SimTime(-50), true});
  trace.records.push_back({SimTime(30), "local1.campus.edu", "/a.html", 500, SimTime(-100), false});
  trace.records.push_back({SimTime(90), "local2.campus.edu", "/b.gif", 850, SimTime(60), true});
  return trace;
}

TEST(TraceIoTest, WriteReadRoundTrip) {
  const Trace original = SampleTrace();
  std::stringstream ss;
  WriteTrace(original, ss);
  TraceParseError error;
  const auto parsed = ReadTrace(ss, &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_EQ(parsed->source, "unit");
  ASSERT_EQ(parsed->records.size(), original.records.size());
  for (size_t i = 0; i < original.records.size(); ++i) {
    EXPECT_EQ(parsed->records[i], original.records[i]) << "record " << i;
  }
}

TEST(TraceIoTest, ReadsWithoutHeader) {
  std::istringstream is("10 c1 /x.html 100 -5 0\n20 c2 /y.gif 200 10 1\n");
  const auto trace = ReadTrace(is);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->records.size(), 2u);
  EXPECT_TRUE(trace->records[1].remote);
}

TEST(TraceIoTest, SkipsCommentsAndBlankLines) {
  std::istringstream is("# comment\n\n10 c /x 1 0 0\n   \n# more\n");
  const auto trace = ReadTrace(is);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->records.size(), 1u);
}

TEST(TraceIoTest, ReportsFieldCountError) {
  std::istringstream is("10 c /x 1 0\n");
  TraceParseError error;
  EXPECT_FALSE(ReadTrace(is, &error).has_value());
  EXPECT_EQ(error.line, 1u);
  EXPECT_NE(error.message.find("6 fields"), std::string::npos);
}

TEST(TraceIoTest, ReportsBadNumbers) {
  TraceParseError error;
  std::istringstream bad_ts("abc c /x 1 0 0\n");
  EXPECT_FALSE(ReadTrace(bad_ts, &error).has_value());
  EXPECT_EQ(error.message, "bad timestamp");

  std::istringstream bad_size("10 c /x -2 0 0\n");
  EXPECT_FALSE(ReadTrace(bad_size, &error).has_value());
  EXPECT_EQ(error.message, "bad size");

  std::istringstream bad_remote("10 c /x 1 0 7\n");
  EXPECT_FALSE(ReadTrace(bad_remote, &error).has_value());
  EXPECT_EQ(error.message, "bad remote flag");
}

TEST(TraceIoTest, RejectsLastModifiedInTheFuture) {
  std::istringstream is("10 c /x 1 50 0\n");
  TraceParseError error;
  EXPECT_FALSE(ReadTrace(is, &error).has_value());
  EXPECT_NE(error.message.find("last-modified after"), std::string::npos);
}

TEST(TraceIoTest, RejectsOutOfOrderTimestamps) {
  std::istringstream is("20 c /x 1 0 0\n10 c /y 1 0 0\n");
  TraceParseError error;
  EXPECT_FALSE(ReadTrace(is, &error).has_value());
  EXPECT_NE(error.message.find("out of order"), std::string::npos);
  EXPECT_EQ(error.line, 2u);
}

TEST(TraceIoTest, FileRoundTrip) {
  const Trace original = SampleTrace();
  const std::string path = ::testing::TempDir() + "/webcc_trace_test.txt";
  ASSERT_TRUE(WriteTraceFile(original, path));
  const auto parsed = ReadTraceFile(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->records.size(), original.records.size());
}

TEST(TraceIoTest, MissingFileReportsError) {
  TraceParseError error;
  EXPECT_FALSE(ReadTraceFile("/nonexistent/trace.txt", &error).has_value());
  EXPECT_NE(error.message.find("cannot open"), std::string::npos);
}

TEST(TraceCompileTest, ObjectsAndRequestsExtracted) {
  const Workload load = CompileTrace(SampleTrace());
  EXPECT_EQ(load.Validate(), "");
  ASSERT_EQ(load.objects.size(), 2u);
  EXPECT_EQ(load.objects[0].name, "/a.html");
  EXPECT_EQ(load.objects[0].type, FileType::kHtml);
  EXPECT_EQ(load.objects[1].type, FileType::kGif);
  EXPECT_EQ(load.requests.size(), 4u);
  EXPECT_TRUE(load.requests[1].remote);
  EXPECT_FALSE(load.requests[0].remote);
}

TEST(TraceCompileTest, InitialAgeFromFirstLastModified) {
  const Workload load = CompileTrace(SampleTrace());
  EXPECT_EQ(load.objects[0].initial_age, Seconds(100));
  EXPECT_EQ(load.objects[1].initial_age, Seconds(50));
}

TEST(TraceCompileTest, ModificationInferredFromLmTransition) {
  const Workload load = CompileTrace(SampleTrace());
  ASSERT_EQ(load.modifications.size(), 1u);
  EXPECT_EQ(load.modifications[0].at, SimTime(60));
  EXPECT_EQ(load.modifications[0].object_index, 1u);
  EXPECT_EQ(load.modifications[0].new_size, 850);
}

TEST(TraceCompileTest, NoSpuriousModificationsForStableLm) {
  Trace trace;
  for (int i = 0; i < 10; ++i) {
    trace.records.push_back({SimTime(10 * (i + 1)), "c", "/x.html", 100, SimTime(-5), false});
  }
  const Workload load = CompileTrace(trace);
  EXPECT_TRUE(load.modifications.empty());
}

TEST(TraceCompileTest, CollapsesUnobservedIntermediateChanges) {
  // The object changed twice between observations, but the log only reveals
  // the final Last-Modified — one inferred modification (the paper's
  // granularity caveat).
  Trace trace;
  trace.records.push_back({SimTime(10), "c", "/x.html", 100, SimTime(-5), false});
  trace.records.push_back({SimTime(500), "c", "/x.html", 100, SimTime(400), false});
  const Workload load = CompileTrace(trace);
  EXPECT_EQ(load.modifications.size(), 1u);
  EXPECT_EQ(load.modifications[0].at, SimTime(400));
}

TEST(TraceCompileTest, ClampsContradictoryChangeTime) {
  // Stamped change time (15) precedes a record that still saw the old
  // version at t=20 — the compiler must move the change after t=20.
  Trace trace;
  trace.records.push_back({SimTime(10), "c", "/x.html", 100, SimTime(-5), false});
  trace.records.push_back({SimTime(20), "c", "/x.html", 100, SimTime(-5), false});
  trace.records.push_back({SimTime(30), "c", "/x.html", 100, SimTime(15), false});
  const Workload load = CompileTrace(trace);
  ASSERT_EQ(load.modifications.size(), 1u);
  EXPECT_GT(load.modifications[0].at, SimTime(20));
}

TEST(TraceCompileTest, MidTraceFirstObservationWithPositiveLm) {
  // First record for an object already shows an in-experiment LM: starts at
  // age 0 with one modification at that stamp.
  Trace trace;
  trace.records.push_back({SimTime(100), "c", "/new.html", 100, SimTime(40), false});
  const Workload load = CompileTrace(trace);
  EXPECT_EQ(load.objects[0].initial_age, SimDuration(0));
  ASSERT_EQ(load.modifications.size(), 1u);
  EXPECT_EQ(load.modifications[0].at, SimTime(40));
}

TEST(TraceCompileTest, HorizonCoversAllEvents) {
  const Workload load = CompileTrace(SampleTrace());
  EXPECT_GE(load.horizon, SimTime(90));
}

TEST(RenderTraceTest, RoundTripPreservesObservableState) {
  // Build a ground-truth workload, render its trace, recompile — requests
  // and observable modifications must survive.
  Workload truth;
  truth.name = "rt";
  truth.objects.push_back(ObjectSpec{"/a.html", FileType::kHtml, 300, Days(2)});
  truth.objects.push_back(ObjectSpec{"/b.gif", FileType::kGif, 700, Days(30)});
  truth.horizon = SimTime::Epoch() + Days(5);
  truth.modifications.push_back(ModificationEvent{SimTime::Epoch() + Days(1), 0, 333});
  truth.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(1), 0, 1, false});
  truth.requests.push_back(RequestEvent{SimTime::Epoch() + Days(2), 0, 2, true});
  truth.requests.push_back(RequestEvent{SimTime::Epoch() + Days(3), 1, 3, false});
  truth.Finalize();

  const Trace trace = RenderTraceFromWorkload(truth, "rt");
  ASSERT_EQ(trace.records.size(), 3u);
  // First request sees the pre-change state; second the new one.
  EXPECT_EQ(trace.records[0].last_modified, SimTime::Epoch() - Days(2));
  EXPECT_EQ(trace.records[0].size_bytes, 300);
  EXPECT_EQ(trace.records[1].last_modified, SimTime::Epoch() + Days(1));
  EXPECT_EQ(trace.records[1].size_bytes, 333);
  EXPECT_TRUE(trace.records[1].remote);

  const Workload recompiled = CompileTrace(trace);
  EXPECT_EQ(recompiled.objects.size(), 2u);
  EXPECT_EQ(recompiled.requests.size(), 3u);
  ASSERT_EQ(recompiled.modifications.size(), 1u);
  EXPECT_EQ(recompiled.modifications[0].at, SimTime::Epoch() + Days(1));
}

TEST(RenderTraceTest, ModificationAtRequestInstantVisible) {
  Workload truth;
  truth.objects.push_back(ObjectSpec{"/a", FileType::kOther, 10, Days(1)});
  truth.horizon = SimTime::Epoch() + Days(1);
  truth.modifications.push_back(ModificationEvent{SimTime::Epoch() + Hours(1), 0, -1});
  truth.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(1), 0, 0, false});
  truth.Finalize();
  const Trace trace = RenderTraceFromWorkload(truth, "tie");
  EXPECT_EQ(trace.records[0].last_modified, SimTime::Epoch() + Hours(1));
}

}  // namespace
}  // namespace webcc
