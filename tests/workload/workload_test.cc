#include "src/workload/workload.h"

#include <gtest/gtest.h>

namespace webcc {
namespace {

Workload SmallValidWorkload() {
  Workload load;
  load.name = "test";
  load.objects.push_back(ObjectSpec{"/a", FileType::kHtml, 100, Days(1)});
  load.objects.push_back(ObjectSpec{"/b", FileType::kGif, 200, Days(2)});
  load.horizon = SimTime::Epoch() + Days(10);
  load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Days(1), 0, -1});
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(1), 1, 0, false});
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Days(2), 0, 1, true});
  return load;
}

TEST(WorkloadTest, ValidWorkloadPasses) {
  EXPECT_EQ(SmallValidWorkload().Validate(), "");
}

TEST(WorkloadTest, FinalizeSortsEvents) {
  Workload load = SmallValidWorkload();
  load.requests.insert(load.requests.begin(),
                       RequestEvent{SimTime::Epoch() + Days(5), 0, 0, false});
  load.modifications.push_back(ModificationEvent{SimTime::Epoch() + Hours(1), 1, -1});
  load.Finalize();
  EXPECT_EQ(load.Validate(), "");
  EXPECT_LE(load.requests.front().at, load.requests.back().at);
  EXPECT_LE(load.modifications.front().at, load.modifications.back().at);
}

TEST(WorkloadTest, DetectsOutOfRangeObjectIndex) {
  Workload load = SmallValidWorkload();
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Days(3), 99, 0, false});
  EXPECT_NE(load.Validate().find("out of range"), std::string::npos);
}

TEST(WorkloadTest, DetectsUnsortedEvents) {
  Workload load = SmallValidWorkload();
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Hours(1), 0, 0, false});
  EXPECT_NE(load.Validate().find("out of order"), std::string::npos);
}

TEST(WorkloadTest, DetectsEventsBeyondHorizon) {
  Workload load = SmallValidWorkload();
  load.requests.push_back(RequestEvent{SimTime::Epoch() + Days(99), 0, 0, false});
  EXPECT_NE(load.Validate().find("beyond horizon"), std::string::npos);
}

TEST(WorkloadTest, DetectsNegativeSizeAndAge) {
  Workload load = SmallValidWorkload();
  load.objects[0].size_bytes = -1;
  EXPECT_NE(load.Validate().find("negative size"), std::string::npos);
  load.objects[0].size_bytes = 1;
  load.objects[0].initial_age = -Days(1);
  EXPECT_NE(load.Validate().find("negative initial age"), std::string::npos);
}

TEST(WorkloadTest, Aggregates) {
  const Workload load = SmallValidWorkload();
  EXPECT_EQ(load.TotalObjectBytes(), 300);
  EXPECT_DOUBLE_EQ(load.MeanObjectBytes(), 150.0);
  EXPECT_EQ(load.RequestCount(), 2u);
  EXPECT_EQ(load.ModificationCount(), 1u);
  EXPECT_DOUBLE_EQ(load.RemoteFraction(), 0.5);
}

TEST(WorkloadTest, EmptyWorkloadAggregates) {
  Workload load;
  EXPECT_EQ(load.TotalObjectBytes(), 0);
  EXPECT_DOUBLE_EQ(load.MeanObjectBytes(), 0.0);
  EXPECT_DOUBLE_EQ(load.RemoteFraction(), 0.0);
  EXPECT_EQ(load.Validate(), "");
}

}  // namespace
}  // namespace webcc
