#include "src/workload/worrell.h"

#include <cmath>
#include <map>
#include <set>
#include <algorithm>

#include <gtest/gtest.h>

namespace webcc {
namespace {

WorrellConfig SmallConfig(uint64_t seed = 1) {
  WorrellConfig config;
  config.num_files = 200;
  config.duration = Days(14);
  config.requests_per_second = 0.05;
  config.seed = seed;
  return config;
}

TEST(WorrellTest, GeneratesValidWorkload) {
  const Workload load = GenerateWorrellWorkload(SmallConfig());
  EXPECT_EQ(load.Validate(), "");
  EXPECT_EQ(load.objects.size(), 200u);
  EXPECT_EQ(load.horizon, SimTime::Epoch() + Days(14));
  EXPECT_GT(load.requests.size(), 0u);
  EXPECT_GT(load.modifications.size(), 0u);
}

TEST(WorrellTest, DeterministicInSeed) {
  const Workload a = GenerateWorrellWorkload(SmallConfig(7));
  const Workload b = GenerateWorrellWorkload(SmallConfig(7));
  ASSERT_EQ(a.requests.size(), b.requests.size());
  ASSERT_EQ(a.modifications.size(), b.modifications.size());
  for (size_t i = 0; i < a.requests.size(); i += 97) {
    EXPECT_EQ(a.requests[i].at, b.requests[i].at);
    EXPECT_EQ(a.requests[i].object_index, b.requests[i].object_index);
  }
  const Workload c = GenerateWorrellWorkload(SmallConfig(8));
  EXPECT_NE(a.requests.size(), c.requests.size());
}

TEST(WorrellTest, ChangeRateMatchesPaperCalibration) {
  // Paper §4.2: 2085 files over 56 days changed 19,898 times — a 17%/day
  // per-file change probability. Check the default calibration hits that
  // rate (within tolerance) on a reduced-size run.
  WorrellConfig config;
  config.num_files = 500;
  config.duration = Days(28);
  config.requests_per_second = 0.01;  // requests don't matter here
  config.seed = 3;
  const Workload load = GenerateWorrellWorkload(config);
  const double per_day = static_cast<double>(load.modifications.size()) /
                         (500.0 * static_cast<double>(load.horizon.seconds()) / 86400.0);
  EXPECT_NEAR(per_day, 0.17, 0.02);
}

TEST(WorrellTest, RequestRateMatchesConfig) {
  const WorrellConfig config = SmallConfig(4);
  const Workload load = GenerateWorrellWorkload(config);
  const double expected =
      config.requests_per_second * static_cast<double>(config.duration.seconds());
  EXPECT_NEAR(static_cast<double>(load.requests.size()), expected, expected * 0.05);
}

TEST(WorrellTest, RequestsUniformOverFiles) {
  WorrellConfig config = SmallConfig(5);
  config.requests_per_second = 0.5;  // plenty of samples
  const Workload load = GenerateWorrellWorkload(config);
  std::vector<int> counts(config.num_files, 0);
  for (const RequestEvent& r : load.requests) {
    ++counts[r.object_index];
  }
  const double expected =
      static_cast<double>(load.requests.size()) / static_cast<double>(config.num_files);
  int outliers = 0;
  for (int c : counts) {
    if (std::abs(c - expected) > 4 * std::sqrt(expected)) {
      ++outliers;
    }
  }
  // ~99.99% of uniform counts lie within 4 sigma; allow a little slack.
  EXPECT_LE(outliers, 3);
}

TEST(WorrellTest, InitialAgesWithinCurrentInterval) {
  const Workload load = GenerateWorrellWorkload(SmallConfig(6));
  const WorrellConfig config = SmallConfig(6);
  for (const ObjectSpec& spec : load.objects) {
    EXPECT_GE(spec.initial_age, SimDuration(0));
    // Age can never exceed the longest possible lifetime.
    EXPECT_LE(spec.initial_age, config.max_lifetime);
  }
}

TEST(WorrellTest, SizesHaveRequestedMean) {
  WorrellConfig config = SmallConfig(7);
  config.num_files = 5000;
  config.requests_per_second = 0.001;
  config.mean_file_bytes = 6000;
  const Workload load = GenerateWorrellWorkload(config);
  EXPECT_NEAR(load.MeanObjectBytes(), 6000.0, 600.0);
}

TEST(WorrellTest, InterChangeGapsWithinLifetimeBounds) {
  const WorrellConfig config = SmallConfig(8);
  const Workload load = GenerateWorrellWorkload(config);
  // Per object, consecutive modifications are separated by a flat-lifetime
  // draw: within [min_lifetime, max_lifetime].
  std::vector<SimTime> last(config.num_files, SimTime::Infinite());
  std::vector<bool> seen(config.num_files, false);
  for (const ModificationEvent& m : load.modifications) {
    if (seen[m.object_index]) {
      const SimDuration gap = m.at - last[m.object_index];
      EXPECT_GE(gap, config.min_lifetime);
      EXPECT_LE(gap, config.max_lifetime);
    }
    seen[m.object_index] = true;
    last[m.object_index] = m.at;
  }
}

TEST(WorrellTest, NoRemoteFlagInSyntheticWorkload) {
  const Workload load = GenerateWorrellWorkload(SmallConfig(9));
  EXPECT_DOUBLE_EQ(load.RemoteFraction(), 0.0);
}

}  // namespace
}  // namespace webcc
