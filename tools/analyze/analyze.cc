#include "tools/analyze/analyze.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <thread>

#include "tools/analyze/baseline.h"
#include "tools/analyze/callgraph.h"
#include "tools/analyze/layers.h"
#include "tools/analyze/lexer.h"
#include "tools/analyze/lockcheck.h"
#include "tools/analyze/locks.h"
#include "tools/analyze/rules.h"
#include "tools/analyze/symbols.h"
#include "tools/analyze/taint.h"
#include "tools/analyze/timedomain.h"

namespace webcc::analyze {
namespace {

namespace fs = std::filesystem;

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

// Lexes all sources, sharded by index across `jobs` threads. Each thread
// writes only its own slots, so the result is byte-identical for any job
// count — the determinism acceptance test runs jobs=1 vs jobs=4.
std::vector<LexedFile> LexAll(const std::vector<SourceFile>& sources, size_t jobs) {
  std::vector<LexedFile> lexed(sources.size());
  const size_t n = sources.size();
  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      lexed[i] = Lex(sources[i]);
    }
    return lexed;
  }
  const size_t workers = std::min(jobs, n);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < n; i += workers) {
        lexed[i] = Lex(sources[i]);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  return lexed;
}

// --- Include-graph cache ----------------------------------------------------
//
// Format (one header line, then per-file records):
//
//   # webcc-analyze graph cache v3 <config-hash>
//   F <hex-content-hash> <repo-relative-path> <n>
//   I <line> <include-target>            (n times)
//
// The header's config hash covers the analyzer configuration (layer spec +
// taint waiver list + time-domain directives + dead-symbol waivers):
// editing any config file changes the hash and the whole cache is
// discarded, so stale config can never feed an analysis.
// A per-file record is valid iff the content hash matches; stale records
// are dropped on rewrite. The cache carries include edges only — rule and
// pass-4 findings always come from a fresh scan (every file is lexed every
// run regardless, so memoizing more than edge extraction buys nothing).

uint64_t Fnv1a(const std::string& data) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string HashHex(uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[h & 0xF];
    h >>= 4;
  }
  return out;
}

struct CachedIncludes {
  std::string hash;
  std::vector<std::string> includes;
  std::vector<size_t> include_lines;
};

std::string CacheHeader(const std::string& config_hash) {
  return "# webcc-analyze graph cache v3 " + config_hash;
}

std::map<std::string, CachedIncludes> LoadGraphCache(const std::string& path,
                                                     const std::string& config_hash) {
  std::map<std::string, CachedIncludes> cache;
  std::ifstream in(path);
  if (!in) {
    return cache;  // cold cache is not an error
  }
  std::string header;
  if (!std::getline(in, header) || header != CacheHeader(config_hash)) {
    return cache;  // unknown version or changed config: ignore wholesale
  }
  std::string line;
  std::string current_file;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "F") {
      CachedIncludes rec;
      std::string file;
      size_t n = 0;
      if (!(fields >> rec.hash >> file >> n)) {
        return {};  // corrupt: discard everything
      }
      current_file = file;
      cache[file] = std::move(rec);
    } else if (tag == "I") {
      size_t include_line = 0;
      std::string target;
      if (current_file.empty() || !(fields >> include_line >> target)) {
        return {};
      }
      cache[current_file].includes.push_back(target);
      cache[current_file].include_lines.push_back(include_line);
    }
  }
  return cache;
}

void SaveGraphCache(const std::string& path, const std::string& config_hash,
                    const std::map<std::string, CachedIncludes>& cache) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return;  // cache is best-effort; the scan already succeeded
  }
  out << CacheHeader(config_hash) << "\n";
  for (const auto& [file, rec] : cache) {
    out << "F " << rec.hash << " " << file << " " << rec.includes.size() << "\n";
    for (size_t i = 0; i < rec.includes.size(); ++i) {
      out << "I " << rec.include_lines[i] << " " << rec.includes[i] << "\n";
    }
  }
}

}  // namespace

std::vector<Finding> AnalyzeSources(const std::vector<SourceFile>& sources,
                                    const AnalyzeConfig& config,
                                    std::vector<std::string>* dead_symbols,
                                    std::vector<std::string>* lock_graph_edges) {
  std::vector<LexedFile> lexed = LexAll(sources, config.jobs);

  std::vector<Finding> findings = RunLintRules(lexed);

  if (config.run_symbols || config.run_flow) {
    const SymbolIndex index = BuildSymbolIndex(lexed);
    const CallGraph graph = BuildCallGraph(index);
    const std::vector<TaintWaiver> waivers = ParseTaintWaivers(
        config.taint_waivers_path, config.taint_waivers_contents, &findings);
    CheckTaint(index, graph, waivers, config.taint_waivers_path, &findings);
    if (config.run_flow) {
      // Pass 5 supersedes the lexical lock check: the flow-sensitive
      // analysis reports a strict superset of its true positives without
      // the lock-anywhere-in-body false negatives.
      CheckLocks(lexed, index, &findings, lock_graph_edges);
      const TimeDomainConfig td = ParseTimeDomainConfig(
          config.time_domains_path, config.time_domains_contents, &findings);
      CheckTimeDomains(lexed, index, td, &findings);
    } else {
      CheckLockDiscipline(index, &findings);
    }
    if (config.gate_dead_symbols) {
      const std::vector<DeadWaiver> dead_waivers = ParseDeadWaivers(
          config.dead_waivers_path, config.dead_waivers_contents, &findings);
      CheckDeadSymbols(index, dead_waivers, config.dead_waivers_path, &findings);
    }
    if (dead_symbols != nullptr) {
      *dead_symbols = DeadSymbolReport(index);
    }
  }

  if (config.run_layers) {
    if (!config.include_overrides.empty()) {
      for (LexedFile& file : lexed) {
        const auto it = config.include_overrides.find(RepoRelative(file.path));
        if (it != config.include_overrides.end()) {
          file.includes = it->second.includes;
          file.include_lines = it->second.include_lines;
        }
      }
    }
    LayerSpec spec = ParseLayerSpec(config.layers_path, config.layers_contents, &findings);
    std::vector<Finding> layer_findings = CheckLayers(spec, lexed);
    findings.insert(findings.end(), layer_findings.begin(), layer_findings.end());
  }

  if (config.apply_baseline) {
    Baseline baseline =
        ParseBaseline(config.baseline_path, config.baseline_contents, &findings);
    ApplyBaseline(baseline, config.baseline_path, &findings);
  }

  SortFindings(&findings);
  return findings;
}

std::vector<Finding> AnalyzePaths(const std::vector<std::string>& roots,
                                  const AnalyzeOptions& options,
                                  std::vector<std::string>* dead_symbols,
                                  std::vector<std::string>* lock_graph_edges) {
  std::vector<std::string> paths;
  std::vector<Finding> findings;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      fs::recursive_directory_iterator it(root, ec), end;
      while (it != end) {
        // Test sources are exempt from the analyzer by design: skip any
        // directory named `tests` before descending into it. An explicitly
        // passed file path still works.
        if (it->is_directory() && it->path().filename() == "tests") {
          it.disable_recursion_pending();
          it.increment(ec);
          continue;
        }
        if (it->is_regular_file()) {
          const std::string ext = it->path().extension().string();
          if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
            paths.push_back(it->path().generic_string());
          }
        }
        it.increment(ec);
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(fs::path(root).generic_string());
    } else {
      findings.push_back(Finding{root, 0, "analyze-io", "path does not exist"});
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> sources;
  sources.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{path, 0, "analyze-io", "could not read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.push_back(SourceFile{path, buffer.str()});
  }

  AnalyzeConfig config;
  config.jobs = options.jobs;
  const auto load_config = [&](const std::string& path, std::string* contents) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{path, 0, "analyze-io", "could not read file"});
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *contents = buffer.str();
    return true;
  };
  if (!options.layers_file.empty()) {
    config.run_layers = load_config(options.layers_file, &config.layers_contents);
    config.layers_path = options.layers_file;
  }
  if (!options.baseline_file.empty()) {
    config.apply_baseline = load_config(options.baseline_file, &config.baseline_contents);
    config.baseline_path = options.baseline_file;
  }
  config.run_symbols = options.run_symbols;
  if (!options.taint_waivers_file.empty()) {
    config.run_symbols = true;
    load_config(options.taint_waivers_file, &config.taint_waivers_contents);
    config.taint_waivers_path = options.taint_waivers_file;
  }
  config.run_flow = options.run_flow;
  if (!options.time_domains_file.empty()) {
    config.run_flow = true;
    load_config(options.time_domains_file, &config.time_domains_contents);
    config.time_domains_path = options.time_domains_file;
  }
  if (!options.dead_waivers_file.empty()) {
    config.gate_dead_symbols = true;
    load_config(options.dead_waivers_file, &config.dead_waivers_contents);
    config.dead_waivers_path = options.dead_waivers_file;
  }

  // Warm the include-graph cache before the scan; it is only consulted by
  // pass 2, only for byte-identical files, and only when the analyzer
  // configuration hash in its header matches, so a corrupt or stale cache
  // can never change results — at worst edges are recomputed.
  const std::string config_hash = HashHex(
      Fnv1a(config.layers_contents + '\x1f' + config.taint_waivers_contents +
            '\x1f' + config.time_domains_contents + '\x1f' +
            config.dead_waivers_contents));
  std::map<std::string, CachedIncludes> cache;
  if (!options.graph_cache_file.empty()) {
    cache = LoadGraphCache(options.graph_cache_file, config_hash);
    std::map<std::string, CachedIncludes> next;
    for (const SourceFile& source : sources) {
      const std::string rel = RepoRelative(source.path);
      const std::string hash = HashHex(Fnv1a(source.contents));
      const auto hit = cache.find(rel);
      if (hit != cache.end() && hit->second.hash == hash) {
        next[rel] = hit->second;
        continue;
      }
      const LexedFile lexed = Lex(source);
      CachedIncludes rec;
      rec.hash = hash;
      rec.includes = lexed.includes;
      rec.include_lines = lexed.include_lines;
      next[rel] = std::move(rec);
    }
    SaveGraphCache(options.graph_cache_file, config_hash, next);
    for (const auto& [rel, rec] : next) {
      config.include_overrides[rel] = IncludeEdges{rec.includes, rec.include_lines};
    }
  }

  std::vector<Finding> scanned =
      AnalyzeSources(sources, config, dead_symbols, lock_graph_edges);
  findings.insert(findings.end(), scanned.begin(), scanned.end());
  SortFindings(&findings);
  return findings;
}

void PrintFindings(const std::vector<Finding>& findings, std::ostream& out) {
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
}

}  // namespace webcc::analyze
