// webcc-analyze orchestration: runs the five passes in order and merges
// their findings.
//
//   Pass 1  lex + lint rules             (lexer.h, rules.h)
//   Pass 2  include graph + layers       (layers.h), optional
//   Pass 3  baseline + output            (baseline.h, sarif.h), optional
//   Pass 4  symbol index + call graph:   (symbols.h, callgraph.h, taint.h,
//           determinism taint,            lockcheck.h), optional
//           lock discipline,
//           dead-symbol report
//   Pass 5  per-function CFGs:           (cfg.h, locks.h, timedomain.h),
//           flow-sensitive lock           optional, requires pass 4
//           analysis, lock-order graph,
//           blocking-under-lock,
//           wall/sim time domains
//
// Two entry points mirror the old webcc-lint API. AnalyzeSources is pure
// (no filesystem): config contents are passed in, which is what the tests
// and the webcc-lint compatibility wrapper use. AnalyzePaths walks
// directories, loads the config files named in AnalyzeOptions, and maintains
// the on-disk include-graph cache.

#ifndef WEBCC_TOOLS_ANALYZE_ANALYZE_H_
#define WEBCC_TOOLS_ANALYZE_ANALYZE_H_

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "tools/analyze/source.h"

namespace webcc::analyze {

// Precomputed include edges for one file, as stored in the graph cache.
struct IncludeEdges {
  std::vector<std::string> includes;
  std::vector<size_t> include_lines;
};

// Pure-scan configuration: contents are provided by the caller.
struct AnalyzeConfig {
  // Pass 2 runs iff `run_layers`; `layers_path` labels config diagnostics.
  bool run_layers = false;
  std::string layers_path = "tools/analyze/layers.txt";
  std::string layers_contents;
  // Pass 3 baseline applies iff `apply_baseline`.
  bool apply_baseline = false;
  std::string baseline_path = "tools/analyze/baseline.txt";
  std::string baseline_contents;
  // Pass 4 runs iff `run_symbols`: builds the symbol index and call graph,
  // then checks determinism taint (taint.h, against the waiver list below)
  // and lock discipline (lockcheck.h). `taint_waivers_path` labels config
  // and stale-waiver diagnostics.
  bool run_symbols = false;
  std::string taint_waivers_path = "tools/analyze/taint_waivers.txt";
  std::string taint_waivers_contents;
  // Pass 5 runs iff `run_flow` (implies pass 4's symbol index): builds
  // per-function CFGs and runs the flow-sensitive lock checks (locks.h) —
  // which supersede the lexical lockcheck.h pass — plus the wall/sim
  // time-domain check (timedomain.h) against the directive file below.
  bool run_flow = false;
  std::string time_domains_path = "tools/analyze/time_domains.txt";
  std::string time_domains_contents;
  // Dead-symbol gating: when `gate_dead_symbols`, unwaived dead definitions
  // become `dead-symbol` findings checked against the waiver file below
  // (stale entries are errors, same ratchet as taint waivers). Off, the
  // report stays advisory via the `dead_symbols` out-param.
  bool gate_dead_symbols = false;
  std::string dead_waivers_path = "tools/analyze/dead_waivers.txt";
  std::string dead_waivers_contents;
  // Lexing parallelism. Files are sharded by index across `jobs` threads
  // with no shared mutable state, so results are byte-identical for every
  // value (the analysis itself is single-threaded over the lexed files).
  size_t jobs = 1;
  // Optional pass-2 edge overrides keyed by repo-relative path, fed from the
  // include-graph cache. A file present here uses these edges instead of its
  // freshly lexed includes; entries are only ever created from byte-identical
  // content (hash-checked), so the substitution cannot change results.
  std::map<std::string, IncludeEdges> include_overrides;
};

// File-walking configuration for AnalyzePaths.
struct AnalyzeOptions {
  std::string layers_file;        // empty = skip the layer pass
  std::string baseline_file;      // empty = no baseline
  std::string graph_cache_file;   // empty = no include-graph cache
  bool run_symbols = false;       // enable pass 4
  std::string taint_waivers_file; // empty = no waivers (pass 4 still runs)
  bool run_flow = false;          // enable pass 5 (implies pass 4)
  std::string time_domains_file;  // empty = no time-domain config (implies
                                  // pass 5 when set)
  std::string dead_waivers_file;  // set = gate dead symbols against this file
  size_t jobs = 1;                // lexing threads
};

// Scans `sources` as one unit and returns findings sorted by
// (file, line, rule). Never touches the filesystem. When pass 4 runs and
// `dead_symbols` is non-null it receives the dead-symbol report
// (callgraph.h); the report is advisory unless `gate_dead_symbols`. When
// pass 5 runs and `lock_graph_edges` is non-null it receives the rendered
// lock-acquisition graph (locks.h), one edge per line.
std::vector<Finding> AnalyzeSources(const std::vector<SourceFile>& sources,
                                    const AnalyzeConfig& config,
                                    std::vector<std::string>* dead_symbols = nullptr,
                                    std::vector<std::string>* lock_graph_edges = nullptr);

// Loads every .h/.cc/.cpp/.hpp under `roots` (directories walked
// recursively, files taken verbatim, missing paths become `analyze-io`
// findings), loads the config files in `options`, and scans. Directories
// named `tests` are never walked — test sources are exempt from the
// analyzer by design (pass an explicit file path to override). The include-
// graph cache, when enabled, memoizes per-file include edges keyed on a
// 64-bit content hash, and the cache as a whole is keyed on the analyzer
// configuration (layers + taint waivers + time domains + dead waivers):
// editing any config file invalidates the cache wholesale. The cache file
// is rewritten after every run so CI can persist it across builds keyed on
// the tree hash.
std::vector<Finding> AnalyzePaths(const std::vector<std::string>& roots,
                                  const AnalyzeOptions& options,
                                  std::vector<std::string>* dead_symbols = nullptr,
                                  std::vector<std::string>* lock_graph_edges = nullptr);

// Renders `file:line: [rule] message`, one per line (same format as
// webcc-lint, which CI and editors already parse).
void PrintFindings(const std::vector<Finding>& findings, std::ostream& out);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_ANALYZE_H_
