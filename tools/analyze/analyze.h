// webcc-analyze orchestration: runs the three passes in order and merges
// their findings.
//
//   Pass 1  lex + lint rules        (lexer.h, rules.h)
//   Pass 2  include graph + layers  (layers.h), optional
//   Pass 3  baseline + output       (baseline.h, sarif.h), optional
//
// Two entry points mirror the old webcc-lint API. AnalyzeSources is pure
// (no filesystem): config contents are passed in, which is what the tests
// and the webcc-lint compatibility wrapper use. AnalyzePaths walks
// directories, loads the config files named in AnalyzeOptions, and maintains
// the on-disk include-graph cache.

#ifndef WEBCC_TOOLS_ANALYZE_ANALYZE_H_
#define WEBCC_TOOLS_ANALYZE_ANALYZE_H_

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "tools/analyze/source.h"

namespace webcc::analyze {

// Precomputed include edges for one file, as stored in the graph cache.
struct IncludeEdges {
  std::vector<std::string> includes;
  std::vector<size_t> include_lines;
};

// Pure-scan configuration: contents are provided by the caller.
struct AnalyzeConfig {
  // Pass 2 runs iff `run_layers`; `layers_path` labels config diagnostics.
  bool run_layers = false;
  std::string layers_path = "tools/analyze/layers.txt";
  std::string layers_contents;
  // Pass 3 baseline applies iff `apply_baseline`.
  bool apply_baseline = false;
  std::string baseline_path = "tools/analyze/baseline.txt";
  std::string baseline_contents;
  // Optional pass-2 edge overrides keyed by repo-relative path, fed from the
  // include-graph cache. A file present here uses these edges instead of its
  // freshly lexed includes; entries are only ever created from byte-identical
  // content (hash-checked), so the substitution cannot change results.
  std::map<std::string, IncludeEdges> include_overrides;
};

// File-walking configuration for AnalyzePaths.
struct AnalyzeOptions {
  std::string layers_file;       // empty = skip the layer pass
  std::string baseline_file;     // empty = no baseline
  std::string graph_cache_file;  // empty = no include-graph cache
};

// Scans `sources` as one unit and returns findings sorted by
// (file, line, rule). Never touches the filesystem.
std::vector<Finding> AnalyzeSources(const std::vector<SourceFile>& sources,
                                    const AnalyzeConfig& config);

// Loads every .h/.cc/.cpp/.hpp under `roots` (directories walked
// recursively, files taken verbatim, missing paths become `analyze-io`
// findings), loads the config files in `options`, and scans. The include-
// graph cache, when enabled, memoizes per-file include edges keyed on a
// 64-bit content hash: unchanged files feed pass 2 from the cache, and the
// cache file is rewritten after every run so CI can persist it across
// builds keyed on the tree hash.
std::vector<Finding> AnalyzePaths(const std::vector<std::string>& roots,
                                  const AnalyzeOptions& options);

// Renders `file:line: [rule] message`, one per line (same format as
// webcc-lint, which CI and editors already parse).
void PrintFindings(const std::vector<Finding>& findings, std::ostream& out);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_ANALYZE_H_
