#include "tools/analyze/baseline.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "tools/analyze/layers.h"

namespace webcc::analyze {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

bool IsConfigFinding(const Finding& f) {
  if (f.line == 0) {
    return true;
  }
  const auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return f.rule.size() >= s.size() &&
           f.rule.compare(f.rule.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("-config") || ends_with("-io") || f.rule == "stale-baseline" ||
         f.rule == "stale-taint-waiver" || f.rule == "stale-dead-waiver";
}

}  // namespace

Baseline ParseBaseline(const std::string& path, const std::string& contents,
                       std::vector<Finding>* findings) {
  Baseline baseline;
  std::istringstream in(contents);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    // <file>:<line>: [<rule>] <justification>
    const size_t bracket = trimmed.find('[');
    const size_t bracket_end =
        bracket == std::string::npos ? std::string::npos : trimmed.find(']', bracket);
    bool ok = bracket != std::string::npos && bracket_end != std::string::npos;
    BaselineEntry entry;
    entry.baseline_line = line_no;
    if (ok) {
      entry.rule = trimmed.substr(bracket + 1, bracket_end - bracket - 1);
      entry.note = Trim(trimmed.substr(bracket_end + 1));
      std::string loc = Trim(trimmed.substr(0, bracket));
      // loc is "<file>:<line>:" — strip the trailing colon, split on the last.
      if (!loc.empty() && loc.back() == ':') {
        loc.pop_back();
      }
      const size_t colon = loc.rfind(':');
      ok = colon != std::string::npos && colon + 1 < loc.size();
      if (ok) {
        entry.file = loc.substr(0, colon);
        const std::string num = loc.substr(colon + 1);
        entry.line = 0;
        for (const char c : num) {
          if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
            ok = false;
            break;
          }
          entry.line = entry.line * 10 + static_cast<size_t>(c - '0');
        }
        ok = ok && entry.line > 0 && !entry.file.empty() && !entry.rule.empty();
      }
    }
    if (!ok) {
      findings->push_back(
          Finding{path, line_no, "baseline-config",
                  "malformed baseline entry; expected '<file>:<line>: [<rule>] "
                  "<justification>'"});
      continue;
    }
    if (entry.note.empty()) {
      findings->push_back(
          Finding{path, line_no, "baseline-config",
                  "baseline entry for [" + entry.rule + "] at " + entry.file + ":" +
                      std::to_string(entry.line) +
                      " has no justification; baselining requires a written reason"});
      continue;
    }
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

void ApplyBaseline(const Baseline& baseline, const std::string& baseline_path,
                   std::vector<Finding>* findings) {
  std::vector<bool> entry_used(baseline.entries.size(), false);
  std::vector<Finding> kept;
  kept.reserve(findings->size());
  for (Finding& f : *findings) {
    bool suppressed = false;
    if (!IsConfigFinding(f)) {
      const std::string rel = RepoRelative(f.file);
      for (size_t e = 0; e < baseline.entries.size(); ++e) {
        const BaselineEntry& entry = baseline.entries[e];
        if (entry.line == f.line && entry.rule == f.rule &&
            RepoRelative(entry.file) == rel) {
          entry_used[e] = true;
          suppressed = true;
          // No break: duplicate entries for one finding all count as used.
        }
      }
    }
    if (!suppressed) {
      kept.push_back(std::move(f));
    }
  }
  for (size_t e = 0; e < baseline.entries.size(); ++e) {
    if (entry_used[e]) {
      continue;
    }
    const BaselineEntry& entry = baseline.entries[e];
    kept.push_back(Finding{
        baseline_path, entry.baseline_line, "stale-baseline",
        "baseline entry matches no current finding (" + entry.file + ":" +
            std::to_string(entry.line) + " [" + entry.rule +
            "]); the code moved or was fixed — delete the entry"});
  }
  *findings = std::move(kept);
}

}  // namespace webcc::analyze
