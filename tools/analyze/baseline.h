// Baseline mechanism for webcc-analyze (pass 3).
//
// A baseline entry acknowledges one existing finding so a new rule can land
// tight without a big-bang cleanup. Format, one entry per line:
//
//     <repo-relative-file>:<line>: [<rule>] <justification>
//
// e.g.
//
//     src/cache/proxy_cache.cc:120: [discarded-parse-result] result feeds the
//
// Three properties keep the baseline honest:
//
//   * matching is exact on (file, line, rule) — if the code moves, the entry
//     goes stale;
//   * a stale entry (matching no current finding) is itself an error
//     (`stale-baseline`), so the file can only shrink ratchet-style and
//     never accumulates dead weight;
//   * the justification is mandatory — an entry without one is a
//     `baseline-config` error. Baselining is for findings someone has
//     argued about in writing, not a bulk mute button.
//
// Waiver precedence: an inline `allow(...)`/`allow-file(...)` waiver removes
// the finding before the baseline is consulted, so a baselined finding whose
// line later gains an inline waiver shows up as stale — delete the entry.

#ifndef WEBCC_TOOLS_ANALYZE_BASELINE_H_
#define WEBCC_TOOLS_ANALYZE_BASELINE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/analyze/source.h"

namespace webcc::analyze {

struct BaselineEntry {
  std::string file;  // repo-relative, as written in the baseline
  size_t line = 0;
  std::string rule;
  std::string note;       // justification (non-empty by construction)
  size_t baseline_line = 0;  // where in baseline.txt this entry lives
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

// Parses baseline text. Malformed lines and entries missing a justification
// produce `baseline-config` findings against `path` and are dropped.
Baseline ParseBaseline(const std::string& path, const std::string& contents,
                       std::vector<Finding>* findings);

// Removes findings matched by the baseline from `findings` (matching on
// repo-relative file + line + rule) and appends one `stale-baseline` finding
// per entry that matched nothing. Config-error findings (line 0 or rules
// ending in -config/-io) are never baselined away.
void ApplyBaseline(const Baseline& baseline, const std::string& baseline_path,
                   std::vector<Finding>* findings);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_BASELINE_H_
