#include "tools/analyze/callgraph.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "tools/analyze/layers.h"

namespace webcc::analyze {
namespace {

// First path component of the repo-relative path: "src", "bench", "tools",
// or "" when the file sits outside the known roots (fixtures).
std::string RootOf(const std::string& path) {
  const std::string rel = RepoRelative(path);
  const size_t slash = rel.find('/');
  const std::string first = slash == std::string::npos ? rel : rel.substr(0, slash);
  if (first == "src" || first == "bench" || first == "tools" || first == "tests") {
    return first;
  }
  return "";
}

bool RootMayCall(const std::string& caller_root, const std::string& callee_root) {
  if (caller_root.empty() || callee_root.empty()) {
    return true;  // fixture trees and ad-hoc scans: no root fencing
  }
  if (caller_root == callee_root) {
    return true;
  }
  // Mirrors the include-layer guarantees: bench may use src; src never uses
  // bench or tools; tools is standalone.
  return caller_root == "bench" && callee_root == "src";
}

// True when `scope` ends with `qualifier` on a '::' boundary:
// ("webcc::ThreadPool", "ThreadPool") → true.
bool ScopeEndsWith(const std::string& scope, const std::string& qualifier) {
  if (qualifier.size() > scope.size()) {
    return false;
  }
  if (scope.compare(scope.size() - qualifier.size(), qualifier.size(), qualifier) != 0) {
    return false;
  }
  const size_t before = scope.size() - qualifier.size();
  if (before == 0) {
    return true;
  }
  return before >= 2 && scope.compare(before - 2, 2, "::") == 0;
}

}  // namespace

std::vector<size_t> ResolveCallCandidates(const SymbolIndex& index, size_t caller,
                                          const CallUse& call) {
  const FunctionSymbol& fn = index.functions[caller];
  const auto it = index.definitions_by_name.find(call.callee);
  if (it == index.definitions_by_name.end()) {
    return {};  // external / std / macro: not in the scan unit
  }
  const std::string caller_root = RootOf(fn.file);
  std::vector<size_t> candidates;
  for (const size_t def : it->second) {
    if (def == caller) {
      continue;  // direct self-recursion adds nothing to reachability
    }
    const FunctionSymbol& target = index.functions[def];
    if (!RootMayCall(caller_root, RootOf(target.file))) {
      continue;
    }
    if (call.receiver == CallReceiver::kScoped && !call.qualifier.empty() &&
        !ScopeEndsWith(target.scope, call.qualifier)) {
      continue;
    }
    if (call.receiver == CallReceiver::kMember && !target.is_method) {
      continue;
    }
    candidates.push_back(def);
  }
  if (call.receiver == CallReceiver::kPlain && fn.is_method) {
    // Implicit-this preference: a plain call inside a method binds to a
    // same-class candidate when one exists.
    std::vector<size_t> same_class;
    for (const size_t def : candidates) {
      if (index.functions[def].scope == fn.scope) {
        same_class.push_back(def);
      }
    }
    if (!same_class.empty()) {
      candidates = std::move(same_class);
    }
  }
  return candidates;
}

bool QualifiedSuffixMatches(const std::string& qualified_name, const std::string& entry) {
  if (qualified_name == entry) {
    return true;
  }
  if (entry.size() + 2 > qualified_name.size()) {
    return false;
  }
  const size_t suffix_at = qualified_name.size() - entry.size();
  return qualified_name.compare(suffix_at, entry.size(), entry) == 0 &&
         qualified_name.compare(suffix_at - 2, 2, "::") == 0;
}

CallGraph BuildCallGraph(const SymbolIndex& index) {
  CallGraph graph;
  graph.callees.resize(index.functions.size());

  for (size_t caller = 0; caller < index.functions.size(); ++caller) {
    const FunctionSymbol& fn = index.functions[caller];
    if (!fn.is_definition || fn.calls.empty()) {
      continue;
    }
    std::set<size_t> edges;
    for (const CallUse& call : fn.calls) {
      const std::vector<size_t> candidates = ResolveCallCandidates(index, caller, call);
      edges.insert(candidates.begin(), candidates.end());
    }
    graph.callees[caller].assign(edges.begin(), edges.end());
  }
  return graph;
}

std::vector<DeadSymbol> DeadSymbols(const SymbolIndex& index) {
  // Count how many identifier tokens each function name accounts for via its
  // own definition/declaration records (the name token in each signature).
  std::map<std::string, size_t> own_records;
  for (const FunctionSymbol& fn : index.functions) {
    // Destructor records spell the name after '~'; the census token is the
    // bare class name, which constructors also claim — skip both forms along
    // with operators (their spelling is not a single identifier token).
    if (fn.name.empty() || fn.name[0] == '~' || fn.name.rfind("operator", 0) == 0) {
      continue;
    }
    ++own_records[fn.name];
  }

  std::vector<DeadSymbol> dead;
  for (const FunctionSymbol& fn : index.functions) {
    if (!fn.is_definition || fn.name.empty() || fn.name[0] == '~' ||
        fn.name.rfind("operator", 0) == 0 || fn.name == "main") {
      continue;
    }
    // Constructors: name equals the last scope component.
    const size_t last_sep = fn.scope.rfind("::");
    const std::string scope_tail =
        last_sep == std::string::npos ? fn.scope : fn.scope.substr(last_sep + 2);
    if (fn.name == scope_tail) {
      continue;
    }
    const auto census = index.ident_census.find(fn.name);
    const size_t total = census == index.ident_census.end() ? 0 : census->second;
    if (total > own_records[fn.name]) {
      continue;  // the spelling appears somewhere beyond its own signatures
    }
    dead.push_back(DeadSymbol{fn.qualified_name, fn.file, fn.line});
  }
  std::sort(dead.begin(), dead.end(), [](const DeadSymbol& a, const DeadSymbol& b) {
    const std::string ra = RepoRelative(a.file);
    const std::string rb = RepoRelative(b.file);
    if (ra != rb) return ra < rb;
    if (a.line != b.line) return a.line < b.line;
    return a.qualified_name < b.qualified_name;
  });
  return dead;
}

std::vector<std::string> DeadSymbolReport(const SymbolIndex& index) {
  std::vector<std::string> out;
  for (const DeadSymbol& d : DeadSymbols(index)) {
    const std::string rel = RepoRelative(d.file);
    out.push_back(d.qualified_name + "  " + rel + ":" + std::to_string(d.line));
  }
  return out;
}

std::vector<DeadWaiver> ParseDeadWaivers(const std::string& path,
                                         const std::string& contents,
                                         std::vector<Finding>* findings) {
  std::vector<DeadWaiver> waivers;
  std::istringstream in(contents);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    // Continuation lines (indented) extend the previous justification.
    if (first > 0 && !waivers.empty()) {
      waivers.back().justification += " " + line.substr(first);
      continue;
    }
    const size_t name_end = line.find_first_of(" \t", first);
    const std::string name =
        line.substr(first, name_end == std::string::npos ? std::string::npos
                                                         : name_end - first);
    std::string justification;
    if (name_end != std::string::npos) {
      const size_t just = line.find_first_not_of(" \t", name_end);
      if (just != std::string::npos) {
        justification = line.substr(just);
      }
    }
    if (justification.empty()) {
      findings->push_back(
          Finding{path, line_no, "dead-config",
                  "dead-symbol waiver for '" + name +
                      "' has no justification; every waiver must say why the "
                      "symbol stays despite having no callers"});
      continue;
    }
    waivers.push_back(DeadWaiver{name, justification, line_no});
  }
  return waivers;
}

void CheckDeadSymbols(const SymbolIndex& index, const std::vector<DeadWaiver>& waivers,
                      const std::string& waivers_path, std::vector<Finding>* findings) {
  const std::vector<DeadSymbol> dead = DeadSymbols(index);
  std::vector<bool> used(waivers.size(), false);
  for (const DeadSymbol& d : dead) {
    bool waived = false;
    for (size_t w = 0; w < waivers.size(); ++w) {
      if (QualifiedSuffixMatches(d.qualified_name, waivers[w].function)) {
        used[w] = true;
        waived = true;
      }
    }
    if (!waived) {
      findings->push_back(
          Finding{d.file, d.line, "dead-symbol",
                  "'" + d.qualified_name +
                      "' has no references anywhere in the scan unit; delete it "
                      "or waive it with a justification in the dead-symbol "
                      "waiver file"});
    }
  }
  for (size_t w = 0; w < waivers.size(); ++w) {
    if (!used[w]) {
      findings->push_back(
          Finding{waivers_path, waivers[w].line, "stale-dead-waiver",
                  "dead-symbol waiver for '" + waivers[w].function +
                      "' no longer matches any dead definition; delete it"});
    }
  }
}

}  // namespace webcc::analyze
