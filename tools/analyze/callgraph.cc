#include "tools/analyze/callgraph.h"

#include <algorithm>
#include <set>

#include "tools/analyze/layers.h"

namespace webcc::analyze {
namespace {

// First path component of the repo-relative path: "src", "bench", "tools",
// or "" when the file sits outside the known roots (fixtures).
std::string RootOf(const std::string& path) {
  const std::string rel = RepoRelative(path);
  const size_t slash = rel.find('/');
  const std::string first = slash == std::string::npos ? rel : rel.substr(0, slash);
  if (first == "src" || first == "bench" || first == "tools" || first == "tests") {
    return first;
  }
  return "";
}

bool RootMayCall(const std::string& caller_root, const std::string& callee_root) {
  if (caller_root.empty() || callee_root.empty()) {
    return true;  // fixture trees and ad-hoc scans: no root fencing
  }
  if (caller_root == callee_root) {
    return true;
  }
  // Mirrors the include-layer guarantees: bench may use src; src never uses
  // bench or tools; tools is standalone.
  return caller_root == "bench" && callee_root == "src";
}

// True when `scope` ends with `qualifier` on a '::' boundary:
// ("webcc::ThreadPool", "ThreadPool") → true.
bool ScopeEndsWith(const std::string& scope, const std::string& qualifier) {
  if (qualifier.size() > scope.size()) {
    return false;
  }
  if (scope.compare(scope.size() - qualifier.size(), qualifier.size(), qualifier) != 0) {
    return false;
  }
  const size_t before = scope.size() - qualifier.size();
  if (before == 0) {
    return true;
  }
  return before >= 2 && scope.compare(before - 2, 2, "::") == 0;
}

}  // namespace

CallGraph BuildCallGraph(const SymbolIndex& index) {
  CallGraph graph;
  graph.callees.resize(index.functions.size());

  for (size_t caller = 0; caller < index.functions.size(); ++caller) {
    const FunctionSymbol& fn = index.functions[caller];
    if (!fn.is_definition || fn.calls.empty()) {
      continue;
    }
    const std::string caller_root = RootOf(fn.file);
    std::set<size_t> edges;
    for (const CallUse& call : fn.calls) {
      const auto it = index.definitions_by_name.find(call.callee);
      if (it == index.definitions_by_name.end()) {
        continue;  // external / std / macro: not in the scan unit
      }
      std::vector<size_t> candidates;
      for (const size_t def : it->second) {
        if (def == caller) {
          continue;  // direct self-recursion adds nothing to reachability
        }
        const FunctionSymbol& target = index.functions[def];
        if (!RootMayCall(caller_root, RootOf(target.file))) {
          continue;
        }
        if (call.receiver == CallReceiver::kScoped && !call.qualifier.empty() &&
            !ScopeEndsWith(target.scope, call.qualifier)) {
          continue;
        }
        if (call.receiver == CallReceiver::kMember && !target.is_method) {
          continue;
        }
        candidates.push_back(def);
      }
      if (call.receiver == CallReceiver::kPlain && fn.is_method) {
        // Implicit-this preference: a plain call inside a method binds to a
        // same-class candidate when one exists.
        std::vector<size_t> same_class;
        for (const size_t def : candidates) {
          if (index.functions[def].scope == fn.scope) {
            same_class.push_back(def);
          }
        }
        if (!same_class.empty()) {
          candidates = std::move(same_class);
        }
      }
      edges.insert(candidates.begin(), candidates.end());
    }
    graph.callees[caller].assign(edges.begin(), edges.end());
  }
  return graph;
}

std::vector<std::string> DeadSymbolReport(const SymbolIndex& index) {
  // Count how many identifier tokens each function name accounts for via its
  // own definition/declaration records (the name token in each signature).
  std::map<std::string, size_t> own_records;
  for (const FunctionSymbol& fn : index.functions) {
    // Destructor records spell the name after '~'; the census token is the
    // bare class name, which constructors also claim — skip both forms along
    // with operators (their spelling is not a single identifier token).
    if (fn.name.empty() || fn.name[0] == '~' || fn.name.rfind("operator", 0) == 0) {
      continue;
    }
    ++own_records[fn.name];
  }

  struct Dead {
    std::string rel_file;
    size_t line;
    std::string text;
  };
  std::vector<Dead> dead;
  for (const FunctionSymbol& fn : index.functions) {
    if (!fn.is_definition || fn.name.empty() || fn.name[0] == '~' ||
        fn.name.rfind("operator", 0) == 0 || fn.name == "main") {
      continue;
    }
    // Constructors: name equals the last scope component.
    const size_t last_sep = fn.scope.rfind("::");
    const std::string scope_tail =
        last_sep == std::string::npos ? fn.scope : fn.scope.substr(last_sep + 2);
    if (fn.name == scope_tail) {
      continue;
    }
    const auto census = index.ident_census.find(fn.name);
    const size_t total = census == index.ident_census.end() ? 0 : census->second;
    if (total > own_records[fn.name]) {
      continue;  // the spelling appears somewhere beyond its own signatures
    }
    const std::string rel = RepoRelative(fn.file);
    dead.push_back(Dead{rel, fn.line,
                        fn.qualified_name + "  " + rel + ":" + std::to_string(fn.line)});
  }
  std::sort(dead.begin(), dead.end(), [](const Dead& a, const Dead& b) {
    if (a.rel_file != b.rel_file) return a.rel_file < b.rel_file;
    if (a.line != b.line) return a.line < b.line;
    return a.text < b.text;
  });
  std::vector<std::string> out;
  out.reserve(dead.size());
  for (Dead& d : dead) {
    out.push_back(std::move(d.text));
  }
  return out;
}

}  // namespace webcc::analyze
