// Pass 4 of webcc-analyze, stage 2: a name-resolved call graph.
//
// Resolution is heuristic — the indexer (symbols.h) has no types — but it is
// deterministic and deliberately conservative in the direction that matters
// for taint: when several definitions share a name, a call site links to
// every candidate that survives the scoping filters, so taint can only be
// over-reported (then waived), never silently dropped.
//
// Candidate filters, in order:
//   1. Root scoping. A caller under src/ links only to definitions under
//      src/; bench/ links to src/ + bench/; tools/ links only to tools/.
//      This uses the layer DAG's own guarantee (pass 2 bans src→bench and
//      src→tools includes) to keep same-named helpers in different roots
//      from cross-contaminating the graph.
//   2. Spelled receiver. `A::f(...)` keeps candidates whose scope ends in
//      `A` (on a `::` boundary); `obj.f(...)` keeps methods only.
//   3. Same-class preference. A plain `f(...)` inside a method of class C
//      prefers candidates scoped to C when any exist (the implicit `this`).
//
// The dead-symbol report is census-based: a definition is dead when every
// occurrence of its name in the scan unit is accounted for by its own
// definition/declaration records — i.e. the spelling never appears as a call,
// reference, or mention anywhere else. Macro-wrapped references still count
// (the census includes preprocessor tokens), so the report under-reports
// rather than over-reports. It is advisory by design: main(), operators,
// constructors and destructors are excluded, and functions only exercised by
// the (unscanned) tests/ tree will appear — that is a signal, not an error.

#ifndef WEBCC_TOOLS_ANALYZE_CALLGRAPH_H_
#define WEBCC_TOOLS_ANALYZE_CALLGRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/analyze/source.h"
#include "tools/analyze/symbols.h"

namespace webcc::analyze {

// Edges between definition records of a SymbolIndex. callees[i] holds the
// indices (into SymbolIndex::functions) that definition i may call, sorted
// and deduplicated; non-definitions have empty edge lists.
struct CallGraph {
  std::vector<std::vector<size_t>> callees;
};

CallGraph BuildCallGraph(const SymbolIndex& index);

// Resolves one call site of `index.functions[caller]` to candidate
// definition indices, applying the filters described above (root fencing,
// spelled receiver, same-class preference). Sorted ascending; never contains
// `caller` itself. This is the same resolution BuildCallGraph aggregates —
// exposed so the pass-5 lock analysis can resolve per call site.
std::vector<size_t> ResolveCallCandidates(const SymbolIndex& index, size_t caller,
                                          const CallUse& call);

// True when `entry` names `qualified_name` exactly or as a trailing suffix
// on a '::' boundary ("ThreadPool::Wait" matches "webcc::ThreadPool::Wait").
// The match rule every waiver list in the analyzer uses.
bool QualifiedSuffixMatches(const std::string& qualified_name, const std::string& entry);

// One line per dead definition: "qualified_name  file:line", sorted by
// repo-relative file, then line. See the header comment for what "dead"
// means here.
std::vector<std::string> DeadSymbolReport(const SymbolIndex& index);

// Structured form of the same report, for the gated mode.
struct DeadSymbol {
  std::string qualified_name;
  std::string file;  // path as scanned
  size_t line = 0;
};
std::vector<DeadSymbol> DeadSymbols(const SymbolIndex& index);

// A dead-symbol waiver: same file contract as the taint waivers (name plus
// mandatory justification, indented continuation lines, '#' comments).
struct DeadWaiver {
  std::string function;       // qualified-name suffix
  std::string justification;  // mandatory, free text
  size_t line = 0;            // 1-based line in the waiver file
};

// Parses the waiver list. Malformed lines (no justification) append
// `dead-config` findings against `path` and are skipped.
std::vector<DeadWaiver> ParseDeadWaivers(const std::string& path,
                                         const std::string& contents,
                                         std::vector<Finding>* findings);

// The gated dead-symbol check: every dead definition must match a waiver
// (`dead-symbol` findings otherwise), and every waiver must still match a
// dead definition (`stale-dead-waiver` findings otherwise — same ratchet as
// the baseline and the taint waivers).
void CheckDeadSymbols(const SymbolIndex& index, const std::vector<DeadWaiver>& waivers,
                      const std::string& waivers_path, std::vector<Finding>* findings);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_CALLGRAPH_H_
