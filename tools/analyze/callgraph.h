// Pass 4 of webcc-analyze, stage 2: a name-resolved call graph.
//
// Resolution is heuristic — the indexer (symbols.h) has no types — but it is
// deterministic and deliberately conservative in the direction that matters
// for taint: when several definitions share a name, a call site links to
// every candidate that survives the scoping filters, so taint can only be
// over-reported (then waived), never silently dropped.
//
// Candidate filters, in order:
//   1. Root scoping. A caller under src/ links only to definitions under
//      src/; bench/ links to src/ + bench/; tools/ links only to tools/.
//      This uses the layer DAG's own guarantee (pass 2 bans src→bench and
//      src→tools includes) to keep same-named helpers in different roots
//      from cross-contaminating the graph.
//   2. Spelled receiver. `A::f(...)` keeps candidates whose scope ends in
//      `A` (on a `::` boundary); `obj.f(...)` keeps methods only.
//   3. Same-class preference. A plain `f(...)` inside a method of class C
//      prefers candidates scoped to C when any exist (the implicit `this`).
//
// The dead-symbol report is census-based: a definition is dead when every
// occurrence of its name in the scan unit is accounted for by its own
// definition/declaration records — i.e. the spelling never appears as a call,
// reference, or mention anywhere else. Macro-wrapped references still count
// (the census includes preprocessor tokens), so the report under-reports
// rather than over-reports. It is advisory by design: main(), operators,
// constructors and destructors are excluded, and functions only exercised by
// the (unscanned) tests/ tree will appear — that is a signal, not an error.

#ifndef WEBCC_TOOLS_ANALYZE_CALLGRAPH_H_
#define WEBCC_TOOLS_ANALYZE_CALLGRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/analyze/symbols.h"

namespace webcc::analyze {

// Edges between definition records of a SymbolIndex. callees[i] holds the
// indices (into SymbolIndex::functions) that definition i may call, sorted
// and deduplicated; non-definitions have empty edge lists.
struct CallGraph {
  std::vector<std::vector<size_t>> callees;
};

CallGraph BuildCallGraph(const SymbolIndex& index);

// One line per dead definition: "qualified_name  file:line", sorted by
// repo-relative file, then line. See the header comment for what "dead"
// means here.
std::vector<std::string> DeadSymbolReport(const SymbolIndex& index);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_CALLGRAPH_H_
