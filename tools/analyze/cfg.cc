#include "tools/analyze/cfg.h"

#include <map>
#include <set>

namespace webcc::analyze {
namespace {

constexpr size_t kDead = static_cast<size_t>(-1);

bool IsAllCaps(const std::string& t) {
  bool has_alpha = false;
  for (const char c : t) {
    if (c >= 'a' && c <= 'z') {
      return false;
    }
    if (c >= 'A' && c <= 'Z') {
      has_alpha = true;
    }
  }
  return has_alpha;
}

bool IsCallExcludedKeyword(const std::string& t) {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "if",       "for",     "while",     "switch",        "return",   "sizeof",
      "alignof",  "alignas", "catch",     "throw",         "new",      "delete",
      "decltype", "typeid",  "noexcept",  "static_assert", "co_await", "co_return",
      "co_yield", "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast"};
  return kw->count(t) != 0;
}

bool IsLockClass(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
         t == "shared_lock";
}

bool IsCvWaitName(const std::string& t) {
  return t == "wait" || t == "wait_for" || t == "wait_until";
}

// --- The builder ------------------------------------------------------------

class CfgBuilder {
 public:
  explicit CfgBuilder(const std::vector<const Token*>& sig) : sig_(sig) {
    cfg_.nodes.resize(2);  // kEntry, kExit
  }

  // `scan_begin` may precede `body_open` (ctor init list); `body_end` is one
  // past the closing brace.
  Cfg Build(size_t scan_begin, size_t body_open, size_t body_end) {
    PushScope();
    size_t cur = Cfg::kEntry;
    if (scan_begin < body_open) {
      ScanExpr(scan_begin, body_open, cur);
    }
    size_t i = body_open + 1;
    cur = ParseStmts(&i, body_end > 0 ? body_end - 1 : 0, cur);
    cur = CloseScope(cur);
    if (cur != kDead) {
      Edge(cur, Cfg::kExit);
    }
    return std::move(cfg_);
  }

 private:
  struct LoopCtx {
    size_t break_to = kDead;
    size_t continue_to = kDead;  // kDead inside a switch
    size_t guard_depth = 0;
  };

  const std::string& Text(size_t i) const {
    static const std::string empty;
    return i < sig_.size() ? sig_[i]->text : empty;
  }
  bool IsIdent(size_t i) const {
    return i < sig_.size() && sig_[i]->kind == TokenKind::kIdentifier;
  }
  bool IsPunct(size_t i, const char* p) const {
    return i < sig_.size() && sig_[i]->kind == TokenKind::kPunct && sig_[i]->text == p;
  }
  size_t Line(size_t i) const { return i < sig_.size() ? sig_[i]->line : 0; }

  size_t SkipParens(size_t i) const { return SkipBalanced(i, "(", ")"); }
  size_t SkipBraces(size_t i) const { return SkipBalanced(i, "{", "}"); }
  size_t SkipBrackets(size_t i) const { return SkipBalanced(i, "[", "]"); }

  size_t SkipBalanced(size_t i, const char* open, const char* close) const {
    int depth = 0;
    while (i < sig_.size()) {
      if (IsPunct(i, open)) {
        ++depth;
      } else if (IsPunct(i, close)) {
        --depth;
        if (depth == 0) {
          return i + 1;
        }
      }
      ++i;
    }
    return i;
  }

  size_t NewNode() {
    cfg_.nodes.emplace_back();
    return cfg_.nodes.size() - 1;
  }
  void Edge(size_t from, size_t to) {
    if (from != kDead && to != kDead) {
      cfg_.nodes[from].succ.push_back(to);
    }
  }
  void Emit(size_t node, CfgEvent ev) {
    if (node != kDead) {
      cfg_.nodes[node].events.push_back(std::move(ev));
    }
  }

  // --- Guard scopes ---------------------------------------------------------

  void PushScope() { scope_guards_.emplace_back(); }

  // Emits the implicit releases for the innermost scope into `cur` and pops
  // it. Returns `cur` unchanged (the unlocks only matter on live paths).
  size_t CloseScope(size_t cur) {
    if (!scope_guards_.empty()) {
      const std::vector<std::string>& guards = scope_guards_.back();
      for (size_t g = guards.size(); g > 0; --g) {
        Emit(cur, CfgEvent{CfgEventKind::kUnlock, guards[g - 1], {}, 0, false, 0});
      }
      scope_guards_.pop_back();
    }
    return cur;
  }

  // Emits releases for every scope deeper than `depth` (a jump out of those
  // scopes) without popping — the scopes stay open for the fall-through path.
  void UnwindTo(size_t depth, size_t cur) {
    for (size_t s = scope_guards_.size(); s > depth; --s) {
      const std::vector<std::string>& guards = scope_guards_[s - 1];
      for (size_t g = guards.size(); g > 0; --g) {
        Emit(cur, CfgEvent{CfgEventKind::kUnlock, guards[g - 1], {}, 0, false, 0});
      }
    }
  }

  // --- Statements -----------------------------------------------------------

  size_t ParseStmts(size_t* i, size_t end, size_t cur) {
    while (*i < end) {
      if (cur == kDead) {
        cur = NewNode();  // unreachable island: keeps parsing aligned
      }
      cur = ParseStmt(i, end, cur);
    }
    return cur;
  }

  // Parses one statement starting at *i, advancing *i past it. Returns the
  // node where control falls out, or kDead when every path jumped away.
  size_t ParseStmt(size_t* i, size_t end, size_t cur) {
    if (*i >= end) {
      return cur;
    }
    if (IsPunct(*i, "{")) {
      return ParseBlock(i, cur);
    }
    if (IsPunct(*i, ";")) {
      ++*i;
      return cur;
    }
    if (IsIdent(*i)) {
      const std::string& t = Text(*i);
      if (t == "if") {
        return ParseIf(i, end, cur);
      }
      if (t == "while") {
        return ParseWhile(i, end, cur);
      }
      if (t == "for") {
        return ParseFor(i, end, cur);
      }
      if (t == "do") {
        return ParseDo(i, end, cur);
      }
      if (t == "switch") {
        return ParseSwitch(i, end, cur);
      }
      if (t == "try") {
        return ParseTry(i, end, cur);
      }
      if (t == "return" || t == "throw" || t == "co_return" || t == "goto") {
        const size_t stmt_end = StatementEnd(*i + 1, end);
        ScanExpr(*i + 1, stmt_end, cur);
        UnwindTo(0, cur);
        Edge(cur, Cfg::kExit);
        *i = stmt_end < end ? stmt_end + 1 : end;
        return kDead;
      }
      if (t == "break" || t == "continue") {
        const bool is_continue = t == "continue";
        for (size_t c = ctx_.size(); c > 0; --c) {
          const LoopCtx& ctx = ctx_[c - 1];
          const size_t target = is_continue ? ctx.continue_to : ctx.break_to;
          if (target == kDead) {
            continue;  // `continue` passes through enclosing switches
          }
          UnwindTo(ctx.guard_depth, cur);
          Edge(cur, target);
          *i = StatementEnd(*i, end);
          if (*i < end) {
            ++*i;  // past ';'
          }
          return kDead;
        }
        // Stray break/continue (malformed): treat as a terminator.
        UnwindTo(0, cur);
        Edge(cur, Cfg::kExit);
        *i = StatementEnd(*i, end);
        if (*i < end) {
          ++*i;
        }
        return kDead;
      }
      if (t == "case" || t == "default") {
        // Label outside the switch walker (defensive): skip to the colon.
        while (*i < end && !IsPunct(*i, ":")) {
          ++*i;
        }
        if (*i < end) {
          ++*i;
        }
        return cur;
      }
      if (t == "else") {
        ++*i;  // stray else: recover
        return cur;
      }
    }
    // Simple statement (declaration, expression, ...).
    const size_t stmt_end = StatementEnd(*i, end);
    ScanExpr(*i, stmt_end, cur);
    *i = stmt_end < end ? stmt_end + 1 : end;
    return cur;
  }

  // Index of the next ';' at balance zero, or `end`.
  size_t StatementEnd(size_t i, size_t end) const {
    while (i < end) {
      if (IsPunct(i, "(")) {
        i = SkipParens(i);
      } else if (IsPunct(i, "[")) {
        i = SkipBrackets(i);
      } else if (IsPunct(i, "{")) {
        i = SkipBraces(i);
      } else if (IsPunct(i, ";")) {
        return i;
      } else {
        ++i;
      }
    }
    return end;
  }

  size_t ParseBlock(size_t* i, size_t cur) {
    const size_t close = SkipBraces(*i);  // one past '}'
    size_t j = *i + 1;
    PushScope();
    cur = ParseStmts(&j, close > 0 ? close - 1 : 0, cur);
    cur = CloseScope(cur);
    *i = close;
    return cur;
  }

  // A branch body: `{ ... }` or a single statement (own guard scope).
  size_t ParseBranch(size_t* i, size_t end, size_t cur) {
    if (IsPunct(*i, "{")) {
      return ParseBlock(i, cur);
    }
    PushScope();
    cur = ParseStmt(i, end, cur);
    return CloseScope(cur);
  }

  size_t ParseIf(size_t* i, size_t end, size_t cur) {
    ++*i;  // past 'if'
    if (IsIdent(*i) && Text(*i) == "constexpr") {
      ++*i;
    }
    if (!IsPunct(*i, "(")) {
      return cur;  // malformed; re-examine next token as a new statement
    }
    const size_t close = SkipParens(*i);
    ScanExpr(*i + 1, close > 0 ? close - 1 : 0, cur);
    *i = close;

    const size_t then_entry = NewNode();
    Edge(cur, then_entry);
    const size_t then_exit = ParseBranch(i, end, then_entry);

    if (IsIdent(*i) && Text(*i) == "else") {
      ++*i;
      const size_t else_entry = NewNode();
      Edge(cur, else_entry);
      const size_t else_exit = ParseBranch(i, end, else_entry);
      if (then_exit == kDead && else_exit == kDead) {
        return kDead;
      }
      const size_t join = NewNode();
      Edge(then_exit, join);
      Edge(else_exit, join);
      return join;
    }
    const size_t join = NewNode();
    Edge(cur, join);  // the condition-false path
    Edge(then_exit, join);
    return join;
  }

  size_t ParseWhile(size_t* i, size_t end, size_t cur) {
    ++*i;  // past 'while'
    if (!IsPunct(*i, "(")) {
      return cur;
    }
    const size_t head = NewNode();
    Edge(cur, head);
    const size_t close = SkipParens(*i);
    ScanExpr(*i + 1, close > 0 ? close - 1 : 0, head);
    *i = close;

    const size_t body_entry = NewNode();
    const size_t after = NewNode();
    Edge(head, body_entry);
    Edge(head, after);
    ctx_.push_back(LoopCtx{after, head, scope_guards_.size()});
    const size_t body_exit = ParseBranch(i, end, body_entry);
    ctx_.pop_back();
    Edge(body_exit, head);
    return after;
  }

  size_t ParseFor(size_t* i, size_t end, size_t cur) {
    ++*i;  // past 'for'
    if (!IsPunct(*i, "(")) {
      return cur;
    }
    // Init/cond/step (or range decl) all land in the loop head; a guard
    // declared in the init scopes to the loop.
    PushScope();
    const size_t head = NewNode();
    Edge(cur, head);
    const size_t close = SkipParens(*i);
    ScanExpr(*i + 1, close > 0 ? close - 1 : 0, head);
    *i = close;

    const size_t body_entry = NewNode();
    const size_t after = NewNode();
    Edge(head, body_entry);
    Edge(head, after);
    ctx_.push_back(LoopCtx{after, head, scope_guards_.size()});
    const size_t body_exit = ParseBranch(i, end, body_entry);
    ctx_.pop_back();
    Edge(body_exit, head);
    CloseScope(after);
    return after;
  }

  size_t ParseDo(size_t* i, size_t end, size_t cur) {
    ++*i;  // past 'do'
    const size_t body_entry = NewNode();
    Edge(cur, body_entry);
    const size_t cond = NewNode();
    const size_t after = NewNode();
    ctx_.push_back(LoopCtx{after, cond, scope_guards_.size()});
    const size_t body_exit = ParseBranch(i, end, body_entry);
    ctx_.pop_back();
    Edge(body_exit, cond);
    if (IsIdent(*i) && Text(*i) == "while" && IsPunct(*i + 1, "(")) {
      const size_t close = SkipParens(*i + 1);
      ScanExpr(*i + 2, close > 0 ? close - 1 : 0, cond);
      *i = close;
      if (IsPunct(*i, ";")) {
        ++*i;
      }
    }
    Edge(cond, body_entry);
    Edge(cond, after);
    return after;
  }

  size_t ParseSwitch(size_t* i, size_t end, size_t cur) {
    ++*i;  // past 'switch'
    if (!IsPunct(*i, "(")) {
      return cur;
    }
    const size_t close = SkipParens(*i);
    ScanExpr(*i + 1, close > 0 ? close - 1 : 0, cur);
    *i = close;
    if (!IsPunct(*i, "{")) {
      // Degenerate single-statement switch: parse and fall through.
      return ParseStmt(i, end, cur);
    }
    const size_t body_close = SkipBraces(*i);  // one past '}'
    size_t j = *i + 1;
    const size_t body_end = body_close > 0 ? body_close - 1 : 0;
    const size_t after = NewNode();
    ctx_.push_back(LoopCtx{after, kDead, scope_guards_.size()});
    PushScope();
    size_t seg = kDead;
    bool has_default = false;
    while (j < body_end) {
      if (IsIdent(j) && Text(j) == "case") {
        while (j < body_end && !IsPunct(j, ":")) {
          if (IsPunct(j, "(")) {
            j = SkipParens(j);
          } else {
            ++j;
          }
        }
        if (j < body_end) {
          ++j;  // past ':'
        }
        const size_t next = NewNode();
        Edge(cur, next);
        Edge(seg, next);  // fallthrough from the previous label's segment
        seg = next;
        continue;
      }
      if (IsIdent(j) && Text(j) == "default" && IsPunct(j + 1, ":")) {
        j += 2;
        const size_t next = NewNode();
        Edge(cur, next);
        Edge(seg, next);
        seg = next;
        has_default = true;
        continue;
      }
      if (seg == kDead) {
        seg = NewNode();  // statements before the first label: unreachable
      }
      seg = ParseStmt(&j, body_end, seg);
    }
    seg = CloseScope(seg);
    ctx_.pop_back();
    Edge(seg, after);
    if (!has_default) {
      Edge(cur, after);
    }
    *i = body_close;
    return after;
  }

  size_t ParseTry(size_t* i, size_t end, size_t cur) {
    ++*i;  // past 'try'
    const size_t pre = cur;
    const size_t try_exit = ParseBranch(i, end, cur);
    const size_t join = NewNode();
    Edge(try_exit, join);
    while (IsIdent(*i) && Text(*i) == "catch") {
      ++*i;
      if (IsPunct(*i, "(")) {
        *i = SkipParens(*i);
      }
      // Conservative: the handler can be entered from anywhere inside the
      // try, so it starts from the lockset at try entry (any guard opened
      // inside the try block was released by unwinding).
      const size_t c_entry = NewNode();
      Edge(pre, c_entry);
      const size_t c_exit = ParseBranch(i, end, c_entry);
      Edge(c_exit, join);
    }
    return join;
  }

  // --- Expressions ----------------------------------------------------------

  // Scans [from, to) into `cur`, emitting events in token order. Lambda
  // bodies become sub-CFGs and are skipped in this walk.
  void ScanExpr(size_t from, size_t to, size_t cur) {
    std::vector<std::string> call_stack;  // callee name per open paren ("" = grouping)
    size_t i = from;
    while (i < to) {
      if (IsPunct(i, "(")) {
        const bool call = i > 0 && IsIdent(i - 1) && !IsCallExcludedKeyword(Text(i - 1));
        call_stack.push_back(call ? Text(i - 1) : std::string());
        ++i;
        continue;
      }
      if (IsPunct(i, ")")) {
        if (!call_stack.empty()) {
          call_stack.pop_back();
        }
        ++i;
        continue;
      }
      if (IsPunct(i, "[")) {
        i = ScanMaybeLambda(i, to, cur, call_stack);
        continue;
      }
      if (!IsIdent(i)) {
        ++i;
        continue;
      }

      const std::string& t = Text(i);
      const size_t line = Line(i);
      Emit(cur, CfgEvent{CfgEventKind::kAccess, t, {}, 0, false, line});

      // Guard construction: lock_guard<...> var(mu) / var{mu}.
      if (IsLockClass(t)) {
        size_t j = i + 1;
        if (IsPunct(j, "<")) {
          j = SkipAnglesAt(j);
        }
        if (IsIdent(j) && (IsPunct(j + 1, "(") || IsPunct(j + 1, "{"))) {
          const std::string mutex = FirstArgMutex(j + 2);
          if (!mutex.empty()) {
            Emit(cur, CfgEvent{CfgEventKind::kLock, mutex, {}, 0, false, line});
            if (!scope_guards_.empty()) {
              scope_guards_.back().push_back(mutex);
            }
            guard_mutex_[Text(j)] = mutex;
          }
        }
      }

      // Explicit x.lock() / x.unlock() — `x` may be a guard variable.
      if ((IsPunct(i + 1, ".") || IsPunct(i + 1, "->")) &&
          (Text(i + 2) == "lock" || Text(i + 2) == "unlock") && IsPunct(i + 3, "(")) {
        const auto it = guard_mutex_.find(t);
        const std::string mutex = it != guard_mutex_.end() ? it->second : t;
        const CfgEventKind kind =
            Text(i + 2) == "lock" ? CfgEventKind::kLock : CfgEventKind::kUnlock;
        Emit(cur, CfgEvent{kind, mutex, {}, 0, false, Line(i + 2)});
      }

      // Condition-variable waits: cv.wait(lk[, pred]) and friends.
      if (IsCvWaitName(t) && i > 0 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->")) &&
          IsPunct(i + 1, "(") && IsIdent(i + 2)) {
        const auto it = guard_mutex_.find(Text(i + 2));
        const std::string mutex = it != guard_mutex_.end() ? it->second : Text(i + 2);
        Emit(cur, CfgEvent{CfgEventKind::kCvWait, mutex, {}, 0, false, line});
      }

      // Call sites, spelled like the symbol indexer spells them.
      if (IsPunct(i + 1, "(") && !IsAllCaps(t) && !IsCallExcludedKeyword(t)) {
        CallUse call;
        call.callee = t;
        call.line = line;
        if (i > 0 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->"))) {
          const bool via_this = i >= 2 && IsPunct(i - 1, "->") && Text(i - 2) == "this";
          call.receiver = via_this ? CallReceiver::kPlain : CallReceiver::kMember;
        } else if (i > 0 && IsPunct(i - 1, "::")) {
          size_t name_pos = i;
          call.qualifier = QualifierBefore(&name_pos);
          call.receiver = CallReceiver::kScoped;
        }
        Emit(cur, CfgEvent{CfgEventKind::kCall, t, std::move(call), 0, false, line});
      }
      ++i;
    }
  }

  // At a '[': either an attribute, a subscript, or a lambda-introducer.
  // Returns the index to resume the surrounding walk at.
  size_t ScanMaybeLambda(size_t i, size_t to, size_t cur,
                         const std::vector<std::string>& call_stack) {
    if (IsPunct(i + 1, "[")) {
      return SkipBrackets(i);  // [[attribute]]
    }
    const bool subscript =
        i > 0 && (IsIdent(i - 1) || IsPunct(i - 1, ")") || IsPunct(i - 1, "]") ||
                  sig_[i - 1]->kind == TokenKind::kNumber ||
                  sig_[i - 1]->kind == TokenKind::kString);
    if (subscript) {
      // Subscript contents are part of this expression; walk into them.
      return i + 1;
    }
    const size_t capture_close = SkipBrackets(i);  // one past ']'
    // Captures are evaluated at the creation point: record their identifiers.
    for (size_t c = i + 1; c + 1 < capture_close; ++c) {
      if (IsIdent(c)) {
        Emit(cur, CfgEvent{CfgEventKind::kAccess, Text(c), {}, 0, false, Line(c)});
      }
    }
    size_t j = capture_close;
    if (IsPunct(j, "(")) {
      j = SkipParens(j);  // parameter list: declarations, not accesses
    }
    // Specifiers / trailing return type, bounded so a genuine subscript in
    // odd context cannot send us far afield.
    size_t budget = 16;
    while (j < to && !IsPunct(j, "{") && budget-- > 0) {
      if (IsPunct(j, "(")) {
        j = SkipParens(j);
      } else if (IsPunct(j, "<")) {
        j = SkipAnglesAt(j);
      } else {
        ++j;
      }
    }
    if (!IsPunct(j, "{")) {
      return i + 1;  // not a lambda after all; walk the contents normally
    }
    const size_t body_close = SkipBraces(j);  // one past '}'
    CfgBuilder inner(sig_);
    cfg_.lambdas.push_back(inner.Build(j + 1, j, body_close));
    const bool cv_predicate = !call_stack.empty() && IsCvWaitName(call_stack.back());
    const bool iife = IsPunct(body_close, "(");
    CfgEvent ev;
    ev.kind = CfgEventKind::kLambda;
    ev.lambda = cfg_.lambdas.size() - 1;
    ev.deferred = !(cv_predicate || iife);
    ev.line = Line(i);
    Emit(cur, std::move(ev));
    return body_close;
  }

  // First constructor argument starting at `a`: the last identifier before
  // the first ',' or closer at depth zero (same shape the indexer uses).
  std::string FirstArgMutex(size_t a) const {
    std::string mutex;
    int depth = 0;
    while (a < sig_.size()) {
      if (IsPunct(a, "(")) {
        ++depth;
      } else if (IsPunct(a, ")") || IsPunct(a, "}")) {
        if (depth-- == 0) {
          break;
        }
      } else if (depth == 0 && IsPunct(a, ",")) {
        break;
      } else if (IsIdent(a)) {
        mutex = Text(a);
      }
      ++a;
    }
    return mutex;
  }

  size_t SkipAnglesAt(size_t i) const {
    int depth = 0;
    int parens = 0;
    while (i < sig_.size()) {
      if (IsPunct(i, "(") || IsPunct(i, "[")) {
        ++parens;
      } else if (IsPunct(i, ")") || IsPunct(i, "]")) {
        --parens;
      } else if (parens == 0) {
        if (IsPunct(i, "<")) {
          ++depth;
        } else if (IsPunct(i, ">")) {
          if (--depth == 0) {
            return i + 1;
          }
        } else if (IsPunct(i, ">>")) {
          depth -= 2;
          if (depth <= 0) {
            return i + 1;
          }
        } else if (IsPunct(i, ";")) {
          return i;
        }
      }
      ++i;
    }
    return i;
  }

  std::string QualifierBefore(size_t* j) const {
    std::string qualifier;
    size_t k = *j;
    while (k >= 2 && IsPunct(k - 1, "::")) {
      const size_t part_end = k - 1;
      size_t part = part_end;
      if (IsIdent(part_end - 1)) {
        part = part_end - 1;
      } else {
        break;
      }
      qualifier = qualifier.empty() ? Text(part) : Text(part) + "::" + qualifier;
      k = part;
      if (k == 0) {
        break;
      }
    }
    *j = k;
    return qualifier;
  }

  const std::vector<const Token*>& sig_;
  Cfg cfg_;
  std::vector<LoopCtx> ctx_;
  std::vector<std::vector<std::string>> scope_guards_;
  std::map<std::string, std::string> guard_mutex_;
};

}  // namespace

std::vector<const Token*> SignificantTokens(const LexedFile& file) {
  std::vector<const Token*> sig;
  sig.reserve(file.tokens.size());
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kComment && !t.in_preprocessor) {
      sig.push_back(&t);
    }
  }
  return sig;
}

bool FindingWaivedInline(const LexedFile& file, size_t line, const std::string& rule) {
  if (line >= 1 && line <= file.raw_lines.size() &&
      file.raw_lines[line - 1].find("webcc-lint: allow(" + rule + ")") !=
          std::string::npos) {
    return true;
  }
  const std::string file_marker = "webcc-lint: allow-file(" + rule + ")";
  for (const std::string& raw : file.raw_lines) {
    if (raw.find(file_marker) != std::string::npos) {
      return true;
    }
  }
  return false;
}

Cfg BuildCfgFromSig(const std::vector<const Token*>& sig, const FunctionSymbol& fn) {
  CfgBuilder builder(sig);
  return builder.Build(fn.sig_scan_begin, fn.sig_body_open, fn.sig_body_end);
}

Cfg BuildCfg(const LexedFile& file, const FunctionSymbol& fn) {
  const std::vector<const Token*> sig = SignificantTokens(file);
  return BuildCfgFromSig(sig, fn);
}

}  // namespace webcc::analyze
