// Pass 5 of webcc-analyze, stage 1: per-function control-flow graphs.
//
// Built on the same significant-token stream the symbol indexer walks
// (tools/analyze/symbols.h records each definition's token span), the
// builder recovers a linter-grade CFG per function body: if/else with
// joins, while/for back edges, do/while, switch with fallthrough and
// default, break/continue/return/throw, try/catch, and nested lambdas as
// sub-graphs. Expressions are not modelled as trees — each basic block
// carries the ordered list of *events* the lock analysis needs:
//
//   kLock / kUnlock   lock_guard/unique_lock/scoped_lock/shared_lock
//                     construction, explicit mu.lock()/mu.unlock(), and the
//                     implicit release when a guard's scope closes (break,
//                     continue, and return paths release the guards of every
//                     scope they exit);
//   kCvWait           cv.wait/wait_for/wait_until(lk, ...) — the mutex named
//                     is the one the guard variable `lk` wraps;
//   kAccess           every identifier use, for guarded-member checking;
//   kCall             every call site, spelled like symbols.h CallUse;
//   kLambda           a lambda expression; its body is a sub-CFG in
//                     Cfg::lambdas. `deferred` is false only when the lambda
//                     runs at the creation point under the creation lockset:
//                     a condition-variable wait predicate, or an
//                     immediately-invoked expression. Everything else —
//                     thread bodies, pool tasks, stored callbacks — runs
//                     later with an empty lockset.
//
// Same determinism contract as every other pass: identical bytes build
// identical graphs, node indices are allocation-ordered, and the analysis
// in tools/analyze/locks.h iterates them in index order.

#ifndef WEBCC_TOOLS_ANALYZE_CFG_H_
#define WEBCC_TOOLS_ANALYZE_CFG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/analyze/lexer.h"
#include "tools/analyze/symbols.h"

namespace webcc::analyze {

enum class CfgEventKind {
  kLock,    // `name` is the mutex spelling as written (unqualified)
  kUnlock,  // ditto
  kCvWait,  // `name` is the mutex the waited-on guard wraps
  kAccess,  // `name` is the identifier
  kCall,    // `call` carries the callee
  kLambda,  // `lambda` indexes Cfg::lambdas
};

struct CfgEvent {
  CfgEventKind kind = CfgEventKind::kAccess;
  std::string name;
  CallUse call;
  size_t lambda = 0;
  bool deferred = false;  // kLambda only; see header comment
  size_t line = 0;
};

struct CfgNode {
  std::vector<CfgEvent> events;
  std::vector<size_t> succ;
};

struct Cfg {
  static constexpr size_t kEntry = 0;
  static constexpr size_t kExit = 1;
  std::vector<CfgNode> nodes;  // [kEntry] and [kExit] always exist
  std::vector<Cfg> lambdas;    // sub-graphs referenced by kLambda events
};

// Builds the CFG for one definition (`fn.sig_body_end > fn.sig_body_open`
// required). `file` must be the file the symbol was indexed from.
Cfg BuildCfg(const LexedFile& file, const FunctionSymbol& fn);

// Same, over a significant-token stream the caller already computed (one
// SignificantTokens() call per file instead of per function).
Cfg BuildCfgFromSig(const std::vector<const Token*>& sig, const FunctionSymbol& fn);

// The significant-token stream BuildCfg indexes into: every token of `file`
// that is neither a comment nor inside a preprocessor directive, in order.
std::vector<const Token*> SignificantTokens(const LexedFile& file);

// True when a pass-5 finding of `rule` at `line` (1-based) of `file` is
// waived inline: `webcc-lint: allow(<rule>)` on the finding line, or
// `webcc-lint: allow-file(<rule>)` anywhere in the file — the same comment
// grammar pass 1 honors.
bool FindingWaivedInline(const LexedFile& file, size_t line, const std::string& rule);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_CFG_H_
