#include "tools/analyze/layers.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace webcc::analyze {
namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : path) {
    if (c == '/') {
      if (!current.empty()) {
        parts.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    parts.push_back(current);
  }
  return parts;
}

bool IsRootComponent(const std::string& part) {
  return part == "src" || part == "bench" || part == "tools" || part == "tests";
}

// Module of a repo-relative src/ path: "src/cache/policy.h" -> "cache".
// Empty for files directly under src/ or paths outside src/.
std::string SrcModule(const std::string& repo_rel) {
  const std::vector<std::string> parts = SplitPath(repo_rel);
  if (parts.size() >= 3 && parts[0] == "src") {
    return parts[1];
  }
  return std::string();
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct Edge {
  size_t target = 0;  // node index
  size_t line = 0;    // include line in the source node
};

// Reports each distinct cycle once: the cycle's node sequence is rotated so
// the lexicographically smallest path comes first, then deduped.
class CycleFinder {
 public:
  CycleFinder(const std::vector<std::string>& names,
              const std::vector<std::vector<Edge>>& adj)
      : names_(names), adj_(adj), color_(names.size(), 0) {}

  std::vector<Finding> Run() {
    std::vector<size_t> order(names_.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return names_[a] < names_[b]; });
    for (const size_t n : order) {
      if (color_[n] == 0) {
        Visit(n);
      }
    }
    return std::move(findings_);
  }

 private:
  void Visit(size_t n) {
    color_[n] = 1;
    stack_.push_back(n);
    for (const Edge& e : adj_[n]) {
      if (color_[e.target] == 1) {
        ReportCycle(e.target, e.line);
      } else if (color_[e.target] == 0) {
        Visit(e.target);
      }
    }
    stack_.pop_back();
    color_[n] = 2;
  }

  void ReportCycle(size_t back_to, size_t line) {
    // The cycle is the stack suffix starting at `back_to`.
    size_t start = 0;
    for (size_t i = 0; i < stack_.size(); ++i) {
      if (stack_[i] == back_to) {
        start = i;
        break;
      }
    }
    std::vector<size_t> cycle(stack_.begin() + static_cast<long>(start), stack_.end());
    // Canonical rotation for dedupe.
    size_t min_pos = 0;
    for (size_t i = 1; i < cycle.size(); ++i) {
      if (names_[cycle[i]] < names_[cycle[min_pos]]) {
        min_pos = i;
      }
    }
    std::rotate(cycle.begin(), cycle.begin() + static_cast<long>(min_pos), cycle.end());
    std::string key;
    for (const size_t n : cycle) {
      key += names_[n];
      key += '\n';
    }
    if (!seen_.insert(key).second) {
      return;
    }
    std::ostringstream chain;
    for (const size_t n : cycle) {
      chain << names_[n] << " -> ";
    }
    chain << names_[cycle.front()];
    findings_.push_back(Finding{names_[cycle.front()], line, "layer-cycle",
                                "include cycle: " + chain.str()});
  }

  const std::vector<std::string>& names_;
  const std::vector<std::vector<Edge>>& adj_;
  std::vector<int> color_;  // 0 = white, 1 = on stack, 2 = done
  std::vector<size_t> stack_;
  std::set<std::string> seen_;
  std::vector<Finding> findings_;
};

}  // namespace

std::string RepoRelative(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  size_t root = parts.size();
  for (size_t i = 0; i < parts.size(); ++i) {
    if (IsRootComponent(parts[i])) {
      root = i;  // keep the LAST such component
    }
  }
  if (root == parts.size()) {
    return path;
  }
  std::string out;
  for (size_t i = root; i < parts.size(); ++i) {
    if (!out.empty()) {
      out += '/';
    }
    out += parts[i];
  }
  return out;
}

LayerSpec ParseLayerSpec(const std::string& path, const std::string& contents,
                         std::vector<Finding>* findings) {
  LayerSpec spec;
  std::istringstream in(contents);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream words(line);
    std::vector<std::string> modules;
    std::string word;
    while (words >> word) {
      modules.push_back(word);
    }
    if (modules.empty()) {
      continue;
    }
    const int tier = static_cast<int>(spec.tiers.size());
    std::vector<std::string> accepted;
    for (const std::string& m : modules) {
      const bool valid = !m.empty() && m.find('/') == std::string::npos &&
                         m.find('.') == std::string::npos;
      if (!valid) {
        findings->push_back(Finding{path, line_no, "layer-config",
                                    "malformed module name '" + m +
                                        "' (one bare directory name per word)"});
        continue;
      }
      if (!spec.tier_of.emplace(m, tier).second) {
        findings->push_back(Finding{path, line_no, "layer-config",
                                    "module '" + m + "' declared in more than one tier"});
        continue;
      }
      accepted.push_back(m);
    }
    if (!accepted.empty()) {
      spec.tiers.push_back(std::move(accepted));
    }
  }
  if (spec.tiers.empty()) {
    findings->push_back(
        Finding{path, 0, "layer-config", "layer spec declares no tiers"});
  }
  return spec;
}

std::vector<Finding> CheckLayers(const LayerSpec& spec,
                                 const std::vector<LexedFile>& files) {
  std::vector<Finding> findings;

  // Nodes: scanned files, keyed by repo-relative path. Sorted for stable
  // node indices regardless of input order.
  std::vector<size_t> order(files.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return RepoRelative(files[a].path) < RepoRelative(files[b].path);
  });
  std::vector<std::string> names;
  std::map<std::string, size_t> node_of;
  std::vector<const LexedFile*> node_file;
  for (const size_t i : order) {
    const std::string rel = RepoRelative(files[i].path);
    if (node_of.emplace(rel, names.size()).second) {
      names.push_back(rel);
      node_file.push_back(&files[i]);
    }
  }

  std::vector<std::vector<Edge>> adj(names.size());
  std::set<std::string> unknown_reported;
  for (size_t n = 0; n < names.size(); ++n) {
    const LexedFile& file = *node_file[n];
    const std::string& from = names[n];
    const bool from_src = StartsWith(from, "src/");
    const std::string from_module = SrcModule(from);
    for (size_t k = 0; k < file.includes.size(); ++k) {
      const std::string& target = file.includes[k];
      const size_t line = file.include_lines[k];

      if (from_src && (StartsWith(target, "bench/") || StartsWith(target, "tools/"))) {
        findings.push_back(
            Finding{file.path, line, "layer-violation",
                    "src/ must not include " + target.substr(0, target.find('/') + 1) +
                        " (" + from + " -> " + target + "); the simulator cannot "
                        "depend on its own harnesses"});
      }

      const auto it = node_of.find(target);
      if (it == node_of.end()) {
        continue;  // system/third-party/unscanned include
      }
      adj[n].push_back(Edge{it->second, line});

      if (!from_src || !StartsWith(target, "src/")) {
        continue;  // tier rules bind src/ -> src/ edges only
      }
      const std::string to_module = SrcModule(target);
      if (from_module == to_module) {
        continue;
      }
      const auto from_tier = spec.tier_of.find(from_module);
      const auto to_tier = spec.tier_of.find(to_module);
      if (from_tier == spec.tier_of.end() || to_tier == spec.tier_of.end()) {
        const std::string& missing =
            from_tier == spec.tier_of.end() ? from_module : to_module;
        if (unknown_reported.insert(missing).second) {
          findings.push_back(
              Finding{file.path, line, "layer-config",
                      "module 'src/" + missing + "/' is not declared in the layer "
                      "spec; add it to a tier in tools/analyze/layers.txt"});
        }
        continue;
      }
      if (to_tier->second > from_tier->second) {
        findings.push_back(
            Finding{file.path, line, "layer-violation",
                    "layer violation: " + from + " (" + from_module + ", tier " +
                        std::to_string(from_tier->second) + ") includes " + target +
                        " (" + to_module + ", tier " + std::to_string(to_tier->second) +
                        "); includes must point down the stack"});
      }
    }
    // Deterministic edge order for the cycle pass.
    std::sort(adj[n].begin(), adj[n].end(), [&](const Edge& a, const Edge& b) {
      if (names[a.target] != names[b.target]) return names[a.target] < names[b.target];
      return a.line < b.line;
    });
  }

  std::vector<Finding> cycles = CycleFinder(names, adj).Run();
  findings.insert(findings.end(), cycles.begin(), cycles.end());
  return findings;
}

}  // namespace webcc::analyze
