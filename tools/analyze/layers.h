// Pass 2 of webcc-analyze: include-graph construction and architecture
// layering enforcement.
//
// The layer spec (tools/analyze/layers.txt) declares the module DAG as a list
// of tiers, lowest first:
//
//     util
//     sim
//     cache origin http
//     workload core
//     cli chaos
//
// A module under src/<module>/ may include modules in its own tier or any
// lower tier; an include that points *up* the stack is a layer violation.
// Two hard edges hold regardless of tiers: src/ may never include bench/ or
// tools/, and the include graph of the scanned tree must be acyclic (cycles
// are reported with the full offending chain). A src/ module that is not
// declared in the spec is itself an error — new subsystems must take a
// position in the stack before they can land.
//
// Only quoted, repo-root-relative includes ("src/cache/policy.h") form graph
// edges; system includes and unresolvable quoted includes are ignored.
// bench/ and tests/ may see everything, so files outside src/ contribute
// edges to cycle detection but are exempt from tier checks.

#ifndef WEBCC_TOOLS_ANALYZE_LAYERS_H_
#define WEBCC_TOOLS_ANALYZE_LAYERS_H_

#include <map>
#include <string>
#include <vector>

#include "tools/analyze/lexer.h"
#include "tools/analyze/source.h"

namespace webcc::analyze {

struct LayerSpec {
  // Tier index per declared module; tier 0 is the bottom of the stack.
  std::map<std::string, int> tier_of;
  // Tiers in declaration order (for diagnostics and docs).
  std::vector<std::vector<std::string>> tiers;
};

// Parses the tier-per-line spec format above. Malformed or duplicate entries
// produce `layer-config` findings against `path` and are skipped.
LayerSpec ParseLayerSpec(const std::string& path, const std::string& contents,
                         std::vector<Finding>* findings);

// Normalizes an absolute or relative path to its repo-root-relative form by
// cutting at the last `src`/`bench`/`tools`/`tests` path component
// ("/root/repo/src/cache/policy.h" -> "src/cache/policy.h"). Returns the
// input unchanged if no such component exists.
std::string RepoRelative(const std::string& path);

// Runs the layer pass over the scan unit: resolves quoted includes against
// the scanned files, checks every src/ edge against the spec, and reports
// include cycles. Deterministic: files and edges are visited in sorted order.
std::vector<Finding> CheckLayers(const LayerSpec& spec,
                                 const std::vector<LexedFile>& files);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_LAYERS_H_
