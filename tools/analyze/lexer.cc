#include "tools/analyze/lexer.h"

#include <cctype>

namespace webcc::analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

bool IsStringPrefix(const std::string& id) {
  return id == "u8" || id == "L" || id == "u" || id == "U";
}
bool IsRawStringPrefix(const std::string& id) {
  return id == "R" || id == "u8R" || id == "LR" || id == "uR" || id == "UR";
}

// Multi-character punctuators, longest first. Only a handful matter to the
// rules (`::`, `->`, `(`), but splitting the rest correctly keeps token
// lookahead honest (e.g. `a<=b` must not produce a stray `<`).
const char* const kPunct3[] = {"<<=", ">>=", "...", "->*", "<=>"};
const char* const kPunct2[] = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
                               "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
                               "|=", "^=", ".*", "##"};

class Lexer {
 public:
  explicit Lexer(const SourceFile& source) : src_(source.contents) {
    out_.path = source.path;
    SplitRawLines();
    out_.code_lines.reserve(out_.raw_lines.size());
    for (const std::string& raw : out_.raw_lines) {
      out_.code_lines.emplace_back(raw.size(), ' ');
    }
  }

  LexedFile Run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        NextLine();
        in_pp_ = false;
        line_has_code_token_ = false;
        continue;
      }
      if (ConsumeSplice()) {
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '"') {
        LexCookedString("");
        continue;
      }
      if (c == '\'') {
        LexCharLiteral("");
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifierOrLiteralPrefix();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  void SplitRawLines() {
    std::string current;
    for (const char c : src_) {
      if (c == '\n') {
        out_.raw_lines.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    if (!current.empty()) {
      out_.raw_lines.push_back(current);
    }
  }

  char Peek(size_t off = 0) const {
    return i_ + off < src_.size() ? src_[i_ + off] : '\0';
  }

  // Consumes one char, mirroring it into the code view when `code` is true.
  void Advance(bool code = false) {
    if (i_ >= src_.size()) {
      return;
    }
    if (code && line_ - 1 < out_.code_lines.size() &&
        col_ < out_.code_lines[line_ - 1].size()) {
      out_.code_lines[line_ - 1][col_] = src_[i_];
    }
    ++i_;
    ++col_;
  }

  void NextLine() {
    ++i_;  // the '\n'
    ++line_;
    col_ = 0;
  }

  // Backslash-newline splicing (also \ \r \n). Returns true if consumed.
  bool ConsumeSplice() {
    if (Peek() != '\\') {
      return false;
    }
    if (Peek(1) == '\n') {
      ++i_;
      NextLine();
      return true;
    }
    if (Peek(1) == '\r' && Peek(2) == '\n') {
      i_ += 2;
      NextLine();
      return true;
    }
    return false;
  }

  void Emit(TokenKind kind, std::string text, size_t start_line) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = start_line;
    if (kind != TokenKind::kComment) {
      HandlePreprocessorToken(token);  // may enter directive mode at '#'
      line_has_code_token_ = true;
    }
    token.in_preprocessor = in_pp_;
    out_.tokens.push_back(std::move(token));
  }

  // Tracks `#` directives and records `#include "..."` targets.
  void HandlePreprocessorToken(const Token& token) {
    if (!in_pp_ && token.kind == TokenKind::kPunct && token.text == "#" &&
        !line_has_code_token_) {
      in_pp_ = true;
      pp_expect_include_kw_ = true;
      pp_expect_target_ = false;
      return;
    }
    if (!in_pp_) {
      return;
    }
    if (pp_expect_include_kw_) {
      pp_expect_include_kw_ = false;
      if (token.kind == TokenKind::kIdentifier &&
          (token.text == "include" || token.text == "include_next")) {
        pp_expect_target_ = true;
        return;
      }
    }
    if (pp_expect_target_) {
      pp_expect_target_ = false;
      if (token.kind == TokenKind::kString && token.text.size() >= 2 &&
          token.text.front() == '"' && token.text.back() == '"') {
        out_.includes.push_back(token.text.substr(1, token.text.size() - 2));
        out_.include_lines.push_back(token.line);
      }
      // <...> system includes arrive as punctuation and are ignored: only
      // quoted (repo-relative) includes participate in the layer graph.
    }
  }

  void LexLineComment() {
    const size_t start_line = line_;
    std::string text;
    while (i_ < src_.size() && Peek() != '\n') {
      if (ConsumeSplice()) {  // a `//` comment continues past a backslash-newline
        text.push_back('\n');
        continue;
      }
      text.push_back(Peek());
      Advance();
    }
    Emit(TokenKind::kComment, std::move(text), start_line);
  }

  void LexBlockComment() {
    const size_t start_line = line_;
    std::string text;
    text.push_back(Peek());
    Advance();  // '/'
    text.push_back(Peek());
    Advance();  // '*'
    // Ends at the FIRST "*/": block comments do not nest in C++.
    while (i_ < src_.size()) {
      if (Peek() == '*' && Peek(1) == '/') {
        text += "*/";
        Advance();
        Advance();
        break;
      }
      if (Peek() == '\n') {
        text.push_back('\n');
        NextLine();
        continue;
      }
      text.push_back(Peek());
      Advance();
    }
    Emit(TokenKind::kComment, std::move(text), start_line);
  }

  void LexCookedString(const std::string& prefix) {
    const size_t start_line = line_;
    std::string text = prefix;
    text.push_back('"');
    Advance();  // opening quote (blanked)
    while (i_ < src_.size()) {
      const char c = Peek();
      if (c == '\\') {
        if (ConsumeSplice()) {
          continue;  // spliced string constant continues on the next line
        }
        text.push_back(c);
        Advance();
        if (i_ < src_.size() && Peek() != '\n') {
          text.push_back(Peek());
          Advance();
        }
        continue;
      }
      if (c == '"') {
        text.push_back(c);
        Advance();
        break;
      }
      if (c == '\n') {
        // Unterminated at end of line: almost certainly malformed macro text.
        // Close the literal here so one odd line cannot swallow the file.
        break;
      }
      text.push_back(c);
      Advance();
    }
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void LexRawString(const std::string& prefix) {
    const size_t start_line = line_;
    std::string text = prefix;
    text.push_back('"');
    Advance();  // opening quote
    // Delimiter: chars up to '('.
    std::string delim;
    while (i_ < src_.size() && Peek() != '(' && Peek() != '\n' && delim.size() <= 16) {
      delim.push_back(Peek());
      text.push_back(Peek());
      Advance();
    }
    if (Peek() == '(') {
      text.push_back('(');
      Advance();
    }
    const std::string terminator = ")" + delim + "\"";
    // Raw contents: no escapes, no splicing — scan verbatim for `)delim"`.
    while (i_ < src_.size()) {
      if (Peek() == ')' && src_.compare(i_, terminator.size(), terminator) == 0) {
        text += terminator;
        for (size_t k = 0; k < terminator.size(); ++k) {
          Advance();
        }
        break;
      }
      if (Peek() == '\n') {
        text.push_back('\n');
        NextLine();
        continue;
      }
      text.push_back(Peek());
      Advance();
    }
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void LexCharLiteral(const std::string& prefix) {
    const size_t start_line = line_;
    std::string text = prefix;
    text.push_back('\'');
    Advance();  // opening quote
    while (i_ < src_.size()) {
      const char c = Peek();
      if (c == '\\') {
        text.push_back(c);
        Advance();
        if (i_ < src_.size() && Peek() != '\n') {
          text.push_back(Peek());
          Advance();
        }
        continue;
      }
      if (c == '\'') {
        text.push_back(c);
        Advance();
        break;
      }
      if (c == '\n') {
        break;  // unterminated; close at end of line
      }
      text.push_back(c);
      Advance();
    }
    Emit(TokenKind::kCharLit, std::move(text), start_line);
  }

  void LexIdentifierOrLiteralPrefix() {
    const size_t start_line = line_;
    std::string text;
    while (i_ < src_.size() && (IsIdentChar(Peek()) || Peek() == '\\')) {
      if (Peek() == '\\') {
        if (!ConsumeSplice()) {
          break;  // a real backslash ends the identifier
        }
        continue;  // identifier spliced across a line break
      }
      text.push_back(Peek());
      Advance(/*code=*/true);
    }
    // `R"(...)"`, `u8"..."`, `L'x'`: the "identifier" was a literal prefix.
    if (Peek() == '"' && IsRawStringPrefix(text)) {
      UnwriteCode(text.size());
      LexRawString(text);
      return;
    }
    if (Peek() == '"' && IsStringPrefix(text)) {
      UnwriteCode(text.size());
      LexCookedString(text);
      return;
    }
    if (Peek() == '\'' && (IsStringPrefix(text))) {
      UnwriteCode(text.size());
      LexCharLiteral(text);
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(text), start_line);
  }

  // Blanks the last `n` columns written to the current code line (used when
  // an "identifier" turns out to be a string-literal prefix).
  void UnwriteCode(size_t n) {
    if (line_ - 1 >= out_.code_lines.size()) {
      return;
    }
    std::string& code = out_.code_lines[line_ - 1];
    for (size_t k = 0; k < n && col_ - 1 - k < code.size(); ++k) {
      code[col_ - 1 - k] = ' ';
    }
  }

  void LexNumber() {
    const size_t start_line = line_;
    std::string text;
    // pp-number: digits, identifier chars, digit separators, dots, and
    // exponent signs after e/E/p/P.
    while (i_ < src_.size()) {
      const char c = Peek();
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        text.push_back(c);
        Advance(/*code=*/true);
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text.push_back(c);
          Advance(/*code=*/true);
          continue;
        }
      }
      break;
    }
    Emit(TokenKind::kNumber, std::move(text), start_line);
  }

  void LexPunct() {
    const size_t start_line = line_;
    for (const char* p : kPunct3) {
      if (src_.compare(i_, 3, p) == 0) {
        Advance(true);
        Advance(true);
        Advance(true);
        Emit(TokenKind::kPunct, p, start_line);
        return;
      }
    }
    for (const char* p : kPunct2) {
      if (src_.compare(i_, 2, p) == 0) {
        Advance(true);
        Advance(true);
        Emit(TokenKind::kPunct, p, start_line);
        return;
      }
    }
    const std::string one(1, Peek());
    Advance(/*code=*/true);
    Emit(TokenKind::kPunct, one, start_line);
  }

  const std::string& src_;
  size_t i_ = 0;
  size_t line_ = 1;  // 1-based
  size_t col_ = 0;   // 0-based within the current raw line
  bool in_pp_ = false;
  bool line_has_code_token_ = false;
  bool pp_expect_include_kw_ = false;
  bool pp_expect_target_ = false;
  LexedFile out_;
};

}  // namespace

LexedFile Lex(const SourceFile& source) { return Lexer(source).Run(); }

}  // namespace webcc::analyze
