// Pass 1 of webcc-analyze: a real (single-translation-unit) C++ lexer.
//
// The original webcc-lint matched regexes against per-line "stripped" text
// produced by a line-local state machine. That machine could not represent
// raw string literals, line continuations, or multi-line literals, so rules
// could both miss violations (split across a continuation) and false-positive
// (code-looking text inside a multi-line raw string). This lexer tokenizes
// the whole file in one pass and gets those cases right:
//
//   * `//` and `/* */` comments (including backslash-continued `//` lines;
//     block comments do NOT nest, per the language);
//   * ordinary string/char literals with escapes, and encoding prefixes
//     (u8"", L"", u"", U"");
//   * raw string literals `R"delim(...)delim"` with arbitrary delimiters,
//     spanning any number of lines;
//   * backslash-newline line splicing in code and preprocessor directives;
//   * preprocessor directives, with `#include "..."` targets extracted.
//
// Output is both a token stream (identifiers, numbers, literals, punctuation,
// comments — each stamped with its 1-based start line) and a per-physical-line
// "code text" view in which comments and literal contents are blanked to
// spaces with columns preserved. Structural rules still run regexes against
// the code text; identifier rules walk the tokens.

#ifndef WEBCC_TOOLS_ANALYZE_LEXER_H_
#define WEBCC_TOOLS_ANALYZE_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/analyze/source.h"

namespace webcc::analyze {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (the lexer does not distinguish)
  kNumber,      // pp-number: 0x1F, 1'000, 1.5e-3, ...
  kString,      // string literal, raw or cooked, prefix included
  kCharLit,     // character literal
  kPunct,       // one operator/punctuator ("::", "->", "(", ...)
  kComment,     // one whole comment, // or /* */
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;          // spelling; comments/strings carry full text
  size_t line = 0;           // 1-based line where the token starts
  bool in_preprocessor = false;  // token lies inside a # directive
};

struct LexedFile {
  std::string path;
  // Physical source lines, exactly as read (no splicing) — waiver comments
  // (`webcc-lint: allow(...)`) are matched against these.
  std::vector<std::string> raw_lines;
  // Per physical line: code with comments and literal bodies blanked to
  // spaces, columns preserved. Quote characters themselves are blanked too.
  std::vector<std::string> code_lines;
  // All tokens in source order, comments included.
  std::vector<Token> tokens;
  // Targets of `#include "..."` directives, in order, with their lines.
  std::vector<std::string> includes;
  std::vector<size_t> include_lines;
};

// Tokenizes `source`. Never fails: unterminated constructs are closed at end
// of file (the analyzer is a linter, not a compiler front end).
LexedFile Lex(const SourceFile& source);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_LEXER_H_
