#include "tools/analyze/lockcheck.h"

#include <set>
#include <string>

namespace webcc::analyze {
namespace {

bool IsCtorOrDtor(const FunctionSymbol& fn) {
  if (!fn.name.empty() && fn.name[0] == '~') {
    return true;
  }
  const size_t last_sep = fn.scope.rfind("::");
  const std::string scope_tail =
      last_sep == std::string::npos ? fn.scope : fn.scope.substr(last_sep + 2);
  return fn.name == scope_tail;
}

}  // namespace

void CheckLockDiscipline(const SymbolIndex& index, std::vector<Finding>* findings) {
  if (index.guarded_members.empty()) {
    return;
  }
  // One finding per (file, line, member), so a member mentioned twice on a
  // line reports once.
  std::set<std::string> reported;
  for (const FunctionSymbol& fn : index.functions) {
    if (!fn.is_definition || !fn.is_method || IsCtorOrDtor(fn)) {
      continue;
    }
    for (const GuardedMember& g : index.guarded_members) {
      if (fn.scope != g.class_name) {
        continue;
      }
      for (const IdentUse& use : fn.ident_uses) {
        if (use.name != g.member) {
          continue;
        }
        bool held = false;
        for (const LockAcquire& acq : fn.lock_acquires) {
          if (acq.mutex == g.mutex && acq.pos < use.pos) {
            held = true;
            break;
          }
        }
        if (held) {
          continue;
        }
        const std::string key =
            fn.file + ":" + std::to_string(use.line) + ":" + g.member;
        if (!reported.insert(key).second) {
          continue;
        }
        findings->push_back(Finding{
            fn.file, use.line, "lock-discipline",
            "'" + g.member + "' is guarded by '" + g.mutex +
                "' (WEBCC_GUARDED_BY at line " + std::to_string(g.line) +
                ") but '" + fn.qualified_name +
                "' accesses it without lexically acquiring the mutex first"});
      }
    }
  }
}

}  // namespace webcc::analyze
