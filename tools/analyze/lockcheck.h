// Pass 4 of webcc-analyze, stage 4: lock-discipline checking.
//
// Upgrades pass 1's `unannotated-mutex` convention check into an enforced
// contract. A class declares which mutex guards a data member with the
// WEBCC_GUARDED_BY annotation (src/util/check.h):
//
//     std::mutex mu_;  // guards: tasks_
//     std::deque<Task> tasks_ WEBCC_GUARDED_BY(mu_);
//
// For every annotated member, every *method of that class* that mentions the
// member must lexically acquire the named mutex first — construct a
// std::lock_guard/unique_lock/scoped_lock/shared_lock naming it, or call
// `mu.lock()`, at an earlier body-token position than the access. Violations
// are `lock-discipline` findings.
//
// Lexical means lexical: a conditional early-return before the lock, or an
// access inside a callback that outlives the guard, will not be caught; a
// lock taken on a different object of the same class will wrongly satisfy
// the check. This is linter-grade discipline enforcement, not a proof — the
// check is deterministic and cheap, and the baseline absorbs the rare
// sanctioned exception (e.g. a reader deliberately published through an
// atomic).
//
// Constructors and destructors are exempt, matching the usual thread-safety
// rule: no other thread can hold a reference during construction, and
// destruction with concurrent access is a bug no lock fixes.

#ifndef WEBCC_TOOLS_ANALYZE_LOCKCHECK_H_
#define WEBCC_TOOLS_ANALYZE_LOCKCHECK_H_

#include <vector>

#include "tools/analyze/source.h"
#include "tools/analyze/symbols.h"

namespace webcc::analyze {

void CheckLockDiscipline(const SymbolIndex& index, std::vector<Finding>* findings);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_LOCKCHECK_H_
