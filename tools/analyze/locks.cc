#include "tools/analyze/locks.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "tools/analyze/cfg.h"
#include "tools/analyze/layers.h"

namespace webcc::analyze {
namespace {

constexpr size_t kNone = static_cast<size_t>(-1);
constexpr size_t kOwnBlock = static_cast<size_t>(-2);

// The directly-blocking call spellings. Everything else that blocks —
// ThreadPool::Wait, Shutdown's joins, an origin exchange that sleeps —
// reaches one of these transitively and is caught by chain propagation.
bool IsBlockingPrimitive(const std::string& callee) {
  return callee == "SleepNanos" || callee == "sleep_for" ||
         callee == "sleep_until" || callee == "join";
}

struct EdgeInfo {
  std::string file;
  size_t line = 0;
  bool declared = false;
};

struct HeldCall {
  size_t caller = 0;            // index into SymbolIndex::functions
  std::vector<size_t> targets;  // resolved candidate definitions, ascending
  std::string callee;
  std::vector<std::string> held;  // sorted (set order)
  std::string file;
  size_t line = 0;
};

class LockAnalysis {
 public:
  LockAnalysis(const std::vector<LexedFile>& files, const SymbolIndex& index,
               std::vector<Finding>* findings, std::vector<std::string>* edges_out)
      : index_(index), findings_(findings), edges_out_(edges_out) {
    for (const LexedFile& f : files) {
      file_by_path_[f.path] = &f;
    }
    for (const MutexMember& m : index.mutex_members) {
      mutex_members_.insert(m.class_name + "::" + m.member);
      mutex_by_class_[m.class_name].insert(m.member);
    }
    for (const GuardedMember& g : index.guarded_members) {
      guarded_by_class_[g.class_name].push_back(&g);
    }
  }

  void Run() {
    const size_t n = index_.functions.size();
    block_via_.assign(n, kNone);
    block_desc_.resize(n);
    call_edges_.resize(n);
    direct_acquires_.resize(n);

    // Per-function CFG analysis, grouped by file so the significant-token
    // stream is computed once per file.
    std::map<std::string, std::vector<size_t>> by_file;
    for (size_t i = 0; i < n; ++i) {
      const FunctionSymbol& fn = index_.functions[i];
      if (fn.is_definition && fn.sig_body_end > fn.sig_body_open &&
          file_by_path_.count(fn.file) != 0) {
        by_file[fn.file].push_back(i);
      }
    }
    for (const auto& [path, fns] : by_file) {
      const LexedFile& file = *file_by_path_.at(path);
      const std::vector<const Token*> sig = SignificantTokens(file);
      for (const size_t i : fns) {
        const Cfg cfg = BuildCfgFromSig(sig, index_.functions[i]);
        AnalyzeCfg(i, cfg, {}, false, file);
      }
    }

    PropagateAcquires();
    EmitCallEdges();
    PropagateBlocking();
    EmitBlockingChains();
    AddDeclaredEdges();
    ReportCycles();
    RenderEdgeList();
  }

 private:
  // --- Identity -------------------------------------------------------------

  // A mutex spelling inside `fn`: a std::mutex-family member of the
  // enclosing class qualifies to "Class::member"; anything else stays bare.
  std::string Qualify(const FunctionSymbol& fn, const std::string& name) const {
    if (name.find("::") != std::string::npos) {
      return name;
    }
    const auto it = mutex_by_class_.find(fn.scope);
    if (it != mutex_by_class_.end() && it->second.count(name) != 0) {
      return fn.scope + "::" + name;
    }
    return name;
  }

  static bool IsCtorOrDtor(const FunctionSymbol& fn) {
    if (!fn.name.empty() && fn.name[0] == '~') {
      return true;
    }
    const size_t last_sep = fn.scope.rfind("::");
    const std::string scope_tail =
        last_sep == std::string::npos ? fn.scope : fn.scope.substr(last_sep + 2);
    return fn.name == scope_tail;
  }

  std::string Where(const std::string& file, size_t line) const {
    return RepoRelative(file) + ":" + std::to_string(line);
  }

  void Emit(const std::string& file, size_t line, const char* rule, std::string message) {
    const auto it = file_by_path_.find(file);
    if (it != file_by_path_.end() && FindingWaivedInline(*it->second, line, rule)) {
      return;
    }
    findings_->push_back(Finding{file, line, rule, std::move(message)});
  }

  void AddEdge(const std::string& before, const std::string& after,
               const std::string& file, size_t line, bool declared) {
    edges_.emplace(std::make_pair(before, after), EdgeInfo{file, line, declared});
  }

  // --- Per-function dataflow ------------------------------------------------

  void AnalyzeCfg(size_t fi, const Cfg& cfg, const std::set<std::string>& entry,
                  bool deferred_ctx, const LexedFile& file) {
    const FunctionSymbol& fn = index_.functions[fi];
    const size_t n = cfg.nodes.size();

    // Must-hold sets: in[v] = intersection of out[u] over visited preds.
    std::vector<std::set<std::string>> in(n);
    std::vector<bool> visited(n, false);
    std::deque<size_t> work;
    in[Cfg::kEntry] = entry;
    visited[Cfg::kEntry] = true;
    work.push_back(Cfg::kEntry);
    while (!work.empty()) {
      const size_t cur = work.front();
      work.pop_front();
      std::set<std::string> out = in[cur];
      for (const CfgEvent& ev : cfg.nodes[cur].events) {
        if (ev.kind == CfgEventKind::kLock) {
          out.insert(Qualify(fn, ev.name));
        } else if (ev.kind == CfgEventKind::kUnlock) {
          out.erase(Qualify(fn, ev.name));
        }
      }
      for (const size_t succ : cfg.nodes[cur].succ) {
        if (!visited[succ]) {
          visited[succ] = true;
          in[succ] = out;
          work.push_back(succ);
          continue;
        }
        std::set<std::string> merged;
        std::set_intersection(in[succ].begin(), in[succ].end(), out.begin(),
                              out.end(), std::inserter(merged, merged.begin()));
        if (merged != in[succ]) {
          in[succ] = std::move(merged);
          work.push_back(succ);
        }
      }
    }

    // Replay each reachable node with its final in-state.
    const bool check_members = fn.is_method && !IsCtorOrDtor(fn);
    const auto guarded = guarded_by_class_.find(fn.scope);
    for (size_t v = 0; v < n; ++v) {
      if (!visited[v]) {
        continue;  // unreachable (after unconditional return/break)
      }
      std::set<std::string> held = in[v];
      for (const CfgEvent& ev : cfg.nodes[v].events) {
        switch (ev.kind) {
          case CfgEventKind::kLock: {
            const std::string q = Qualify(fn, ev.name);
            for (const std::string& h : held) {
              AddEdge(h, q, fn.file, ev.line, false);
            }
            if (!deferred_ctx) {
              direct_acquires_[fi].insert(q);
            }
            held.insert(q);
            break;
          }
          case CfgEventKind::kUnlock:
            held.erase(Qualify(fn, ev.name));
            break;
          case CfgEventKind::kCvWait: {
            const std::string q = Qualify(fn, ev.name);
            if (!deferred_ctx) {
              block_via_[fi] = kOwnBlock;
              if (block_desc_[fi].empty()) {
                block_desc_[fi] = "condition-variable wait at " + Where(fn.file, ev.line);
              }
            }
            std::set<std::string> others = held;
            others.erase(q);
            if (!others.empty() && blocking_seen_.insert({fn.file, ev.line}).second) {
              Emit(fn.file, ev.line, "blocking-under-lock",
                   "condition-variable wait on '" + q + "' while '" + *others.begin() +
                       "' is also held; waiting with a second lock held stalls "
                       "every thread that needs it");
            }
            break;
          }
          case CfgEventKind::kAccess: {
            if (!check_members || guarded == guarded_by_class_.end()) {
              break;
            }
            for (const GuardedMember* g : guarded->second) {
              if (g->member != ev.name) {
                continue;
              }
              const std::string q = Qualify(fn, g->mutex);
              if (held.count(q) != 0) {
                continue;
              }
              if (discipline_seen_.insert({fn.file, ev.line, g->member}).second) {
                Emit(fn.file, ev.line, "lock-discipline",
                     "'" + g->member + "' is WEBCC_GUARDED_BY(" + g->mutex +
                         ") but '" + fn.qualified_name + "' reaches this use on a "
                         "path where the mutex is not held");
              }
            }
            break;
          }
          case CfgEventKind::kCall: {
            const std::string& callee = ev.call.callee;
            if (IsBlockingPrimitive(callee)) {
              if (!deferred_ctx) {
                block_via_[fi] = kOwnBlock;
                if (block_desc_[fi].empty()) {
                  block_desc_[fi] = "'" + callee + "' at " + Where(fn.file, ev.line);
                }
              }
              if (!held.empty() && blocking_seen_.insert({fn.file, ev.line}).second) {
                Emit(fn.file, ev.line, "blocking-under-lock",
                     "call to blocking '" + callee + "' while holding '" +
                         *held.begin() + "'; move the blocking call outside "
                         "the critical section");
              }
            }
            std::vector<size_t> targets = ResolveCallCandidates(index_, fi, ev.call);
            if (targets.empty()) {
              break;
            }
            if (!deferred_ctx) {
              call_edges_[fi].insert(targets.begin(), targets.end());
            }
            if (!held.empty()) {
              HeldCall hc;
              hc.caller = fi;
              hc.targets = std::move(targets);
              hc.callee = callee;
              hc.held.assign(held.begin(), held.end());
              hc.file = fn.file;
              hc.line = ev.line;
              held_calls_.push_back(std::move(hc));
            }
            break;
          }
          case CfgEventKind::kLambda: {
            if (ev.lambda < cfg.lambdas.size()) {
              AnalyzeCfg(fi, cfg.lambdas[ev.lambda],
                         ev.deferred ? std::set<std::string>() : held,
                         deferred_ctx || ev.deferred, file);
            }
            break;
          }
        }
      }
    }
  }

  // --- Cross-TU propagation -------------------------------------------------

  // may_acquire_[f]: every mutex f (or anything it calls, transitively,
  // outside deferred lambdas) locks.
  void PropagateAcquires() {
    may_acquire_ = direct_acquires_;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t caller = 0; caller < call_edges_.size(); ++caller) {
        for (const size_t callee : call_edges_[caller]) {
          for (const std::string& m : may_acquire_[callee]) {
            if (may_acquire_[caller].insert(m).second) {
              changed = true;
            }
          }
        }
      }
    }
  }

  // A call made while holding `h` to a function that transitively acquires
  // `b` is an observed order edge h -> b.
  void EmitCallEdges() {
    for (const HeldCall& hc : held_calls_) {
      for (const size_t t : hc.targets) {
        for (const std::string& b : may_acquire_[t]) {
          for (const std::string& h : hc.held) {
            AddEdge(h, b, hc.file, hc.line, false);
          }
        }
      }
    }
  }

  void PropagateBlocking() {
    const size_t n = index_.functions.size();
    std::vector<std::vector<size_t>> callers(n);
    for (size_t caller = 0; caller < n; ++caller) {
      for (const size_t callee : call_edges_[caller]) {
        callers[callee].push_back(caller);
      }
    }
    for (std::vector<size_t>& c : callers) {
      std::sort(c.begin(), c.end());
    }
    std::deque<size_t> queue;
    for (size_t i = 0; i < n; ++i) {
      if (block_via_[i] == kOwnBlock) {
        queue.push_back(i);
      }
    }
    while (!queue.empty()) {
      const size_t cur = queue.front();
      queue.pop_front();
      for (const size_t caller : callers[cur]) {
        if (block_via_[caller] != kNone) {
          continue;
        }
        block_via_[caller] = cur;
        queue.push_back(caller);
      }
    }
  }

  void EmitBlockingChains() {
    for (const HeldCall& hc : held_calls_) {
      size_t target = kNone;
      for (const size_t t : hc.targets) {
        if (block_via_[t] != kNone) {
          target = t;
          break;
        }
      }
      if (target == kNone || !blocking_seen_.insert({hc.file, hc.line}).second) {
        continue;
      }
      std::string chain = index_.functions[hc.caller].qualified_name;
      size_t cur = target;
      chain += " -> " + index_.functions[cur].qualified_name;
      while (block_via_[cur] != kOwnBlock) {
        cur = block_via_[cur];
        chain += " -> " + index_.functions[cur].qualified_name;
      }
      Emit(hc.file, hc.line, "blocking-under-lock",
           "call to '" + hc.callee + "' while holding '" + hc.held.front() +
               "' may block: " + chain + " reaches " + block_desc_[cur] +
               "; move the blocking call outside the critical section");
    }
  }

  // --- Lock-order graph -----------------------------------------------------

  void AddDeclaredEdges() {
    for (const DeclaredLockOrder& d : index_.declared_lock_order) {
      const std::string after = d.class_name + "::" + d.member;
      std::string before = d.before;
      if (before.find("::") != std::string::npos) {
        // Qualified spelling: resolve against known mutex members so
        // "ThreadPool::mu_" and "webcc::ThreadPool::mu_" name the same node.
        for (const std::string& mm : mutex_members_) {
          if (QualifiedSuffixMatches(mm, before)) {
            before = mm;
            break;
          }
        }
      } else if (mutex_by_class_.count(d.class_name) != 0 &&
                 mutex_by_class_.at(d.class_name).count(before) != 0) {
        before = d.class_name + "::" + before;
      }
      AddEdge(before, after, d.file, d.line, true);
    }
  }

  void ReportCycles() {
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [edge, info] : edges_) {
      adj[edge.first].push_back(edge.second);
      adj.emplace(edge.second, std::vector<std::string>());
    }

    std::set<std::vector<std::string>> reported;
    std::map<std::string, int> color;  // 0 unvisited, 1 on stack, 2 done
    std::vector<std::string> path;

    // Iterative DFS with an explicit stack of (node, next-child) frames.
    for (const auto& [start, unused] : adj) {
      (void)unused;
      if (color[start] != 0) {
        continue;
      }
      std::vector<std::pair<std::string, size_t>> stack{{start, 0}};
      color[start] = 1;
      path.push_back(start);
      while (!stack.empty()) {
        auto& [node, child] = stack.back();
        const std::vector<std::string>& succ = adj[node];
        if (child >= succ.size()) {
          color[node] = 2;
          path.pop_back();
          stack.pop_back();
          continue;
        }
        const std::string next = succ[child++];
        if (color[next] == 1) {
          // Back edge: the cycle is the path suffix from `next`.
          const auto at = std::find(path.begin(), path.end(), next);
          std::vector<std::string> cycle(at, path.end());
          const auto min_at = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_at, cycle.end());
          if (reported.insert(cycle).second) {
            ReportCycle(cycle);
          }
          continue;
        }
        if (color[next] == 0) {
          color[next] = 1;
          path.push_back(next);
          stack.emplace_back(next, 0);
        }
      }
    }
  }

  void ReportCycle(const std::vector<std::string>& cycle) {
    std::string names = cycle.front();
    std::string provenance;
    for (size_t i = 0; i < cycle.size(); ++i) {
      const std::string& from = cycle[i];
      const std::string& to = cycle[(i + 1) % cycle.size()];
      names += " -> " + to;
      const auto it = edges_.find({from, to});
      if (it != edges_.end()) {
        if (!provenance.empty()) {
          provenance += ", ";
        }
        provenance += from + " -> " + to + " " +
                      (it->second.declared ? "declared" : "observed") + " at " +
                      Where(it->second.file, it->second.line);
      }
    }
    const auto first = edges_.find({cycle.front(), cycle[1 % cycle.size()]});
    const std::string file = first != edges_.end() ? first->second.file : "";
    const size_t line = first != edges_.end() ? first->second.line : 0;
    if (cycle.size() == 1) {
      Emit(file, line, "lock-order",
           "re-acquisition of held mutex '" + cycle.front() + "' (" + provenance +
               "); std::mutex is not recursive — this deadlocks");
      return;
    }
    Emit(file, line, "lock-order",
         "lock-order cycle: " + names + " (" + provenance +
             "); two threads taking these mutexes in opposite orders deadlock");
  }

  void RenderEdgeList() {
    if (edges_out_ == nullptr) {
      return;
    }
    for (const auto& [edge, info] : edges_) {
      edges_out_->push_back(edge.first + " -> " + edge.second + "  (" +
                            (info.declared ? "declared" : "observed") + " at " +
                            Where(info.file, info.line) + ")");
    }
  }

  const SymbolIndex& index_;
  std::vector<Finding>* findings_;
  std::vector<std::string>* edges_out_;

  std::map<std::string, const LexedFile*> file_by_path_;
  std::set<std::string> mutex_members_;
  std::map<std::string, std::set<std::string>> mutex_by_class_;
  std::map<std::string, std::vector<const GuardedMember*>> guarded_by_class_;

  std::map<std::pair<std::string, std::string>, EdgeInfo> edges_;
  std::vector<HeldCall> held_calls_;
  std::vector<std::set<size_t>> call_edges_;          // caller -> callees (non-deferred)
  std::vector<std::set<std::string>> direct_acquires_;
  std::vector<std::set<std::string>> may_acquire_;
  std::vector<size_t> block_via_;
  std::vector<std::string> block_desc_;

  std::set<std::pair<std::string, size_t>> blocking_seen_;
  std::set<std::tuple<std::string, size_t, std::string>> discipline_seen_;
};

}  // namespace

void CheckLocks(const std::vector<LexedFile>& files, const SymbolIndex& index,
                std::vector<Finding>* findings,
                std::vector<std::string>* lock_graph_edges) {
  LockAnalysis(files, index, findings, lock_graph_edges).Run();
}

}  // namespace webcc::analyze
