// Pass 5 of webcc-analyze, stage 2: flow-sensitive lock analysis.
//
// Three checks run over the per-function CFGs (tools/analyze/cfg.h) plus
// the pass-4 call graph:
//
//   lock-discipline      The flow-sensitive upgrade of the lexical check in
//                        tools/analyze/lockcheck.h: a WEBCC_GUARDED_BY
//                        member access is clean only when the named mutex is
//                        in the *must-hold* set — held on every CFG path
//                        reaching the access, guard scopes and early
//                        `.unlock()` included. Constructors and destructors
//                        stay exempt (single-threaded by contract).
//
//   lock-order           A cross-TU lock-acquisition graph: an edge A -> B
//                        is observed when B is acquired while A is held
//                        (directly, or via a call whose callee transitively
//                        acquires B), and declared by a
//                        WEBCC_ACQUIRED_AFTER(A) annotation on member B.
//                        Any cycle — including a self-edge from re-acquiring
//                        a held mutex — is a potential deadlock.
//
//   blocking-under-lock  Calls to blocking primitives (SleepNanos,
//                        sleep_for/until, thread join, condition-variable
//                        waits) reachable while any mutex is held, reported
//                        with the shortest call chain like the taint pass.
//                        A cv wait is sanctioned when its own mutex is the
//                        only lock held — that is the primitive working as
//                        designed.
//
// Mutex identity: a lock naming a std::mutex-family member of the enclosing
// class qualifies to "Class::member" so edges agree across translation
// units; locals stay bare. Lambdas run against the lockset of their
// creation point only when they execute there (cv-wait predicates,
// immediately-invoked expressions); deferred lambdas start empty, and the
// calls they make do not mark their *enclosing* function as blocking.
//
// Findings honor the pass-1 inline waivers (`webcc-lint: allow(<rule>)`),
// which is how a justified real-tree exception is recorded.

#ifndef WEBCC_TOOLS_ANALYZE_LOCKS_H_
#define WEBCC_TOOLS_ANALYZE_LOCKS_H_

#include <string>
#include <vector>

#include "tools/analyze/callgraph.h"
#include "tools/analyze/lexer.h"
#include "tools/analyze/source.h"
#include "tools/analyze/symbols.h"

namespace webcc::analyze {

// Runs all three checks and appends findings. Call resolution happens per
// call site with the same filters pass 4 uses (ResolveCallCandidates). When
// `lock_graph_edges` is non-null it receives one line per acquisition-graph
// edge, "A -> B  (observed|declared at file:line)", sorted — the CI step
// summary prints these so ordering drift is visible in review.
// Deterministic for a given scan unit at any --jobs value.
void CheckLocks(const std::vector<LexedFile>& files, const SymbolIndex& index,
                std::vector<Finding>* findings,
                std::vector<std::string>* lock_graph_edges);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_LOCKS_H_
