#include "tools/analyze/rules.h"

#include <cstddef>
#include <regex>
#include <set>
#include <string>
#include <utility>

namespace webcc::analyze {
namespace {

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

bool LineAllows(const std::string& raw_line, const std::string& rule) {
  const std::string marker = "webcc-lint: allow(" + rule + ")";
  return raw_line.find(marker) != std::string::npos;
}

// `webcc-lint: allow-file(<rule>)` — one named rule per directive, so a file
// cannot opt out of everything at once.
std::set<std::string> CollectFileAllows(const std::vector<std::string>& raw_lines) {
  static const std::regex* directive =
      new std::regex(R"(webcc-lint:\s*allow-file\(([a-z-]+)\))");
  std::set<std::string> rules;
  for (const std::string& line : raw_lines) {
    for (std::sregex_iterator it(line.begin(), line.end(), *directive), end; it != end;
         ++it) {
      rules.insert((*it)[1].str());
    }
  }
  return rules;
}

// --- Scope predicates (shared by both rule families) ------------------------

bool AppliesOutsideRng(const std::string& path) { return !PathContains(path, "util/rng."); }
bool AppliesOutsideSimTime(const std::string& path) {
  return !PathContains(path, "util/sim_time.");
}
bool AppliesToHotPaths(const std::string& path) {
  return PathContains(path, "sim/") || PathContains(path, "cache/");
}
bool AppliesToStatsCode(const std::string& path) {
  return PathContains(path, "stats") || PathContains(path, "metrics");
}
bool AppliesOutsideBench(const std::string& path) { return !PathContains(path, "bench/"); }
bool AppliesToUpstreamCode(const std::string& path) {
  return PathContains(path, "cache/") || PathContains(path, "origin/");
}
bool AppliesToChaosCode(const std::string& path) { return PathContains(path, "chaos/"); }

// --- Per-file emission with waiver handling ---------------------------------

class FileSink {
 public:
  FileSink(const LexedFile& file, std::vector<Finding>* out)
      : file_(file), allows_(CollectFileAllows(file.raw_lines)), out_(out) {}

  bool FileAllows(const std::string& rule) const { return allows_.count(rule) != 0; }

  // Emits at most one finding per (rule, line): a line with two hits of the
  // same rule reads as one diagnostic, same as the regex engine did.
  void Emit(size_t line, const std::string& rule, const std::string& message) {
    if (FileAllows(rule)) {
      return;
    }
    if (line >= 1 && line <= file_.raw_lines.size() &&
        LineAllows(file_.raw_lines[line - 1], rule)) {
      return;
    }
    if (!emitted_.insert({rule, line}).second) {
      return;
    }
    out_->push_back(Finding{file_.path, line, rule, message});
  }

 private:
  const LexedFile& file_;
  std::set<std::string> allows_;
  std::set<std::pair<std::string, size_t>> emitted_;
  std::vector<Finding>* out_;
};

// --- Token rules ------------------------------------------------------------

bool IsBannedCRandom(const std::string& t) {
  return t == "rand" || t == "srand" || t == "random" || t == "drand48" ||
         t == "lrand48" || t == "mrand48";
}

// std:: engines and the distributions that stay under banned-random. The
// uniform_*/normal distributions moved to their own std-distribution rule
// (different fix: use the seeded helpers on webcc::Rng, not "move the code
// into util/rng.*").
bool IsBannedStdRandom(const std::string& t) {
  return t == "mt19937" || t == "mt19937_64" || t == "minstd_rand" ||
         t == "minstd_rand0" || t == "random_device" || t == "default_random_engine" ||
         t == "knuth_b" || t.rfind("ranlux", 0) == 0 || t == "bernoulli_distribution" ||
         t == "discrete_distribution";
}

bool IsStdDistribution(const std::string& t) {
  return t == "uniform_int_distribution" || t == "uniform_real_distribution" ||
         t == "normal_distribution";
}

bool IsMutexType(const std::string& t) {
  return t == "mutex" || t == "shared_mutex" || t == "recursive_mutex" ||
         t == "timed_mutex" || t == "recursive_timed_mutex";
}

bool IsWallclockChronoClock(const std::string& t) {
  return t == "system_clock" || t == "steady_clock" || t == "high_resolution_clock";
}

constexpr const char* kBannedRandomMsg =
    "randomness outside src/util/rng.* breaks seed-exact reproducibility; draw from "
    "webcc::Rng instead";
constexpr const char* kBannedWallclockMsg =
    "simulated code must read SimTime, never the host clock";
constexpr const char* kBareAssertMsg =
    "use WEBCC_CHECK (src/util/check.h): always-on and prints operand values";
constexpr const char* kOracleBypassMsg =
    "catching in src/chaos/ can swallow an OracleViolation; violations must propagate "
    "to ProbeTrial, the one sanctioned catch site";
constexpr const char* kStdDistributionMsg =
    "std::*_distribution output is libstdc++-version-dependent and breaks "
    "cross-compiler determinism; use the seeded helpers on webcc::Rng "
    "(UniformInt/UniformDouble/Normal)";
constexpr const char* kDiscardedParseMsg =
    "statement discards the result of a Parse*/Load* call; these report failure via "
    "their return value — check it or assign it to a named variable";
constexpr const char* kUnannotatedMutexMsg =
    "mutex member without a lock-coverage annotation; add a trailing "
    "'// guards: <fields>' comment and WEBCC_GUARDED_BY(mu) on each guarded "
    "member so pass 4 can enforce every access site";

void RunTokenRules(const LexedFile& file, FileSink* sink) {
  const std::string& path = file.path;

  // Significant tokens only: comments out, preprocessor membership kept.
  std::vector<const Token*> sig;
  sig.reserve(file.tokens.size());
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::kComment) {
      sig.push_back(&t);
    }
  }

  const auto text = [&](size_t i) -> const std::string& {
    static const std::string empty;
    return i < sig.size() ? sig[i]->text : empty;
  };
  const auto is_ident = [&](size_t i) {
    return i < sig.size() && sig[i]->kind == TokenKind::kIdentifier;
  };
  const auto is_punct = [&](size_t i, const char* p) {
    return i < sig.size() && sig[i]->kind == TokenKind::kPunct && sig[i]->text == p;
  };

  const bool outside_rng = AppliesOutsideRng(path);
  const bool outside_bench = AppliesOutsideBench(path);
  const bool chaos = AppliesToChaosCode(path);

  for (size_t i = 0; i < sig.size(); ++i) {
    if (!is_ident(i)) {
      continue;
    }
    const std::string& t = sig[i]->text;
    const size_t line = sig[i]->line;
    const bool after_scope = i >= 2 && text(i - 2) == "std" && is_punct(i - 1, "::");

    // banned-random: C library calls need a call paren; std:: engine names
    // are banned on sight (declaring one is already the bug).
    if (outside_rng) {
      if (IsBannedCRandom(t) && is_punct(i + 1, "(")) {
        sink->Emit(line, "banned-random", kBannedRandomMsg);
      }
      if (after_scope && IsBannedStdRandom(t)) {
        sink->Emit(sig[i - 2]->line, "banned-random", kBannedRandomMsg);
      }
    }

    // std-distribution applies everywhere, src/util/rng.* included — the
    // project's Rng implements its own draws precisely so no std
    // distribution ever runs.
    if (after_scope && IsStdDistribution(t)) {
      sink->Emit(sig[i - 2]->line, "std-distribution", kStdDistributionMsg);
    }

    // banned-wallclock.
    if (t == "time" && is_punct(i + 1, "(")) {
      if (after_scope) {
        sink->Emit(sig[i - 2]->line, "banned-wallclock", kBannedWallclockMsg);
      } else if ((text(i + 2) == "NULL" || text(i + 2) == "nullptr" ||
                  text(i + 2) == "0") &&
                 is_punct(i + 3, ")")) {
        sink->Emit(line, "banned-wallclock", kBannedWallclockMsg);
      }
    }
    if ((t == "gettimeofday" || t == "clock_gettime") && is_punct(i + 1, "(")) {
      sink->Emit(line, "banned-wallclock", kBannedWallclockMsg);
    }
    if (t == "clock" && is_punct(i + 1, "(") && is_punct(i + 2, ")")) {
      sink->Emit(line, "banned-wallclock", kBannedWallclockMsg);
    }
    if (t == "chrono" && after_scope && is_punct(i + 1, "::") &&
        IsWallclockChronoClock(text(i + 2))) {
      sink->Emit(sig[i - 2]->line, "banned-wallclock", kBannedWallclockMsg);
    }

    // bare-assert.
    if (outside_bench && t == "assert" && is_punct(i + 1, "(")) {
      sink->Emit(line, "bare-assert", kBareAssertMsg);
    }

    // oracle-bypass.
    if (chaos && t == "catch" && is_punct(i + 1, "(")) {
      sink->Emit(line, "oracle-bypass", kOracleBypassMsg);
    }

    // discarded-parse-result: a statement that *begins* with a Parse*/Load*
    // call discards its result. "Begins" = the previous non-preprocessor
    // token is `;`, `{`, `}`, or there is none. Returns, assignments,
    // conditions, member calls, and declarations all prefix the name with
    // something else and are not matched.
    if (!sig[i]->in_preprocessor &&
        (t.rfind("Parse", 0) == 0 || t.rfind("Load", 0) == 0) && is_punct(i + 1, "(")) {
      size_t j = i;
      bool statement_initial = false;
      while (true) {
        if (j == 0) {
          statement_initial = true;
          break;
        }
        --j;
        if (sig[j]->in_preprocessor) {
          continue;  // directives do not terminate or continue a statement
        }
        statement_initial = sig[j]->kind == TokenKind::kPunct &&
                            (sig[j]->text == ";" || sig[j]->text == "{" ||
                             sig[j]->text == "}");
        break;
      }
      if (statement_initial) {
        sink->Emit(line, "discarded-parse-result", kDiscardedParseMsg);
      }
    }

    // unannotated-mutex: `std::mutex name_;` members anywhere in the tree
    // must carry a guards:/WEBCC_GUARDED_BY annotation on the same or
    // previous line (pass 4 then enforces the guarded members).
    if (after_scope && IsMutexType(t) && is_ident(i + 1) && is_punct(i + 2, ";")) {
      bool annotated = false;
      for (size_t back = 0; back < 2; ++back) {
        const size_t decl_line = sig[i + 1]->line;
        if (decl_line >= back + 1 && decl_line - back <= file.raw_lines.size()) {
          const std::string& raw = file.raw_lines[decl_line - back - 1];
          if (raw.find("guards:") != std::string::npos ||
              raw.find("GUARDED_BY") != std::string::npos) {
            annotated = true;
            break;
          }
        }
      }
      if (!annotated) {
        sink->Emit(sig[i - 2]->line, "unannotated-mutex", kUnannotatedMutexMsg);
      }
    }
  }
}

// --- Line rules (legacy regexes over the blanked code view) -----------------

struct LineRule {
  std::string name;
  std::regex pattern;
  std::string message;
  bool (*applies)(const std::string& path);
  const char* exempt_match_substring = nullptr;
};

const std::vector<LineRule>& LineRules() {
  static const std::vector<LineRule>* rules = new std::vector<LineRule>{
      {"raw-seconds-param",
       std::regex(R"(\b(int|int32_t|int64_t|uint32_t|uint64_t|long|size_t|double|float)\s+)"
                  R"(\w*sec(ond)?s?\w*\s*[,)])"),
       "spans of simulated time take SimDuration, not raw numeric seconds",
       AppliesOutsideSimTime,
       "per_sec"},
      {"float-equality",
       std::regex(R"([=!]=\s*[-+]?\d+\.\d*|\d+\.\d*\s*[=!]=|)"
                  R"(\.(mean|variance|stddev)\(\)\s*[=!]=|[=!]=\s*\w+\.(mean|variance|stddev)\(\))"),
       "exact ==/!= on accumulated doubles is a latent flake; compare with a tolerance",
       AppliesToStatsCode},
      {"unbounded-retry",
       std::regex(R"(\bwhile\s*\(\s*(true|1)\s*\)|\bfor\s*\(\s*;\s*;\s*\))"),
       "retry loops in cache/origin code must be bounded by RetryPolicy.max_attempts; an "
       "unreachable origin would spin this forever",
       AppliesToUpstreamCode},
      {"ignored-upstream-error",
       std::regex(R"(^\s*[\w.>-]*(FetchFull|FetchIfModified|HandleGet|HandleConditionalGet|)"
                  R"(DeliverInvalidation)\s*\()"),
       "this upstream call reports failure via its return value; dropping it silently "
       "swallows a faulted exchange — check ok/attempts or cast through a named variable",
       AppliesToUpstreamCode},
  };
  return *rules;
}

void RunLineRules(const LexedFile& file, FileSink* sink) {
  for (const LineRule& rule : LineRules()) {
    if (!rule.applies(file.path)) {
      continue;
    }
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(file.code_lines[i], m, rule.pattern)) {
        continue;
      }
      if (rule.exempt_match_substring != nullptr &&
          m.str().find(rule.exempt_match_substring) != std::string::npos) {
        continue;
      }
      sink->Emit(i + 1, rule.name, rule.message);
    }
  }
}

// unordered-iteration needs two passes over the whole scan unit: containers
// are typically declared in a header and iterated in the matching .cc file.
const std::regex& UnorderedDeclPattern() {
  static const std::regex* re =
      new std::regex(R"(\bstd::unordered_(map|set|multimap|multiset)<.*>\s+(\w+)\s*[;={])");
  return *re;
}
const std::regex& RangeForPattern() {
  static const std::regex* re = new std::regex(R"(\bfor\s*\([^;)]*:\s*(\w+)\s*\))");
  return *re;
}
const std::regex& BeginWalkPattern() {
  static const std::regex* re = new std::regex(R"(=\s*(\w+)\.c?begin\s*\()");
  return *re;
}

void RunUnorderedIteration(const std::vector<LexedFile>& files,
                           std::vector<FileSink>* sinks) {
  std::set<std::string> unordered_names;
  for (const LexedFile& file : files) {
    for (const std::string& line : file.code_lines) {
      for (std::sregex_iterator it(line.begin(), line.end(), UnorderedDeclPattern()), end;
           it != end; ++it) {
        unordered_names.insert((*it)[2].str());
      }
    }
  }
  if (unordered_names.empty()) {
    return;
  }
  for (size_t f = 0; f < files.size(); ++f) {
    const LexedFile& file = files[f];
    if (!AppliesToHotPaths(file.path)) {
      continue;
    }
    for (size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& line = file.code_lines[i];
      std::string hit;
      std::smatch m;
      if (std::regex_search(line, m, RangeForPattern()) && unordered_names.count(m[1].str())) {
        hit = m[1].str();
      } else if (std::regex_search(line, m, BeginWalkPattern()) &&
                 unordered_names.count(m[1].str())) {
        hit = m[1].str();
      }
      if (hit.empty()) {
        continue;
      }
      (*sinks)[f].Emit(i + 1, "unordered-iteration",
                       "iterating '" + hit +
                           "' (std::unordered_*) in a sim/cache hot path feeds "
                           "hash-order into event order; iterate a sorted view or keep a "
                           "side list");
    }
  }
}

}  // namespace

std::vector<Finding> RunLintRules(const std::vector<LexedFile>& files) {
  std::vector<Finding> findings;
  std::vector<FileSink> sinks;
  sinks.reserve(files.size());
  for (const LexedFile& file : files) {
    sinks.emplace_back(file, &findings);
  }
  for (size_t f = 0; f < files.size(); ++f) {
    RunTokenRules(files[f], &sinks[f]);
    RunLineRules(files[f], &sinks[f]);
  }
  RunUnorderedIteration(files, &sinks);
  return findings;
}

}  // namespace webcc::analyze
