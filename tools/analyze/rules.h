// Pass 1 rules of webcc-analyze: determinism/correctness lint over lexed
// source.
//
// Two rule families share the LexedFile input:
//
//   * Token rules walk the token stream (comments excluded, string/char
//     literal *contents* excluded by construction), so they cannot match
//     inside text. These cover the identifier-shaped hazards: banned-random,
//     banned-wallclock, bare-assert, oracle-bypass, and the three rules new
//     in webcc-analyze — std-distribution, discarded-parse-result,
//     unannotated-mutex.
//
//   * Line rules run the original webcc-lint regexes against the lexer's
//     blanked code_lines view (comments/literals already removed), keeping
//     the structural rules — raw-seconds-param, float-equality,
//     unbounded-retry, ignored-upstream-error, unordered-iteration —
//     behavior-identical to the fixture corpus they were tuned on.
//
// Waivers are honored exactly as before: `webcc-lint: allow(<rule>)` on the
// offending line, or `webcc-lint: allow-file(<rule>)` anywhere in the file
// (one named rule per directive). Waiver comments are matched against the
// raw source lines, so a waiver inside a comment works and a waiver inside a
// string literal also works — that has always been the deal.

#ifndef WEBCC_TOOLS_ANALYZE_RULES_H_
#define WEBCC_TOOLS_ANALYZE_RULES_H_

#include <vector>

#include "tools/analyze/lexer.h"
#include "tools/analyze/source.h"

namespace webcc::analyze {

// Runs every lint rule over `files` as one scan unit (unordered-iteration
// matches containers declared in one file against loops in another).
// Findings are unsorted; the orchestrator sorts.
std::vector<Finding> RunLintRules(const std::vector<LexedFile>& files);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_RULES_H_
