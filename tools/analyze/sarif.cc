#include "tools/analyze/sarif.h"

#include <set>
#include <sstream>

#include "tools/analyze/layers.h"

namespace webcc::analyze {
namespace {

// JSON string escaping per RFC 8259: backslash, quote, and control chars.
// Non-ASCII bytes pass through as UTF-8.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderSarif(const std::vector<Finding>& findings) {
  std::set<std::string> rule_ids;
  for (const Finding& f : findings) {
    rule_ids.insert(f.rule);
  }

  std::ostringstream out;
  out << "{\n";
  out << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out << "  \"version\": \"2.1.0\",\n";
  out << "  \"runs\": [\n";
  out << "    {\n";
  out << "      \"tool\": {\n";
  out << "        \"driver\": {\n";
  out << "          \"name\": \"webcc-analyze\",\n";
  out << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n";
  out << "          \"rules\": [";
  bool first = true;
  for (const std::string& id : rule_ids) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "            { \"id\": \"" << JsonEscape(id) << "\" }";
  }
  out << (rule_ids.empty() ? "]\n" : "\n          ]\n");
  out << "        }\n";
  out << "      },\n";
  out << "      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "        {\n";
    out << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n";
    out << "          \"level\": \"error\",\n";
    out << "          \"message\": { \"text\": \"" << JsonEscape(f.message) << "\" },\n";
    out << "          \"locations\": [\n";
    out << "            {\n";
    out << "              \"physicalLocation\": {\n";
    out << "                \"artifactLocation\": { \"uri\": \""
        << JsonEscape(RepoRelative(f.file)) << "\" }";
    if (f.line > 0) {
      out << ",\n                \"region\": { \"startLine\": " << f.line << " }\n";
    } else {
      out << "\n";
    }
    out << "              }\n";
    out << "            }\n";
    out << "          ]\n";
    out << "        }";
  }
  out << (findings.empty() ? "]\n" : "\n      ]\n");
  out << "    }\n";
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace webcc::analyze
