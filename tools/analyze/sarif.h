// Pass 3 of webcc-analyze: SARIF 2.1.0 output.
//
// CI uploads this JSON so code hosts can annotate PR diffs with findings.
// The writer is hand-rolled and deterministic: findings are emitted in the
// order given (the orchestrator sorts them), the rule table is the sorted
// set of rule ids that actually fired, and object keys are in a fixed order
// — identical findings always produce byte-identical JSON, which lets a
// golden-file test pin the format.

#ifndef WEBCC_TOOLS_ANALYZE_SARIF_H_
#define WEBCC_TOOLS_ANALYZE_SARIF_H_

#include <string>
#include <vector>

#include "tools/analyze/source.h"

namespace webcc::analyze {

// Renders the findings as a complete SARIF 2.1.0 document. Paths are
// normalized to repo-relative URIs. Findings with line 0 (whole-file
// configuration/IO errors) carry no region.
std::string RenderSarif(const std::vector<Finding>& findings);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_SARIF_H_
