// Shared input/output types for webcc-analyze (tools/analyze/).
//
// The analyzer is deliberately standalone — no dependency on the webcc
// libraries or on libclang — so it builds and runs even while the tree it
// analyzes is broken. Everything in tools/analyze/ speaks in terms of these
// two structs: a SourceFile in, Findings out.

#ifndef WEBCC_TOOLS_ANALYZE_SOURCE_H_
#define WEBCC_TOOLS_ANALYZE_SOURCE_H_

#include <string>

namespace webcc::analyze {

// One file's worth of already-read source. `path` is used for rule scoping
// (substring matches such as "src/util/rng.") and for module extraction in
// the layer pass; separators are expected to be '/'.
struct SourceFile {
  std::string path;
  std::string contents;
};

// One diagnostic. Rendered as `file:line: [rule] message` and as one SARIF
// result. `line` is 1-based; 0 means "whole file" (I/O and config errors).
struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_SOURCE_H_
