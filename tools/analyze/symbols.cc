#include "tools/analyze/symbols.h"

#include <algorithm>
#include <set>

#include "tools/analyze/layers.h"

namespace webcc::analyze {
namespace {

bool IsAllCaps(const std::string& t) {
  bool has_alpha = false;
  for (const char c : t) {
    if (c >= 'a' && c <= 'z') {
      return false;
    }
    if (c >= 'A' && c <= 'Z') {
      has_alpha = true;
    }
  }
  return has_alpha;
}

// Keywords that legally precede a '(' without being a call or a function
// name. `assert`-style lowercase macros resolve to no definition and fall
// out of the graph naturally.
bool IsCallExcludedKeyword(const std::string& t) {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "if",       "for",     "while",     "switch",        "return",   "sizeof",
      "alignof",  "alignas", "catch",     "throw",         "new",      "delete",
      "decltype", "typeid",  "noexcept",  "static_assert", "co_await", "co_return",
      "co_yield", "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast"};
  return kw->count(t) != 0;
}

bool IsLockClass(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
         t == "shared_lock";
}

bool IsMutexClass(const std::string& t) {
  return t == "mutex" || t == "recursive_mutex" || t == "timed_mutex" ||
         t == "recursive_timed_mutex" || t == "shared_mutex" ||
         t == "shared_timed_mutex";
}

bool IsBannedStdRandomName(const std::string& t) {
  return t == "mt19937" || t == "mt19937_64" || t == "minstd_rand" ||
         t == "minstd_rand0" || t == "random_device" || t == "default_random_engine" ||
         t == "knuth_b" || t.rfind("ranlux", 0) == 0 || t == "bernoulli_distribution" ||
         t == "discrete_distribution" || t == "uniform_int_distribution" ||
         t == "uniform_real_distribution" || t == "normal_distribution";
}

bool IsBannedCRandomName(const std::string& t) {
  return t == "rand" || t == "srand" || t == "random" || t == "drand48" ||
         t == "lrand48" || t == "mrand48";
}

bool IsWallclockChronoClockName(const std::string& t) {
  return t == "system_clock" || t == "steady_clock" || t == "high_resolution_clock";
}

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

// --- Per-file indexing ------------------------------------------------------

class FileIndexer {
 public:
  FileIndexer(const LexedFile& file, const std::set<std::string>& unordered_names,
              SymbolIndex* out)
      : file_(file), unordered_names_(unordered_names), out_(out) {
    sig_.reserve(file.tokens.size());
    for (const Token& t : file.tokens) {
      if (t.kind != TokenKind::kComment && !t.in_preprocessor) {
        sig_.push_back(&t);
      }
    }
  }

  void Run() {
    while (i_ < sig_.size()) {
      StepAtScopeLevel();
    }
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kOther };
    Kind kind = kOther;
    std::string name;
  };

  const std::string& Text(size_t i) const {
    static const std::string empty;
    return i < sig_.size() ? sig_[i]->text : empty;
  }
  bool IsIdent(size_t i) const {
    return i < sig_.size() && sig_[i]->kind == TokenKind::kIdentifier;
  }
  bool IsPunct(size_t i, const char* p) const {
    return i < sig_.size() && sig_[i]->kind == TokenKind::kPunct && sig_[i]->text == p;
  }
  size_t Line(size_t i) const { return i < sig_.size() ? sig_[i]->line : 0; }

  // Skips a balanced token group starting at `i` (which must be the opener);
  // returns the index one past the closer. Angle skipping treats ">>" as two
  // closers and only counts angles at paren depth zero.
  size_t SkipParens(size_t i) const { return SkipBalanced(i, "(", ")"); }
  size_t SkipBraces(size_t i) const { return SkipBalanced(i, "{", "}"); }
  size_t SkipBrackets(size_t i) const { return SkipBalanced(i, "[", "]"); }

  size_t SkipBalanced(size_t i, const char* open, const char* close) const {
    int depth = 0;
    while (i < sig_.size()) {
      if (IsPunct(i, open)) {
        ++depth;
      } else if (IsPunct(i, close)) {
        --depth;
        if (depth == 0) {
          return i + 1;
        }
      }
      ++i;
    }
    return i;
  }

  size_t SkipAngles(size_t i) const {
    int depth = 0;
    int parens = 0;
    while (i < sig_.size()) {
      if (IsPunct(i, "(") || IsPunct(i, "[")) {
        ++parens;
      } else if (IsPunct(i, ")") || IsPunct(i, "]")) {
        --parens;
      } else if (parens == 0) {
        if (IsPunct(i, "<")) {
          ++depth;
        } else if (IsPunct(i, ">")) {
          if (--depth == 0) {
            return i + 1;
          }
        } else if (IsPunct(i, ">>")) {
          depth -= 2;
          if (depth <= 0) {
            return i + 1;
          }
        } else if (IsPunct(i, ";")) {
          return i;  // malformed; bail without consuming the statement end
        }
      }
      ++i;
    }
    return i;
  }

  // Skips forward to one past the next ';' at balance zero (for statements
  // we do not model: using-aliases, initialized variables, ...).
  size_t SkipToSemicolon(size_t i) const {
    while (i < sig_.size()) {
      if (IsPunct(i, "(")) {
        i = SkipParens(i);
      } else if (IsPunct(i, "{")) {
        i = SkipBraces(i);
      } else if (IsPunct(i, "[")) {
        i = SkipBrackets(i);
      } else if (IsPunct(i, ";")) {
        return i + 1;
      } else {
        ++i;
      }
    }
    return i;
  }

  std::string ScopePrefix() const {
    std::string prefix;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) {
        continue;  // anonymous namespace / unnamed scope
      }
      if (!prefix.empty()) {
        prefix += "::";
      }
      prefix += s.name;
    }
    return prefix;
  }

  bool InClassScope() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::kClass;
  }

  void StepAtScopeLevel() {
    const size_t i = i_;
    if (IsIdent(i)) {
      const std::string& t = Text(i);
      if (t == "namespace") {
        HandleNamespace();
        return;
      }
      if ((t == "class" || t == "struct") && !(i > 0 && Text(i - 1) == "enum")) {
        HandleClass();
        return;
      }
      if (t == "enum") {
        HandleEnum();
        return;
      }
      if (t == "template") {
        i_ = IsPunct(i + 1, "<") ? SkipAngles(i + 1) : i + 1;
        return;
      }
      if (t == "using" || t == "typedef" || t == "friend") {
        i_ = SkipToSemicolon(i);
        return;
      }
      if (t == "operator") {
        if (!TryParseOperator(i)) {
          i_ = SkipToSemicolon(i);
        }
        return;
      }
      if (t == "WEBCC_GUARDED_BY" && InClassScope()) {
        HandleGuardedBy(i);
        // fall through to the default advance; the '(' is consumed below
      }
      if (t == "WEBCC_ACQUIRED_AFTER" && InClassScope()) {
        HandleAcquiredAfter(i);
        // same fall-through: the argument tokens are consumed as parens
      }
      if (IsMutexClass(t) && InClassScope() && i >= 2 && Text(i - 2) == "std" &&
          IsPunct(i - 1, "::") && IsIdent(i + 1) && !IsPunct(i + 2, "(")) {
        // `std::mutex name_ ...;` data member (possibly annotated).
        out_->mutex_members.push_back(
            MutexMember{ScopePrefix(), Text(i + 1), file_.path, Line(i + 1)});
      }
    }
    if (IsPunct(i, "(")) {
      if (!TryParseFunctionAtParen(i)) {
        i_ = SkipParens(i);
      }
      return;
    }
    if (IsPunct(i, "{")) {
      scopes_.push_back(Scope{Scope::kOther, ""});
      ++i_;
      return;
    }
    if (IsPunct(i, "}")) {
      if (!scopes_.empty()) {
        scopes_.pop_back();
      }
      ++i_;
      return;
    }
    if (IsPunct(i, "=")) {
      // Variable initializer at scope level (`int a[] = {...};`,
      // `auto f = [] { ... };`) — never a function definition we index.
      i_ = SkipToSemicolon(i);
      return;
    }
    ++i_;
  }

  void HandleNamespace() {
    size_t i = i_ + 1;  // past 'namespace'
    std::string name;
    while (IsIdent(i) || IsPunct(i, "::")) {
      if (IsIdent(i)) {
        if (!name.empty()) {
          name += "::";
        }
        name += Text(i);
      }
      ++i;
    }
    if (IsPunct(i, "{")) {
      scopes_.push_back(Scope{Scope::kNamespace, name});
      i_ = i + 1;
      return;
    }
    // `namespace A = B;` or malformed: skip the statement.
    i_ = SkipToSemicolon(i_);
  }

  void HandleClass() {
    size_t i = i_ + 1;  // past 'class'/'struct'
    // Skip attributes and alignas before the name.
    while (IsPunct(i, "[")) {
      i = SkipBrackets(i);
    }
    if (IsIdent(i) && Text(i) == "alignas" && IsPunct(i + 1, "(")) {
      i = SkipParens(i + 1);
    }
    std::string name;
    if (IsIdent(i)) {
      name = Text(i);
      ++i;
      if (IsPunct(i, "<")) {  // explicit specialization
        i = SkipAngles(i);
      }
    }
    // Scan to the body '{' or a ';' (forward declaration / pointer decl).
    while (i < sig_.size() && !IsPunct(i, "{") && !IsPunct(i, ";") &&
           !IsPunct(i, "(")) {
      if (IsPunct(i, "<")) {
        i = SkipAngles(i);
      } else {
        ++i;
      }
    }
    if (IsPunct(i, "{")) {
      scopes_.push_back(Scope{Scope::kClass, name});
      i_ = i + 1;
      return;
    }
    i_ = i + 1;  // past the ';' (or stray '(' — next step re-examines)
  }

  void HandleEnum() {
    size_t i = i_ + 1;
    while (i < sig_.size() && !IsPunct(i, "{") && !IsPunct(i, ";")) {
      ++i;
    }
    i_ = IsPunct(i, "{") ? SkipBraces(i) : i + 1;
  }

  // `member WEBCC_GUARDED_BY(mu);` at class scope.
  void HandleGuardedBy(size_t i) {
    if (!(IsPunct(i + 1, "(") && IsIdent(i + 2) && IsPunct(i + 3, ")"))) {
      return;
    }
    if (!(i > 0 && IsIdent(i - 1))) {
      return;
    }
    GuardedMember g;
    g.class_name = ScopePrefix();
    g.member = Text(i - 1);
    g.mutex = Text(i + 2);
    g.file = file_.path;
    g.line = Line(i);
    out_->guarded_members.push_back(std::move(g));
  }

  // `std::mutex member_ WEBCC_ACQUIRED_AFTER(other);` at class scope. The
  // argument may be a bare member name or a qualified "Class::mu_" chain.
  void HandleAcquiredAfter(size_t i) {
    if (!(IsPunct(i + 1, "(") && (i > 0 && IsIdent(i - 1)))) {
      return;
    }
    std::string before;
    size_t a = i + 2;
    while (IsIdent(a) || IsPunct(a, "::")) {
      before += Text(a);
      ++a;
    }
    if (before.empty() || !IsPunct(a, ")")) {
      return;
    }
    DeclaredLockOrder d;
    d.class_name = ScopePrefix();
    d.member = Text(i - 1);
    d.before = before;
    d.file = file_.path;
    d.line = Line(i);
    out_->declared_lock_order.push_back(std::move(d));
  }

  // Walks a qualifier chain backwards from position `j` (exclusive): the
  // sequence `A :: B<T> ::` just before a name. Returns the joined qualifier
  // and updates `j` to the first token of the chain.
  std::string QualifierBefore(size_t* j) const {
    std::string qualifier;
    size_t k = *j;
    while (k >= 2 && IsPunct(k - 1, "::")) {
      size_t part_end = k - 1;  // the '::'
      size_t part = part_end;
      if (IsPunct(part_end - 1, ">")) {
        // Templated qualifier: scan backwards to the matching '<', then the
        // identifier before it.
        int depth = 0;
        size_t b = part_end - 1;
        while (b > 0) {
          if (IsPunct(b, ">")) {
            ++depth;
          } else if (IsPunct(b, "<")) {
            if (--depth == 0) {
              break;
            }
          }
          --b;
        }
        if (b == 0 || !IsIdent(b - 1)) {
          break;
        }
        part = b - 1;
      } else if (IsIdent(part_end - 1)) {
        part = part_end - 1;
      } else {
        break;  // e.g. a global-scope `::name`
      }
      qualifier = qualifier.empty() ? Text(part) : Text(part) + "::" + qualifier;
      k = part;
      if (k == 0) {
        break;
      }
    }
    *j = k;
    return qualifier;
  }

  // Attempts to recognize a function signature whose parameter list opens at
  // `paren`. On success the whole construct (body included) is consumed and
  // i_ advanced; returns false to let the caller skip the parens.
  bool TryParseFunctionAtParen(size_t paren) {
    if (paren == 0 || !IsIdent(paren - 1)) {
      return false;
    }
    const std::string name_text = Text(paren - 1);
    if (IsAllCaps(name_text) || IsCallExcludedKeyword(name_text) ||
        name_text == "operator") {
      return false;
    }
    size_t name_pos = paren - 1;
    std::string name = name_text;
    if (name_pos > 0 && IsPunct(name_pos - 1, "~")) {
      name = "~" + name;
      --name_pos;
    }
    std::string qualifier = QualifierBefore(&name_pos);
    return FinishSignature(name, qualifier, Line(paren - 1), paren);
  }

  // `operator<op>` / `operator()` / `operator bool` at scope level.
  bool TryParseOperator(size_t i) {
    std::string name = "operator";
    size_t j = i + 1;
    if (IsPunct(j, "(") && IsPunct(j + 1, ")")) {
      name += "()";
      j += 2;
    } else {
      while (j < sig_.size() && !IsPunct(j, "(")) {
        name += Text(j);
        ++j;
        if (j - i > 6) {
          return false;  // not an operator we recognize
        }
      }
    }
    if (!IsPunct(j, "(")) {
      return false;
    }
    size_t name_pos = i;
    std::string qualifier = QualifierBefore(&name_pos);
    return FinishSignature(name, qualifier, Line(i), j);
  }

  bool FinishSignature(const std::string& name, const std::string& qualifier,
                       size_t name_line, size_t paren) {
    const size_t after_params = SkipParens(paren);
    size_t k = after_params;
    // Trailing qualifiers and specifiers.
    while (k < sig_.size()) {
      if (IsIdent(k)) {
        const std::string& t = Text(k);
        if (t == "const" || t == "override" || t == "final" || t == "mutable" ||
            t == "volatile" || t == "try") {
          ++k;
          continue;
        }
        if (t == "noexcept" || t == "requires") {
          ++k;
          if (IsPunct(k, "(")) {
            k = SkipParens(k);
          }
          continue;
        }
        break;  // some other identifier: not part of a signature we model
      }
      if (IsPunct(k, "&") || IsPunct(k, "&&")) {
        ++k;
        continue;
      }
      if (IsPunct(k, "[")) {
        k = SkipBrackets(k);
        continue;
      }
      if (IsPunct(k, "->")) {
        // Trailing return type: anything up to the body/terminator.
        ++k;
        while (k < sig_.size() && !IsPunct(k, "{") && !IsPunct(k, ";") &&
               !IsPunct(k, "=")) {
          if (IsPunct(k, "<")) {
            k = SkipAngles(k);
          } else if (IsPunct(k, "(")) {
            k = SkipParens(k);
          } else {
            ++k;
          }
        }
        continue;
      }
      break;
    }

    bool is_definition = false;
    size_t body_open = 0;
    size_t scan_from = 0;  // first token to scan; the init list scans too
    if (IsPunct(k, "{")) {
      is_definition = true;
      body_open = k;
    } else if (IsPunct(k, ";")) {
      i_ = k + 1;
    } else if (IsPunct(k, "=")) {
      // `= default`, `= delete`, `= 0`: a declaration without a body.
      i_ = SkipToSemicolon(k);
    } else if (IsPunct(k, ":")) {
      // Constructor initializer list: `: member(expr), member{expr}, ... {`.
      // Calls and primitives in initializer expressions count (taint hides
      // there too — e.g. `: jobs_(ResolveJobs(jobs))`), so scanning starts
      // at the colon, not the body brace.
      scan_from = k + 1;
      ++k;
      while (k < sig_.size()) {
        while (IsIdent(k) || IsPunct(k, "::")) {
          ++k;
          if (IsPunct(k, "<")) {
            k = SkipAngles(k);
          }
        }
        if (IsPunct(k, "(")) {
          k = SkipParens(k);
        } else if (IsPunct(k, "{")) {
          // Brace-init of a member — unless it is the body (no ',' follows a
          // body, and a body brace is never directly preceded by an ident we
          // just walked). Disambiguate: treat as member-init iff a ',' or '{'
          // follows the balanced group.
          const size_t close = SkipBraces(k);
          if (IsPunct(close, ",") || IsPunct(close, "{")) {
            k = close;
          } else {
            is_definition = true;
            body_open = k;
            break;
          }
        } else {
          return false;  // not a recognizable init list
        }
        if (IsPunct(k, ",")) {
          ++k;
          continue;
        }
        if (IsPunct(k, "{")) {
          is_definition = true;
          body_open = k;
        }
        break;
      }
      if (!is_definition) {
        return false;
      }
    } else {
      return false;
    }

    FunctionSymbol fn;
    fn.name = name;
    const std::string prefix = ScopePrefix();
    fn.scope = prefix;
    if (!qualifier.empty()) {
      fn.scope = prefix.empty() ? qualifier : prefix + "::" + qualifier;
    }
    fn.qualified_name = fn.scope.empty() ? name : fn.scope + "::" + name;
    fn.file = file_.path;
    fn.line = name_line;
    fn.is_definition = is_definition;
    fn.is_method = InClassScope() || !qualifier.empty();
    fn.annotated_nondeterministic = LineHasMarker(name_line);
    if (is_definition) {
      fn.sig_scan_begin = scan_from != 0 ? scan_from : body_open + 1;
      fn.sig_body_open = body_open;
      fn.sig_body_end = SkipBraces(body_open);
      ScanBody(fn.sig_scan_begin, body_open, &fn);
      i_ = fn.sig_body_end;
    }
    out_->functions.push_back(std::move(fn));
    return true;
  }

  bool LineHasMarker(size_t line) const {
    for (size_t back = 0; back < 2; ++back) {
      if (line >= back + 1 && line - back <= file_.raw_lines.size()) {
        if (file_.raw_lines[line - back - 1].find("webcc-nondeterministic") !=
            std::string::npos) {
          return true;
        }
      }
    }
    return false;
  }

  // --- Body scanning --------------------------------------------------------

  // Scans [scan_from, end-of-body) — for constructors, scan_from points at
  // the first init-list token so initializer expressions are covered.
  void ScanBody(size_t scan_from, size_t body_open, FunctionSymbol* fn) {
    const size_t end = SkipBraces(body_open);
    const bool rng_exempt = PathContains(file_.path, "util/rng.");
    size_t pos = 0;
    // Paren contexts: true when the group was opened by `for (`, used to
    // recognize range-for iteration over unordered containers.
    std::vector<bool> for_paren;
    for (size_t i = scan_from; i + 1 < end + 1 && i < sig_.size(); ++i, ++pos) {
      if (IsPunct(i, "(")) {
        for_paren.push_back(i > 0 && IsIdent(i - 1) && Text(i - 1) == "for");
        continue;
      }
      if (IsPunct(i, ")")) {
        if (!for_paren.empty()) {
          for_paren.pop_back();
        }
        continue;
      }
      if (!IsIdent(i)) {
        // Range-for over an unordered container: `for (... : name)`.
        if (IsPunct(i, ":") && !for_paren.empty() && for_paren.back() &&
            IsIdent(i + 1) && IsPunct(i + 2, ")") &&
            unordered_names_.count(Text(i + 1)) != 0) {
          fn->primitives.push_back(PrimitiveUse{
              "unordered iteration over '" + Text(i + 1) + "'", Line(i + 1)});
        }
        continue;
      }

      const std::string& t = Text(i);
      const size_t line = Line(i);
      fn->ident_uses.push_back(IdentUse{t, line, pos});

      const bool after_std =
          i >= 2 && Text(i - 2) == "std" && IsPunct(i - 1, "::");

      // Call sites.
      if (IsPunct(i + 1, "(") && !IsAllCaps(t) && !IsCallExcludedKeyword(t)) {
        CallUse call;
        call.callee = t;
        call.line = line;
        if (i > 0 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->"))) {
          const bool via_this = i >= 2 && IsPunct(i - 1, "->") && Text(i - 2) == "this";
          call.receiver = via_this ? CallReceiver::kPlain : CallReceiver::kMember;
        } else if (i > 0 && IsPunct(i - 1, "::")) {
          size_t name_pos = i;
          call.qualifier = QualifierBefore(&name_pos);
          call.receiver = CallReceiver::kScoped;
        }
        fn->calls.push_back(std::move(call));
      }

      // Lexical mutex acquisitions.
      if (IsLockClass(t)) {
        size_t j = i + 1;
        if (IsPunct(j, "<")) {
          j = SkipAngles(j);
        }
        if (IsIdent(j) && IsPunct(j + 1, "(")) {
          // First constructor argument, last identifier before ',' or ')'.
          std::string mutex;
          size_t a = j + 2;
          int depth = 0;
          while (a < sig_.size()) {
            if (IsPunct(a, "(")) {
              ++depth;
            } else if (IsPunct(a, ")")) {
              if (depth-- == 0) {
                break;
              }
            } else if (depth == 0 && IsPunct(a, ",")) {
              break;
            } else if (IsIdent(a)) {
              mutex = Text(a);
            }
            ++a;
          }
          if (!mutex.empty()) {
            fn->lock_acquires.push_back(LockAcquire{mutex, pos});
          }
        }
      }
      if (i + 3 < sig_.size() && (IsPunct(i + 1, ".") || IsPunct(i + 1, "->")) &&
          Text(i + 2) == "lock" && IsPunct(i + 3, "(")) {
        fn->lock_acquires.push_back(LockAcquire{t, pos});
      }

      // Nondeterministic primitives (the taint sources). The patterns mirror
      // the pass-1 rules exactly; src/util/rng.* keeps its sanction for the
      // randomness family (that is where the seeded engine lives).
      if (!rng_exempt) {
        if (IsBannedCRandomName(t) && IsPunct(i + 1, "(")) {
          fn->primitives.push_back(PrimitiveUse{t + "()", line});
        }
        if (after_std && IsBannedStdRandomName(t)) {
          fn->primitives.push_back(PrimitiveUse{"std::" + t, line});
        }
      }
      if (t == "time" && IsPunct(i + 1, "(")) {
        if (after_std) {
          fn->primitives.push_back(PrimitiveUse{"std::time", line});
        } else if ((Text(i + 2) == "NULL" || Text(i + 2) == "nullptr" ||
                    Text(i + 2) == "0") &&
                   IsPunct(i + 3, ")")) {
          fn->primitives.push_back(PrimitiveUse{"time()", line});
        }
      }
      if ((t == "gettimeofday" || t == "clock_gettime") && IsPunct(i + 1, "(")) {
        fn->primitives.push_back(PrimitiveUse{t + "()", line});
      }
      if (t == "clock" && IsPunct(i + 1, "(") && IsPunct(i + 2, ")")) {
        fn->primitives.push_back(PrimitiveUse{"clock()", line});
      }
      if (t == "chrono" && after_std && IsPunct(i + 1, "::") &&
          IsWallclockChronoClockName(Text(i + 2))) {
        fn->primitives.push_back(
            PrimitiveUse{"std::chrono::" + Text(i + 2), line});
      }
      if (t == "getenv" && IsPunct(i + 1, "(")) {
        fn->primitives.push_back(PrimitiveUse{"getenv()", line});
      }
      if (t == "hardware_concurrency" && IsPunct(i + 1, "(")) {
        fn->primitives.push_back(PrimitiveUse{"hardware_concurrency()", line});
      }
      if (t == "hash" && after_std && IsPunct(i + 1, "<")) {
        // Pointer hashing: a '*' anywhere in the template argument.
        const size_t close = SkipAngles(i + 1);
        for (size_t a = i + 2; a + 1 < close; ++a) {
          if (IsPunct(a, "*")) {
            fn->primitives.push_back(PrimitiveUse{"std::hash over a pointer", line});
            break;
          }
        }
      }
      if (unordered_names_.count(t) != 0 &&
          (IsPunct(i + 1, ".") || IsPunct(i + 1, "->")) &&
          (Text(i + 2) == "begin" || Text(i + 2) == "cbegin") && IsPunct(i + 3, "(")) {
        fn->primitives.push_back(
            PrimitiveUse{"unordered iteration over '" + t + "'", line});
      }
    }
  }

  const LexedFile& file_;
  const std::set<std::string>& unordered_names_;
  SymbolIndex* out_;
  std::vector<const Token*> sig_;
  size_t i_ = 0;
  std::vector<Scope> scopes_;
};

// Names declared anywhere in the unit as std::unordered_* containers; used
// to recognize hash-order iteration as a taint source.
std::set<std::string> CollectUnorderedNames(const std::vector<const LexedFile*>& files) {
  std::set<std::string> names;
  for (const LexedFile* file : files) {
    const std::vector<Token>& toks = file->tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          toks[i].text.rfind("unordered_", 0) != 0) {
        continue;
      }
      // std::unordered_map<...> name
      size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokenKind::kPunct && toks[j].text == "<") {
        int depth = 0;
        while (j < toks.size()) {
          if (toks[j].kind == TokenKind::kPunct) {
            if (toks[j].text == "<") {
              ++depth;
            } else if (toks[j].text == ">") {
              if (--depth == 0) {
                ++j;
                break;
              }
            } else if (toks[j].text == ">>") {
              depth -= 2;
              if (depth <= 0) {
                ++j;
                break;
              }
            }
          }
          ++j;
        }
        if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
          names.insert(toks[j].text);
        }
      }
    }
  }
  return names;
}

}  // namespace

SymbolIndex BuildSymbolIndex(const std::vector<LexedFile>& files) {
  // Deterministic file order regardless of how the caller discovered them.
  std::vector<const LexedFile*> ordered;
  ordered.reserve(files.size());
  for (const LexedFile& f : files) {
    ordered.push_back(&f);
  }
  std::sort(ordered.begin(), ordered.end(), [](const LexedFile* a, const LexedFile* b) {
    const std::string ra = RepoRelative(a->path);
    const std::string rb = RepoRelative(b->path);
    if (ra != rb) return ra < rb;
    return a->path < b->path;
  });

  SymbolIndex index;
  const std::set<std::string> unordered_names = CollectUnorderedNames(ordered);
  for (const LexedFile* file : ordered) {
    FileIndexer(*file, unordered_names, &index).Run();
    for (const Token& t : file->tokens) {
      if (t.kind == TokenKind::kIdentifier) {
        ++index.ident_census[t.text];
      }
    }
  }
  for (size_t i = 0; i < index.functions.size(); ++i) {
    if (index.functions[i].is_definition) {
      index.definitions_by_name[index.functions[i].name].push_back(i);
    }
  }
  return index;
}

}  // namespace webcc::analyze
