// Pass 4 of webcc-analyze, stage 1: a cross-TU symbol index.
//
// Built on the pass-1 lexer (tools/analyze/lexer.h), the indexer walks every
// scanned file's token stream and records, heuristically but
// deterministically (no libclang, no preprocessor expansion):
//
//   * function and method *definitions* — name, scope-qualified name, file,
//     line, and everything pass 4 needs from the body: call sites,
//     nondeterministic primitive uses, every identifier use, and lexical
//     mutex acquisitions;
//   * function *declarations* (so a header prototype does not read as a dead
//     symbol when only its out-of-line definition is referenced);
//   * `WEBCC_GUARDED_BY(mu)`-annotated data members per class (consumed by
//     the lock-discipline rule, tools/analyze/lockcheck.h), plus the
//     std::mutex-family members themselves and any `WEBCC_ACQUIRED_AFTER`
//     ordering annotations on them (consumed by pass 5, tools/analyze/locks.h);
//   * a global identifier-spelling census (consumed by the dead-symbol
//     report, tools/analyze/callgraph.h).
//
// Scope tracking understands namespaces (including `namespace a::b`),
// classes/structs, out-of-line `Class::Method` definitions, constructor
// initializer lists, `= default/delete`, operators, destructors, and
// template headers. It is a linter-grade parser: unrecognized constructs are
// skipped, never fatal, and the same bytes always index identically —
// that determinism is what lets findings flow through the baseline.
//
// Known, accepted imprecision: ALL_CAPS names are treated as macros and
// ignored; a variable declared with constructor syntax (`Foo x(1);`) at
// namespace scope indexes as a spurious *declaration* named `x` (harmless:
// declarations only feed liveness, never taint); overloads share one name
// and are resolved conservatively (see callgraph.h).

#ifndef WEBCC_TOOLS_ANALYZE_SYMBOLS_H_
#define WEBCC_TOOLS_ANALYZE_SYMBOLS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "tools/analyze/lexer.h"

namespace webcc::analyze {

// How a call site spelled its target; the resolver uses this to narrow the
// candidate set (see callgraph.h).
enum class CallReceiver {
  kPlain,   // f(...)  or  this->f(...)
  kMember,  // obj.f(...)  or  ptr->f(...)
  kScoped,  // A::B::f(...)
};

struct CallUse {
  std::string callee;     // unqualified target name
  std::string qualifier;  // "A::B" for kScoped, empty otherwise
  CallReceiver receiver = CallReceiver::kPlain;
  size_t line = 0;
};

// One use of a nondeterministic primitive inside a function body. These are
// the determinism-taint *sources*: the same set pass 1 bans at call sites,
// detected here per enclosing function so taint can flow up the call graph.
struct PrimitiveUse {
  std::string what;  // e.g. "std::getenv", "std::mt19937", "unordered iteration over 'by_uri'"
  size_t line = 0;
};

struct IdentUse {
  std::string name;
  size_t line = 0;
  size_t pos = 0;  // body-relative token position, for lexical ordering
};

// A lexical mutex acquisition: std::lock_guard/unique_lock/scoped_lock/
// shared_lock construction naming the mutex, or an explicit `mu.lock()`.
struct LockAcquire {
  std::string mutex;
  size_t pos = 0;
};

struct FunctionSymbol {
  std::string name;            // "Submit", "~ThreadPool", "operator()"
  std::string qualified_name;  // "webcc::ThreadPool::Submit"
  std::string scope;           // enclosing scope: "webcc::ThreadPool" (class
                               // or namespace; empty at global scope)
  std::string file;            // path as scanned (not yet repo-relativized)
  size_t line = 0;             // line of the name token
  bool is_definition = false;  // has a body (declarations index too)
  bool is_method = false;      // scope names a class seen with members/methods
  bool annotated_nondeterministic = false;  // `webcc-nondeterministic` marker
  // Body contents; empty for declarations.
  std::vector<CallUse> calls;
  std::vector<PrimitiveUse> primitives;
  std::vector<IdentUse> ident_uses;
  std::vector<LockAcquire> lock_acquires;
  // Significant-token span of the definition, for pass 5's CFG construction
  // (tools/analyze/cfg.h). Indices into the file's non-comment,
  // non-preprocessor token stream — the same stream the indexer walked.
  // `sig_scan_begin` starts at the ctor init list when one exists, else one
  // past the body '{'. All three stay zero for declarations.
  size_t sig_scan_begin = 0;
  size_t sig_body_open = 0;
  size_t sig_body_end = 0;  // one past the closing '}'
};

// A std::mutex-family data member declared at class scope. Gives pass 5 a
// qualified identity ("webcc::ThreadPool::mu_") so lock-order edges compare
// across translation units instead of colliding on the spelling "mu_".
struct MutexMember {
  std::string class_name;  // qualified: "webcc::ThreadPool"
  std::string member;      // "mu_"
  std::string file;
  size_t line = 0;
};

// One WEBCC_ACQUIRED_AFTER(before) annotation on a mutex member: declares
// that `before` is acquired before `class_name::member` wherever both are
// held. Pass 5 folds these declared edges into the observed lock-order
// graph, so an inverted acquisition anywhere in the tree closes a cycle.
struct DeclaredLockOrder {
  std::string class_name;  // class owning the annotated mutex
  std::string member;      // the annotated mutex member
  std::string before;      // as spelled: "mu_" or "webcc::ThreadPool::mu_"
  std::string file;
  size_t line = 0;
};

// One WEBCC_GUARDED_BY(mutex) annotation on a class data member.
struct GuardedMember {
  std::string class_name;  // qualified: "webcc::ThreadPool"
  std::string member;      // "tasks_"
  std::string mutex;       // "mu_"
  std::string file;
  size_t line = 0;
};

struct SymbolIndex {
  // All records in deterministic order: files sorted by repo-relative path,
  // then token order within each file.
  std::vector<FunctionSymbol> functions;
  std::vector<GuardedMember> guarded_members;
  std::vector<MutexMember> mutex_members;
  std::vector<DeclaredLockOrder> declared_lock_order;
  // Indices into `functions` of definitions, keyed by unqualified name.
  std::map<std::string, std::vector<size_t>> definitions_by_name;
  // Total identifier tokens per spelling across the whole scan unit
  // (excluding comments), for the dead-symbol report.
  std::map<std::string, size_t> ident_census;
};

// Indexes `files` as one scan unit. Deterministic for a given set of file
// (path, contents) pairs regardless of input order.
SymbolIndex BuildSymbolIndex(const std::vector<LexedFile>& files);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_SYMBOLS_H_
