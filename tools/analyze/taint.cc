#include "tools/analyze/taint.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "tools/analyze/layers.h"

namespace webcc::analyze {
namespace {

const char* const kSinkDirs[] = {"src/sim/", "src/cache/", "src/core/",
                                 "src/chaos/", "src/workload/"};

bool IsSinkFile(const std::string& path) {
  const std::string rel = RepoRelative(path);
  for (const char* dir : kSinkDirs) {
    if (rel.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return false;
}

// Per-function taint state. A function is tainted by its own first primitive
// (via == kOwn) or through one deterministic callee (the BFS parent).
constexpr size_t kClean = static_cast<size_t>(-1);
constexpr size_t kOwn = static_cast<size_t>(-2);

struct TaintState {
  std::vector<size_t> via;  // kClean, kOwn, or the callee index taint came from
};

// Breadth-first taint propagation from every source up the reverse call
// graph. Waived functions (when `barriers` is non-null) never taint.
TaintState Propagate(const SymbolIndex& index,
                     const std::vector<std::vector<size_t>>& callers,
                     const std::vector<bool>* barriers) {
  TaintState state;
  state.via.assign(index.functions.size(), kClean);
  std::deque<size_t> queue;
  for (size_t i = 0; i < index.functions.size(); ++i) {
    const FunctionSymbol& fn = index.functions[i];
    if (!fn.is_definition || (barriers != nullptr && (*barriers)[i])) {
      continue;
    }
    if (!fn.primitives.empty() || fn.annotated_nondeterministic) {
      state.via[i] = kOwn;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const size_t cur = queue.front();
    queue.pop_front();
    for (const size_t caller : callers[cur]) {
      if (state.via[caller] != kClean ||
          (barriers != nullptr && (*barriers)[caller])) {
        continue;
      }
      state.via[caller] = cur;
      queue.push_back(caller);
    }
  }
  return state;
}

std::string SourceDescription(const FunctionSymbol& fn) {
  if (!fn.primitives.empty()) {
    const PrimitiveUse& p = fn.primitives.front();
    return p.what + " at " + RepoRelative(fn.file) + ":" + std::to_string(p.line);
  }
  return std::string("`// webcc-nondeterministic` annotation at ") +
         RepoRelative(fn.file) + ":" + std::to_string(fn.line);
}

}  // namespace

std::vector<TaintWaiver> ParseTaintWaivers(const std::string& path,
                                           const std::string& contents,
                                           std::vector<Finding>* findings) {
  std::vector<TaintWaiver> waivers;
  std::istringstream in(contents);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    // Continuation lines (indented) extend the previous justification.
    if (first > 0 && !waivers.empty()) {
      waivers.back().justification += " " + line.substr(first);
      continue;
    }
    const size_t name_end = line.find_first_of(" \t", first);
    const std::string name =
        line.substr(first, name_end == std::string::npos ? std::string::npos
                                                         : name_end - first);
    std::string justification;
    if (name_end != std::string::npos) {
      const size_t just = line.find_first_not_of(" \t", name_end);
      if (just != std::string::npos) {
        justification = line.substr(just);
      }
    }
    if (justification.empty()) {
      findings->push_back(
          Finding{path, line_no, "taint-config",
                  "taint waiver for '" + name +
                      "' has no justification; every waiver must say why the "
                      "nondeterminism cannot affect simulation results"});
      continue;
    }
    waivers.push_back(TaintWaiver{name, justification, line_no});
  }
  return waivers;
}

void CheckTaint(const SymbolIndex& index, const CallGraph& graph,
                const std::vector<TaintWaiver>& waivers,
                const std::string& waivers_path, std::vector<Finding>* findings) {
  const size_t n = index.functions.size();

  // Reverse adjacency, with caller lists in ascending index order so BFS
  // parent assignment is deterministic.
  std::vector<std::vector<size_t>> callers(n);
  for (size_t caller = 0; caller < n; ++caller) {
    for (const size_t callee : graph.callees[caller]) {
      callers[callee].push_back(caller);
    }
  }
  for (std::vector<size_t>& c : callers) {
    std::sort(c.begin(), c.end());
  }

  std::vector<bool> waived(n, false);
  std::vector<size_t> waiver_of(n, kClean);  // which waiver entry matched
  for (size_t w = 0; w < waivers.size(); ++w) {
    for (size_t i = 0; i < n; ++i) {
      if (QualifiedSuffixMatches(index.functions[i].qualified_name, waivers[w].function)) {
        waived[i] = true;
        if (waiver_of[i] == kClean) {
          waiver_of[i] = w;
        }
      }
    }
  }

  const TaintState state = Propagate(index, callers, &waived);

  for (size_t i = 0; i < n; ++i) {
    const FunctionSymbol& fn = index.functions[i];
    if (state.via[i] == kClean || !fn.is_definition || !IsSinkFile(fn.file)) {
      continue;
    }
    // Walk the parent chain down to the source.
    std::string chain = fn.qualified_name;
    size_t cur = i;
    while (state.via[cur] != kOwn) {
      cur = state.via[cur];
      chain += " -> " + index.functions[cur].qualified_name;
    }
    findings->push_back(
        Finding{fn.file, fn.line, "determinism-taint",
                "'" + fn.qualified_name + "' transitively reaches " +
                    SourceDescription(index.functions[cur]) +
                    "; call chain: " + chain +
                    " (waive in the taint waiver file only if this cannot "
                    "affect simulation results)"});
  }

  // Ratchet: a waiver is stale when, with all barriers removed, no function
  // it matches is tainted — i.e. deleting the entry would change nothing.
  if (!waivers.empty()) {
    const TaintState unwaived = Propagate(index, callers, nullptr);
    for (size_t w = 0; w < waivers.size(); ++w) {
      bool suppresses = false;
      for (size_t i = 0; i < n && !suppresses; ++i) {
        suppresses = waiver_of[i] == w && unwaived.via[i] != kClean;
      }
      if (!suppresses) {
        findings->push_back(
            Finding{waivers_path, waivers[w].line, "stale-taint-waiver",
                    "taint waiver for '" + waivers[w].function +
                        "' no longer suppresses any taint; delete it"});
      }
    }
  }
}

}  // namespace webcc::analyze
