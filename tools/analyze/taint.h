// Pass 4 of webcc-analyze, stage 3: transitive determinism taint.
//
// The repro's results are only trustworthy because every simulation is
// bit-reproducible (twin runs, the chaos oracle, and parallel sweeps all
// compare field-exact output). Pass 1 bans nondeterministic primitives at
// the call site; this pass closes the remaining gap — a primitive hidden one
// call level deep inside a helper.
//
// Sources (per function, from the symbol index):
//   * any recorded PrimitiveUse — banned randomness, wall-clock reads,
//     getenv, hardware_concurrency, unordered iteration, pointer hashing
//     (src/util/rng.* keeps its seeded-engine sanction, as in pass 1);
//   * a `// webcc-nondeterministic` annotation on the definition line (or
//     the line above it) — the escape hatch for nondeterminism the lexer
//     cannot see, which still taints every transitive caller.
//
// Sinks: function definitions under src/sim, src/cache, src/core,
// src/chaos, or src/workload — the directories whose behavior feeds
// simulation results. A tainted sink is a `determinism-taint` finding whose
// message prints the full call chain down to the primitive.
//
// Waivers: a waiver file (--taint-waivers) lists functions whose
// nondeterminism is sanctioned, each with a mandatory justification:
//
//     # comment
//     webcc::ResolveJobs  jobs count only affects scheduling; results are
//                         index-ordered and merge deterministically
//
// A waived function is a propagation barrier: neither its own primitives nor
// taint arriving from its callees flow to its callers. Names match on a
// trailing `::`-boundary suffix of the qualified name. Like baseline
// entries, waivers ratchet: an entry that no longer suppresses any taint is
// a `stale-taint-waiver` finding, and malformed lines are `taint-config`
// findings — both unbaselineable.

#ifndef WEBCC_TOOLS_ANALYZE_TAINT_H_
#define WEBCC_TOOLS_ANALYZE_TAINT_H_

#include <string>
#include <vector>

#include "tools/analyze/callgraph.h"
#include "tools/analyze/source.h"
#include "tools/analyze/symbols.h"

namespace webcc::analyze {

struct TaintWaiver {
  std::string function;       // qualified-name suffix, e.g. "webcc::ResolveJobs"
  std::string justification;  // mandatory, free text
  size_t line = 0;            // 1-based line in the waiver file
};

// Parses the waiver list. Malformed lines (no justification) append
// `taint-config` findings against `path` and are skipped.
std::vector<TaintWaiver> ParseTaintWaivers(const std::string& path,
                                           const std::string& contents,
                                           std::vector<Finding>* findings);

// Runs the taint analysis and appends `determinism-taint` and
// `stale-taint-waiver` findings. Deterministic: chains are shortest-first
// with index-order tie-breaks, so the same scan unit always prints the same
// chain. `waivers_path` is used only for reporting stale entries.
void CheckTaint(const SymbolIndex& index, const CallGraph& graph,
                const std::vector<TaintWaiver>& waivers,
                const std::string& waivers_path, std::vector<Finding>* findings);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_TAINT_H_
