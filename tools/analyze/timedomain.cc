#include "tools/analyze/timedomain.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "tools/analyze/callgraph.h"
#include "tools/analyze/cfg.h"
#include "tools/analyze/layers.h"

namespace webcc::analyze {
namespace {

constexpr int kWall = 1;
constexpr int kSim = 2;

bool EndsWithNs(const std::string& t) {
  return t.size() > 3 && t.compare(t.size() - 3, 3, "_ns") == 0;
}

bool IsSimTypeName(const std::string& t) {
  return t == "SimTime" || t == "SimDuration";
}

bool IsGroupingKeyword(const std::string& t) {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "if",     "for",      "while",  "switch",   "return", "sizeof",
      "throw",  "decltype", "typeid", "noexcept", "catch",  "static_assert",
      "alignof"};
  return kw->count(t) != 0;
}

bool IsAllCaps(const std::string& t) {
  bool has_alpha = false;
  for (const char c : t) {
    if (c >= 'a' && c <= 'z') {
      return false;
    }
    if (c >= 'A' && c <= 'Z') {
      has_alpha = true;
    }
  }
  return has_alpha;
}

// Operators that connect two terms into one unit-bearing chain. Assignment
// included: storing wall nanoseconds into a sim variable is exactly the bug.
bool IsChainOperator(const std::string& t) {
  static const std::set<std::string>* ops = new std::set<std::string>{
      "+",  "-",  "*",  "/",  "%",  "<",  ">",  "<=", ">=", "==",
      "!=", "=",  "+=", "-=", "*=", "/=", "<<", ">>", "?",  ":",
      "&&", "||"};
  return ops->count(t) != 0;
}

struct RegionResult {
  int mask = 0;  // kWall | kSim bits seen anywhere in the region
};

class TimeDomainScanner {
 public:
  TimeDomainScanner(const LexedFile& file, const std::vector<const Token*>& sig,
                    const TimeDomainConfig& cfg, const std::set<std::string>& sim_names,
                    std::vector<Finding>* findings)
      : file_(file), sig_(sig), cfg_(cfg), sim_names_(sim_names), findings_(findings) {
    for (const std::string& c : cfg.converters) {
      const size_t sep = c.rfind("::");
      converter_tails_.insert(sep == std::string::npos ? c : c.substr(sep + 2));
    }
  }

  void ScanFunction(const FunctionSymbol& fn) {
    SplitStatements(fn.sig_scan_begin, fn.sig_body_end);
  }

 private:
  const std::string& Text(size_t i) const {
    static const std::string empty;
    return i < sig_.size() ? sig_[i]->text : empty;
  }
  bool IsIdent(size_t i) const {
    return i < sig_.size() && sig_[i]->kind == TokenKind::kIdentifier;
  }
  bool IsPunct(size_t i, const char* p) const {
    return i < sig_.size() && sig_[i]->kind == TokenKind::kPunct && sig_[i]->text == p;
  }
  size_t Line(size_t i) const { return i < sig_.size() ? sig_[i]->line : 0; }

  size_t SkipBalanced(size_t i, const char* open, const char* close) const {
    int depth = 0;
    while (i < sig_.size()) {
      if (IsPunct(i, open)) {
        ++depth;
      } else if (IsPunct(i, close)) {
        if (--depth == 0) {
          return i + 1;
        }
      }
      ++i;
    }
    return i;
  }

  // A '{' opening a statement block (split point), as opposed to a
  // brace-initializer that stays inside its expression.
  bool IsBlockBrace(size_t brace, size_t span_begin) const {
    if (brace == span_begin) {
      return true;
    }
    const size_t p = brace - 1;
    if (IsPunct(p, ")") || IsPunct(p, "]") || IsPunct(p, ";") || IsPunct(p, "{") ||
        IsPunct(p, "}") || IsPunct(p, ":")) {
      return true;
    }
    if (IsIdent(p)) {
      const std::string& t = Text(p);
      return t == "else" || t == "do" || t == "try" || t == "mutable" ||
             t == "noexcept" || t == "const";
    }
    return false;
  }

  void SplitStatements(size_t begin, size_t end) {
    size_t start = begin;
    size_t i = begin;
    while (i < end) {
      if (IsPunct(i, ";")) {
        ScanRegion(start, i);
        start = ++i;
      } else if (IsPunct(i, "{")) {
        if (IsBlockBrace(i, begin)) {
          ScanRegion(start, i);
          start = ++i;
        } else {
          i = std::min(SkipBalanced(i, "{", "}"), end);
        }
      } else if (IsPunct(i, "}")) {
        ScanRegion(start, i);
        start = ++i;
      } else {
        ++i;
      }
    }
    ScanRegion(start, end);
  }

  int Classify(const std::string& t) const {
    if (EndsWithNs(t)) {
      return kWall;
    }
    if (IsSimTypeName(t) || sim_names_.count(t) != 0) {
      return kSim;
    }
    return 0;
  }

  void Flag(size_t line, const std::string& wall_name, const std::string& sim_name) {
    if (!reported_.insert({file_.path, line}).second ||
        FindingWaivedInline(file_, line, "time-domain")) {
      return;
    }
    findings_->push_back(
        Finding{file_.path, line, "time-domain",
                "expression mixes wall-clock nanoseconds ('" + wall_name +
                    "') with simulated time ('" + sim_name +
                    "'); convert through a sanctioned converter "
                    "(tools/analyze/time_domains.txt) instead"});
  }

  void FlagApiArg(size_t line, const std::string& api, bool wall_into_sim,
                  const std::string& term) {
    if (!reported_.insert({file_.path, line}).second ||
        FindingWaivedInline(file_, line, "time-domain")) {
      return;
    }
    findings_->push_back(
        Finding{file_.path, line, "time-domain",
                wall_into_sim
                    ? "wall-clock nanoseconds ('" + term + "') passed to sim-domain "
                          "API '" + api + "'; convert through a sanctioned converter first"
                    : "simulated time ('" + term + "') passed to wall-domain API '" +
                          api + "'; convert to nanoseconds through a sanctioned "
                          "converter first"});
  }

  // Scans the comma-separated argument regions in [from, to). Each argument
  // is an independent region; `api` non-null applies the sim-api/wall-api
  // argument checks. Returns the union of argument masks.
  int ScanArgs(size_t from, size_t to, const std::string* api, bool api_is_sim) {
    int mask = 0;
    size_t start = from;
    size_t i = from;
    while (i <= to) {
      const bool at_end = i == to;
      if (at_end || (IsPunct(i, ",") && Depth0(from, i))) {
        if (start < i) {
          const RegionResult r = ScanRegion(start, i);
          mask |= r.mask;
          if (api != nullptr) {
            if (api_is_sim && (r.mask & kWall) != 0) {
              FlagApiArg(Line(start), *api, true, FirstTermOf(start, i, kWall));
            }
            if (!api_is_sim && (r.mask & kSim) != 0) {
              FlagApiArg(Line(start), *api, false, FirstTermOf(start, i, kSim));
            }
          }
        }
        start = i + 1;
      }
      if (at_end) {
        break;
      }
      if (IsPunct(i, "(")) {
        i = std::min(SkipBalanced(i, "(", ")"), to);
      } else if (IsPunct(i, "[")) {
        i = std::min(SkipBalanced(i, "[", "]"), to);
      } else if (IsPunct(i, "{")) {
        i = std::min(SkipBalanced(i, "{", "}"), to);
      } else {
        ++i;
      }
    }
    return mask;
  }

  // True when `i` sits at bracket depth zero relative to `from` (cheap check
  // used only for argument commas; ScanArgs skips nested groups itself, so
  // this is always true there — kept for clarity).
  static bool Depth0(size_t, size_t) { return true; }

  // First identifier in [from, to) classified as `domain`, for messages.
  std::string FirstTermOf(size_t from, size_t to, int domain) const {
    for (size_t i = from; i < to; ++i) {
      if (IsIdent(i) && Classify(Text(i)) == domain) {
        return Text(i);
      }
    }
    return domain == kWall ? "wall-nanos value" : "sim-time value";
  }

  // Scans one expression region, flagging operator chains that mix domains.
  RegionResult ScanRegion(size_t from, size_t to) {
    RegionResult result;
    int seen = 0;   // merged chain masks at this region's top level
    int chain = 0;  // the current postfix/primary chain
    std::string wall_name = "wall-nanos value";
    std::string sim_name = "sim-time value";
    size_t i = from;

    const auto merge_chain = [&](size_t line_at) {
      seen |= chain;
      result.mask |= chain;
      chain = 0;
      if ((seen & kWall) != 0 && (seen & kSim) != 0) {
        Flag(line_at, wall_name, sim_name);
        seen = 0;
      }
    };

    while (i < to) {
      if (IsIdent(i)) {
        const std::string& t = Text(i);
        if (IsPunct(i + 1, "(")) {
          const size_t close = std::min(SkipBalanced(i + 1, "(", ")"), to);
          const size_t args_from = i + 2;
          const size_t args_to = close > 0 ? close - 1 : args_from;
          if (converter_tails_.count(t) != 0) {
            // Sanctioned converter: args exempt from every check.
            chain = 0;
            i = close;
            continue;
          }
          if (IsGroupingKeyword(t)) {
            // `if (...)`, `return (...)`: the parens group the same chain.
            const int mask = ScanArgs(args_from, args_to, nullptr, false);
            chain |= mask;
            if ((mask & kWall) != 0) {
              wall_name = FirstTermOf(args_from, args_to, kWall);
            }
            if ((mask & kSim) != 0) {
              sim_name = FirstTermOf(args_from, args_to, kSim);
            }
            i = close;
            continue;
          }
          if (IsAllCaps(t)) {
            // Macro call: check args independently, contribute nothing.
            ScanArgs(args_from, args_to, nullptr, false);
            i = close;
            continue;
          }
          const bool sim_api = cfg_.sim_apis.count(t) != 0;
          const bool wall_api = cfg_.wall_apis.count(t) != 0;
          const std::string* api = sim_api || wall_api ? &t : nullptr;
          const int argmask = ScanArgs(args_from, args_to, api, sim_api);
          if (cfg_.escapes.count(t) != 0) {
            chain = 0;  // `.seconds()`, `.count()`: the unit is stripped
          } else if (cfg_.wall_fns.count(t) != 0) {
            chain |= kWall;
            wall_name = t;
          } else if (cfg_.sim_fns.count(t) != 0) {
            chain |= kSim;
            sim_name = t;
          } else if (argmask == kWall || argmask == kSim) {
            // Unknown call: a single-domain argument list carries through
            // (std::max over two wall values is still wall).
            chain |= argmask;
          }
          i = close;
          continue;
        }
        const int d = Classify(t);
        if (d == kWall) {
          chain |= kWall;
          wall_name = t;
        } else if (d == kSim) {
          chain |= kSim;
          sim_name = t;
        }
        ++i;
        continue;
      }
      if (IsPunct(i, "(")) {
        // Grouping parens: same chain.
        const size_t close = std::min(SkipBalanced(i, "(", ")"), to);
        const int mask = ScanArgs(i + 1, close > 0 ? close - 1 : i + 1, nullptr, false);
        chain |= mask;
        if ((mask & kWall) != 0) {
          wall_name = FirstTermOf(i + 1, close, kWall);
        }
        if ((mask & kSim) != 0) {
          sim_name = FirstTermOf(i + 1, close, kSim);
        }
        i = close;
        continue;
      }
      if (IsPunct(i, "{")) {
        // Brace-init: like an unknown call over its arguments.
        const size_t close = std::min(SkipBalanced(i, "{", "}"), to);
        const int mask = ScanArgs(i + 1, close > 0 ? close - 1 : i + 1, nullptr, false);
        if (mask == kWall || mask == kSim) {
          chain |= mask;
          if (mask == kWall) {
            wall_name = FirstTermOf(i + 1, close, kWall);
          } else {
            sim_name = FirstTermOf(i + 1, close, kSim);
          }
        }
        i = close;
        continue;
      }
      if (IsPunct(i, "[")) {
        // Subscript: independent region, chain continues.
        const size_t close = std::min(SkipBalanced(i, "[", "]"), to);
        ScanRegion(i + 1, close > 0 ? close - 1 : i + 1);
        i = close;
        continue;
      }
      if (IsPunct(i, ",") || IsPunct(i, ";")) {
        // Independent sub-expressions: merge without cross-flagging.
        result.mask |= seen | chain;
        seen = 0;
        chain = 0;
        ++i;
        continue;
      }
      if (sig_[i]->kind == TokenKind::kPunct && IsChainOperator(Text(i))) {
        merge_chain(Line(i));
        ++i;
        continue;
      }
      ++i;  // '.', '->', '::', unary operators, stray closers, literals
    }
    merge_chain(to > from ? Line(to - 1) : 0);
    return result;
  }

  const LexedFile& file_;
  const std::vector<const Token*>& sig_;
  const TimeDomainConfig& cfg_;
  const std::set<std::string>& sim_names_;
  std::vector<Finding>* findings_;
  std::set<std::string> converter_tails_;
  std::set<std::pair<std::string, size_t>> reported_;
};

// Tree-wide census of identifiers declared with SimTime/SimDuration type:
// `SimTime name;`, `SimDuration name = ...`, `SimTime name WEBCC_GUARDED_BY`.
// Function parameters are deliberately excluded (name followed by ',' or
// ')'): a parameter name like `delay` in one header would poison every
// same-named wall-clock local in the tree, and a parameter's unit is
// enforced at its call sites by the declaring function's own expressions.
std::set<std::string> CollectSimNames(const std::vector<const LexedFile*>& files) {
  std::set<std::string> names;
  for (const LexedFile* file : files) {
    const std::vector<Token>& toks = file->tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier || !IsSimTypeName(toks[i].text)) {
        continue;
      }
      size_t j = i + 1;
      while (j < toks.size() && toks[j].kind == TokenKind::kPunct &&
             (toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "&&")) {
        ++j;
      }
      if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) {
        continue;
      }
      const size_t after = j + 1;
      if (after < toks.size() &&
          (toks[after].kind == TokenKind::kIdentifier ||
           (toks[after].kind == TokenKind::kPunct &&
            (toks[after].text == ";" || toks[after].text == "=" ||
             toks[after].text == "{")))) {
        names.insert(toks[j].text);
      }
    }
  }
  return names;
}

}  // namespace

TimeDomainConfig ParseTimeDomainConfig(const std::string& path,
                                       const std::string& contents,
                                       std::vector<Finding>* findings) {
  TimeDomainConfig config;
  std::istringstream in(contents);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream fields(line);
    std::string directive;
    std::string name;
    std::string extra;
    if (!(fields >> directive)) {
      continue;  // blank
    }
    if (!(fields >> name) || (fields >> extra)) {
      findings->push_back(Finding{path, line_no, "time-domain-config",
                                  "expected exactly '<directive> <name>', got '" +
                                      line + "'"});
      continue;
    }
    if (directive == "wall-fn") {
      config.wall_fns.insert(name);
    } else if (directive == "sim-fn") {
      config.sim_fns.insert(name);
    } else if (directive == "sim-api") {
      config.sim_apis.insert(name);
    } else if (directive == "wall-api") {
      config.wall_apis.insert(name);
    } else if (directive == "escape") {
      config.escapes.insert(name);
    } else if (directive == "converter") {
      config.converters.push_back(name);
    } else {
      findings->push_back(Finding{path, line_no, "time-domain-config",
                                  "unknown directive '" + directive +
                                      "' (expected wall-fn, sim-fn, sim-api, "
                                      "wall-api, escape, or converter)"});
    }
  }
  std::sort(config.converters.begin(), config.converters.end());
  return config;
}

void CheckTimeDomains(const std::vector<LexedFile>& files, const SymbolIndex& index,
                      const TimeDomainConfig& config, std::vector<Finding>* findings) {
  std::vector<const LexedFile*> ordered;
  ordered.reserve(files.size());
  for (const LexedFile& f : files) {
    ordered.push_back(&f);
  }
  std::sort(ordered.begin(), ordered.end(), [](const LexedFile* a, const LexedFile* b) {
    const std::string ra = RepoRelative(a->path);
    const std::string rb = RepoRelative(b->path);
    if (ra != rb) return ra < rb;
    return a->path < b->path;
  });
  const std::set<std::string> sim_names = CollectSimNames(ordered);

  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile* f : ordered) {
    by_path[f->path] = f;
  }
  // Group definitions by file, in the same deterministic file order.
  for (const LexedFile* file : ordered) {
    const std::vector<const Token*> sig = SignificantTokens(*file);
    TimeDomainScanner scanner(*file, sig, config, sim_names, findings);
    for (const FunctionSymbol& fn : index.functions) {
      if (!fn.is_definition || fn.file != file->path ||
          fn.sig_body_end <= fn.sig_body_open) {
        continue;
      }
      bool converter = false;
      for (const std::string& c : config.converters) {
        if (QualifiedSuffixMatches(fn.qualified_name, c)) {
          converter = true;
          break;
        }
      }
      if (!converter) {
        scanner.ScanFunction(fn);
      }
    }
  }
}

}  // namespace webcc::analyze
