// Pass 5 of webcc-analyze, stage 3: wall/sim time-domain checking.
//
// The tree has two time units that must never meet in arithmetic: simulated
// time (SimTime/SimDuration, integer seconds — the cache's domain) and raw
// wall-clock nanoseconds (int64_t, `_ns`-suffixed — the serve frontend's
// domain). The paper's consistency math (TTLs, Alex thresholds,
// invalidation timing) lives entirely in the first; PR 9's latency and
// deadline plumbing lives entirely in the second. This pass treats them as
// distinct units and flags any expression or call argument that mixes them
// outside a sanctioned converter.
//
// Classification:
//   * an identifier ending in `_ns` is WALL;
//   * an identifier declared anywhere in the scan unit with type
//     SimTime/SimDuration (a tree-wide census, like the unordered-container
//     census pass 4 keeps) is SIM, as are the type names themselves;
//   * calls classify by the config: `wall-fn` names (NowNanos, ...) return
//     WALL, `sim-fn` names (Seconds, Epoch, ...) return SIM, `escape`
//     names (.seconds(), .count()) return a unit-free number, `converter`
//     qualified names (ServeFrontend::SimTimeFor) are the sanctioned
//     bridges — their bodies and call sites are exempt; an unclassified
//     call inherits the single domain of its arguments, if any.
//
// Checks (rule `time-domain`):
//   * an operator chain containing both WALL and SIM terms;
//   * a WALL argument to a `sim-api` call (RunUntil, ScheduleAt, ...);
//   * a SIM argument to a `wall-api` call (SleepNanos).
//
// The config file (tools/analyze/time_domains.txt) is one directive per
// line — `wall-fn N`, `sim-fn N`, `sim-api N`, `wall-api N`, `escape N`,
// `converter Qualified::Name` — with '#' comments; malformed lines are
// `time-domain-config` findings (unbaselineable, like every config rule).
// Findings honor the pass-1 inline waivers (`webcc-lint: allow(...)`).

#ifndef WEBCC_TOOLS_ANALYZE_TIMEDOMAIN_H_
#define WEBCC_TOOLS_ANALYZE_TIMEDOMAIN_H_

#include <set>
#include <string>
#include <vector>

#include "tools/analyze/lexer.h"
#include "tools/analyze/source.h"
#include "tools/analyze/symbols.h"

namespace webcc::analyze {

struct TimeDomainConfig {
  std::set<std::string> wall_fns;   // calls producing wall nanoseconds
  std::set<std::string> sim_fns;    // calls producing SimTime/SimDuration
  std::set<std::string> sim_apis;   // calls whose args must not be WALL
  std::set<std::string> wall_apis;  // calls whose args must not be SIM
  std::set<std::string> escapes;    // calls stripping the unit (.seconds())
  std::vector<std::string> converters;  // qualified-name suffixes, sanctioned
};

// Parses the directive file. Malformed lines append `time-domain-config`
// findings against `path` and are skipped.
TimeDomainConfig ParseTimeDomainConfig(const std::string& path,
                                       const std::string& contents,
                                       std::vector<Finding>* findings);

// Runs the check over every function definition in the index. Deterministic
// for a given scan unit at any --jobs value.
void CheckTimeDomains(const std::vector<LexedFile>& files, const SymbolIndex& index,
                      const TimeDomainConfig& config, std::vector<Finding>* findings);

}  // namespace webcc::analyze

#endif  // WEBCC_TOOLS_ANALYZE_TIMEDOMAIN_H_
