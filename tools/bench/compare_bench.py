#!/usr/bin/env python3
"""Compare a fresh micro-benchmark JSON-lines file against a checked-in baseline.

Both inputs are the JSON-lines stream the bench binaries append to
$WEBCC_BENCH_JSON / --bench-json: one object per line with at least
"benchmark" and "ns_per_op" keys (allocs_per_op / bytes_per_op optional).

Emits a GitHub-flavoured markdown table to stdout. Intended as an advisory
step-summary in CI — shared-runner timings are too noisy to gate on — so the
exit code is always 0 unless the inputs are unreadable. Ratios beyond
--warn-ratio are flagged with a warning marker, nothing more.

Usage:
  compare_bench.py --baseline bench/baselines/bm_proxycache.json \
                   --current BENCH_cache.json [--warn-ratio 1.25]
"""

import argparse
import json
import sys


def load_jsonl(path):
    """Parse a JSON-lines bench file into {benchmark: record}, last line wins."""
    records = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"note: {path}:{lineno}: skipping unparsable line ({e})",
                          file=sys.stderr)
                    continue
                name = record.get("benchmark")
                if name and "ns_per_op" in record:
                    records[name] = record
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return records


def fmt_ns(value):
    return f"{value:,.1f}"


def fmt_allocs(value):
    if value is None:
        return "—"
    # Replacement-new counters divide a handful of warm-up allocations by the
    # iteration count, so treat anything under half an alloc per op as zero.
    return "0" if value < 0.5 else f"{value:,.2f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in JSON-lines baseline")
    parser.add_argument("--current", required=True,
                        help="freshly measured JSON-lines file")
    parser.add_argument("--warn-ratio", type=float, default=1.25,
                        help="flag benchmarks whose ns/op exceeds baseline by this "
                             "factor (default: 1.25)")
    args = parser.parse_args()

    baseline = load_jsonl(args.baseline)
    current = load_jsonl(args.current)

    print("| benchmark | baseline ns/op | current ns/op | ratio | allocs/op | |")
    print("|---|---:|---:|---:|---:|---|")
    flagged = 0
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            print(f"| {name} | — | {fmt_ns(cur['ns_per_op'])} | new | "
                  f"{fmt_allocs(cur.get('allocs_per_op'))} | |")
            continue
        if cur is None:
            print(f"| {name} | {fmt_ns(base['ns_per_op'])} | — | missing | — | ⚠️ |")
            flagged += 1
            continue
        ratio = cur["ns_per_op"] / base["ns_per_op"] if base["ns_per_op"] > 0 else float("inf")
        warn = "⚠️" if ratio > args.warn_ratio else ""
        flagged += bool(warn)
        print(f"| {name} | {fmt_ns(base['ns_per_op'])} | {fmt_ns(cur['ns_per_op'])} | "
              f"{ratio:.2f}× | {fmt_allocs(cur.get('allocs_per_op'))} | {warn} |")

    print()
    if flagged:
        print(f"{flagged} benchmark(s) flagged beyond the {args.warn_ratio:.2f}× "
              "warn threshold (advisory only — shared-runner noise is expected).")
    else:
        print("All benchmarks within the warn threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
