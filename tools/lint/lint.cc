#include "tools/lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace webcc::lint {
namespace {

namespace fs = std::filesystem;

// --- Source preprocessing -------------------------------------------------
//
// Rules match against a "stripped" copy of each line in which comments,
// string literals, and char literals are blanked out (replaced by spaces, so
// column positions survive). Suppression comments are read from the raw line.

struct PreparedFile {
  const SourceFile* source = nullptr;
  std::vector<std::string> raw_lines;
  std::vector<std::string> stripped_lines;
  // Rules waived for the whole file via `// webcc-lint: allow-file(<rule>)`.
  std::set<std::string> file_allowed_rules;
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    lines.push_back(current);
  }
  return lines;
}

// Blanks comments and literals. A deliberately small state machine: raw
// string literals are treated as ordinary strings, which is fine for a lint
// that only needs to avoid false positives inside text.
std::vector<std::string> StripLines(const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string stripped(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"') {
            state = State::kString;
            stripped[i] = '"';
          } else if (c == '\'') {
            state = State::kChar;
            stripped[i] = '\'';
          } else {
            stripped[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            stripped[i] = '"';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            stripped[i] = '\'';
          }
          break;
      }
    }
    // An unterminated string at end of line is almost certainly a macro
    // continuation; reset so one odd line cannot blank the rest of the file.
    if (state == State::kString || state == State::kChar) {
      state = State::kCode;
    }
    out.push_back(std::move(stripped));
  }
  return out;
}

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

bool LineAllows(const std::string& raw_line, const std::string& rule) {
  const std::string marker = "webcc-lint: allow(" + rule + ")";
  return raw_line.find(marker) != std::string::npos;
}

// Collects `webcc-lint: allow-file(<rule>)` directives — the scoped waiver
// for files whose whole purpose conflicts with one rule (e.g. the bench
// timing harness measures host wall time). The directive names exactly one
// rule per occurrence, so a file opting out of everything stays impossible.
std::set<std::string> CollectFileAllows(const std::vector<std::string>& raw_lines) {
  static const std::regex* directive =
      new std::regex(R"(webcc-lint:\s*allow-file\(([a-z-]+)\))");
  std::set<std::string> rules;
  for (const std::string& line : raw_lines) {
    for (std::sregex_iterator it(line.begin(), line.end(), *directive), end; it != end;
         ++it) {
      rules.insert((*it)[1].str());
    }
  }
  return rules;
}

// --- Rules ----------------------------------------------------------------

struct Rule {
  std::string name;
  std::regex pattern;
  std::string message;
  // Returns true if the rule applies to this file at all.
  bool (*applies)(const std::string& path);
  // If set, a match whose text contains this substring is not a violation
  // (e.g. `requests_per_second` is a rate, not a time span).
  const char* exempt_match_substring = nullptr;
};

bool AppliesEverywhere(const std::string&) { return true; }

bool AppliesOutsideRng(const std::string& path) { return !PathContains(path, "util/rng."); }

bool AppliesOutsideSimTime(const std::string& path) {
  return !PathContains(path, "util/sim_time.");
}

bool AppliesToHotPaths(const std::string& path) {
  return PathContains(path, "sim/") || PathContains(path, "cache/");
}

bool AppliesToStatsCode(const std::string& path) {
  return PathContains(path, "stats") || PathContains(path, "metrics");
}

bool AppliesOutsideBench(const std::string& path) { return !PathContains(path, "bench/"); }

// The fault-tolerant upstream/invalidation paths live in cache/ and origin/.
bool AppliesToUpstreamCode(const std::string& path) {
  return PathContains(path, "cache/") || PathContains(path, "origin/");
}

// The chaos harness's oracle reports violations by throwing; swallowing one
// anywhere in src/chaos/ would turn a failed invariant into a silent pass.
bool AppliesToChaosCode(const std::string& path) { return PathContains(path, "chaos/"); }

const std::vector<Rule>& Rules() {
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {"banned-random",
       std::regex(R"(\b(rand|srand|random|drand48|lrand48|mrand48)\s*\(|)"
                  R"(std::(mt19937(_64)?|minstd_rand0?|random_device|default_random_engine|)"
                  R"(knuth_b|ranlux\w+|uniform_int_distribution|uniform_real_distribution|)"
                  R"(normal_distribution|bernoulli_distribution|discrete_distribution))"),
       "randomness outside src/util/rng.* breaks seed-exact reproducibility; draw from "
       "webcc::Rng instead",
       AppliesOutsideRng},
      {"banned-wallclock",
       std::regex(R"(\bstd::time\s*\(|\btime\s*\(\s*(NULL|nullptr|0)\s*\)|\bgettimeofday\s*\(|)"
                  R"(\bclock_gettime\s*\(|\bclock\s*\(\s*\)|)"
                  R"(std::chrono::(system_clock|steady_clock|high_resolution_clock))"),
       "simulated code must read SimTime, never the host clock",
       AppliesEverywhere},
      {"raw-seconds-param",
       std::regex(R"(\b(int|int32_t|int64_t|uint32_t|uint64_t|long|size_t|double|float)\s+)"
                  R"(\w*sec(ond)?s?\w*\s*[,)])"),
       "spans of simulated time take SimDuration, not raw numeric seconds",
       AppliesOutsideSimTime,
       "per_sec"},
      {"float-equality",
       std::regex(R"([=!]=\s*[-+]?\d+\.\d*|\d+\.\d*\s*[=!]=|)"
                  R"(\.(mean|variance|stddev)\(\)\s*[=!]=|[=!]=\s*\w+\.(mean|variance|stddev)\(\))"),
       "exact ==/!= on accumulated doubles is a latent flake; compare with a tolerance",
       AppliesToStatsCode},
      {"bare-assert",
       std::regex(R"(\bassert\s*\()"),
       "use WEBCC_CHECK (src/util/check.h): always-on and prints operand values",
       AppliesOutsideBench},
      {"unbounded-retry",
       std::regex(R"(\bwhile\s*\(\s*(true|1)\s*\)|\bfor\s*\(\s*;\s*;\s*\))"),
       "retry loops in cache/origin code must be bounded by RetryPolicy.max_attempts; an "
       "unreachable origin would spin this forever",
       AppliesToUpstreamCode},
      // A statement that *begins* with one of the fallible upstream calls
      // discards its result. Conditions, assignments, and returns all prefix
      // the call with something else and are not matched.
      {"ignored-upstream-error",
       std::regex(R"(^\s*[\w.>-]*(FetchFull|FetchIfModified|HandleGet|HandleConditionalGet|)"
                  R"(DeliverInvalidation)\s*\()"),
       "this upstream call reports failure via its return value; dropping it silently "
       "swallows a faulted exchange — check ok/attempts or cast through a named variable",
       AppliesToUpstreamCode},
      // Any catch in chaos code can swallow an OracleViolation (including
      // catch(...) and catch by base), turning a failed consistency invariant
      // into a silent pass. The single sanctioned conversion site is
      // ProbeTrial in src/chaos/shrinker.cc, which carries the allow marker.
      {"oracle-bypass",
       std::regex(R"(\bcatch\s*\()"),
       "catching in src/chaos/ can swallow an OracleViolation; violations must propagate "
       "to ProbeTrial, the one sanctioned catch site",
       AppliesToChaosCode},
  };
  return *rules;
}

// Single-line declarations of unordered containers, e.g.
//   std::unordered_map<ObjectId, Slot> entries_;
const std::regex& UnorderedDeclPattern() {
  static const std::regex* re =
      new std::regex(R"(\bstd::unordered_(map|set|multimap|multiset)<.*>\s+(\w+)\s*[;={])");
  return *re;
}

// Range-for over a name, and iterator-walk via name.begin()/cbegin().
const std::regex& RangeForPattern() {
  static const std::regex* re = new std::regex(R"(\bfor\s*\([^;)]*:\s*(\w+)\s*\))");
  return *re;
}
const std::regex& BeginWalkPattern() {
  static const std::regex* re = new std::regex(R"(=\s*(\w+)\.c?begin\s*\()");
  return *re;
}

void LintFileRules(const PreparedFile& file, std::vector<Violation>* out) {
  const std::string& path = file.source->path;
  for (const Rule& rule : Rules()) {
    if (!rule.applies(path) || file.file_allowed_rules.count(rule.name) != 0) {
      continue;
    }
    for (size_t i = 0; i < file.stripped_lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(file.stripped_lines[i], m, rule.pattern)) {
        continue;
      }
      if (rule.exempt_match_substring != nullptr &&
          m.str().find(rule.exempt_match_substring) != std::string::npos) {
        continue;
      }
      if (LineAllows(file.raw_lines[i], rule.name)) {
        continue;
      }
      out->push_back(Violation{path, i + 1, rule.name, rule.message});
    }
  }
}

// The unordered-iteration rule needs two passes over the whole scan unit:
// containers are typically declared in a header and iterated in the matching
// .cc file, so names are collected globally first.
void LintUnorderedIteration(const std::vector<PreparedFile>& files, std::vector<Violation>* out) {
  std::set<std::string> unordered_names;
  for (const PreparedFile& file : files) {
    for (const std::string& line : file.stripped_lines) {
      for (std::sregex_iterator it(line.begin(), line.end(), UnorderedDeclPattern()), end;
           it != end; ++it) {
        unordered_names.insert((*it)[2].str());
      }
    }
  }
  if (unordered_names.empty()) {
    return;
  }
  const std::string rule = "unordered-iteration";
  for (const PreparedFile& file : files) {
    if (!AppliesToHotPaths(file.source->path) || file.file_allowed_rules.count(rule) != 0) {
      continue;
    }
    for (size_t i = 0; i < file.stripped_lines.size(); ++i) {
      const std::string& line = file.stripped_lines[i];
      std::string hit;
      std::smatch m;
      if (std::regex_search(line, m, RangeForPattern()) && unordered_names.count(m[1].str())) {
        hit = m[1].str();
      } else if (std::regex_search(line, m, BeginWalkPattern()) &&
                 unordered_names.count(m[1].str())) {
        hit = m[1].str();
      }
      if (hit.empty() || LineAllows(file.raw_lines[i], rule)) {
        continue;
      }
      out->push_back(Violation{
          file.source->path, i + 1, rule,
          "iterating '" + hit + "' (std::unordered_*) in a sim/cache hot path feeds "
          "hash-order into event order; iterate a sorted view or keep a side list"});
    }
  }
}

}  // namespace

std::vector<Violation> LintSources(const std::vector<SourceFile>& sources) {
  std::vector<PreparedFile> prepared;
  prepared.reserve(sources.size());
  for (const SourceFile& source : sources) {
    PreparedFile p;
    p.source = &source;
    p.raw_lines = SplitLines(source.contents);
    p.stripped_lines = StripLines(p.raw_lines);
    p.file_allowed_rules = CollectFileAllows(p.raw_lines);
    prepared.push_back(std::move(p));
  }
  std::vector<Violation> violations;
  for (const PreparedFile& file : prepared) {
    LintFileRules(file, &violations);
  }
  LintUnorderedIteration(prepared, &violations);
  std::sort(violations.begin(), violations.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return violations;
}

std::vector<Violation> LintPaths(const std::vector<std::string>& roots) {
  std::vector<std::string> paths;
  std::vector<Violation> violations;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (!entry.is_regular_file()) {
          continue;
        }
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
          paths.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(fs::path(root).generic_string());
    } else {
      violations.push_back(Violation{root, 0, "lint-io", "path does not exist"});
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> sources;
  sources.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      violations.push_back(Violation{path, 0, "lint-io", "could not read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.push_back(SourceFile{path, buffer.str()});
  }
  std::vector<Violation> scanned = LintSources(sources);
  violations.insert(violations.end(), scanned.begin(), scanned.end());
  return violations;
}

void PrintViolations(const std::vector<Violation>& violations, std::ostream& out) {
  for (const Violation& v : violations) {
    out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
  }
}

}  // namespace webcc::lint
