// webcc-lint is now a thin compatibility wrapper over the webcc-analyze
// engine (tools/analyze/). The public API, the output format, the waiver
// syntax, and the rule names are unchanged; the regex line-scanner that used
// to live here was replaced by the token-level pass-1 rules, which match the
// old engine on the fixture corpus while no longer false-positing inside
// raw strings and multi-line literals. The layer and baseline passes are
// webcc-analyze-only — this entry point runs pass 1 alone, exactly the
// contract `ctest -R lint.tree` has always had.

#include "tools/lint/lint.h"

#include <ostream>

#include "tools/analyze/analyze.h"

namespace webcc::lint {
namespace {

Violation FromFinding(const analyze::Finding& finding) {
  Violation v;
  v.file = finding.file;
  v.line = finding.line;
  // The engine reports its own I/O failures under its own name.
  v.rule = finding.rule == "analyze-io" ? "lint-io" : finding.rule;
  v.message = finding.message;
  return v;
}

std::vector<Violation> FromFindings(const std::vector<analyze::Finding>& findings) {
  std::vector<Violation> out;
  out.reserve(findings.size());
  for (const analyze::Finding& f : findings) {
    out.push_back(FromFinding(f));
  }
  return out;
}

}  // namespace

std::vector<Violation> LintSources(const std::vector<SourceFile>& sources) {
  std::vector<analyze::SourceFile> converted;
  converted.reserve(sources.size());
  for (const SourceFile& s : sources) {
    converted.push_back(analyze::SourceFile{s.path, s.contents});
  }
  return FromFindings(analyze::AnalyzeSources(converted, analyze::AnalyzeConfig{}));
}

std::vector<Violation> LintPaths(const std::vector<std::string>& roots) {
  return FromFindings(analyze::AnalyzePaths(roots, analyze::AnalyzeOptions{}));
}

void PrintViolations(const std::vector<Violation>& violations, std::ostream& out) {
  for (const Violation& v : violations) {
    out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
  }
}

}  // namespace webcc::lint
