// webcc_lint: a repo-specific determinism and correctness lint.
//
// The simulators' results are only comparable across runs and machines if
// nothing in src/ or bench/ injects hidden nondeterminism. This lint is a
// deliberately dumb regex/token scanner — no libclang dependency, so it runs
// anywhere the repo builds — that rejects the hazard patterns we have agreed
// to keep out of the tree:
//
//   banned-random       rand()/std::mt19937/std::random_device &c. anywhere
//                       but src/util/rng.* — all randomness flows through Rng
//                       so a 64-bit seed reproduces a run exactly.
//   banned-wallclock    std::time/std::chrono clocks/gettimeofday — simulated
//                       code reads SimTime, never the host clock.
//   unordered-iteration range-for over a std::unordered_{map,set} declared in
//                       src/sim or src/cache — hash-order iteration feeding
//                       event order makes runs irreproducible across
//                       libstdc++ versions.
//   raw-seconds-param   function parameters like `int64_t timeout_seconds` —
//                       spans of simulated time take SimDuration so units
//                       can't be confused.
//   float-equality      ==/!= against floating-point values in stats code
//                       (src/util/stats.*, src/core/metrics.*) — exact
//                       equality on accumulated doubles is a latent flake.
//   bare-assert         assert() in src/ — invariants use WEBCC_CHECK so they
//                       survive NDEBUG and print their operands.
//
// A violation on one line can be waived with an inline comment naming the
// rule: `// webcc-lint: allow(banned-random) <why>`. A file whose whole
// purpose conflicts with exactly one rule (the bench timing harness reads
// the host clock; a thread pool's internals may need platform facilities)
// can waive that rule file-wide with `// webcc-lint: allow-file(<rule>)
// <why>` — one named rule per directive, so a blanket opt-out stays
// impossible. Rule-specific allowlists for the two legitimate homes
// (src/util/rng.* for randomness, the SimTime / SimDuration constructors for
// raw seconds) are built in.

#ifndef WEBCC_TOOLS_LINT_LINT_H_
#define WEBCC_TOOLS_LINT_LINT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace webcc::lint {

struct Violation {
  std::string file;  // path as given to the scanner
  size_t line = 0;   // 1-based
  std::string rule;
  std::string message;
};

// One file's worth of already-read source, with a repo-relative path used for
// allowlist matching (separators normalized to '/').
struct SourceFile {
  std::string path;
  std::string contents;
};

// Scans the given sources as one unit. The files are scanned together so that
// the unordered-iteration rule can match a container declared in a header
// against a loop in the matching .cc file.
std::vector<Violation> LintSources(const std::vector<SourceFile>& sources);

// Loads every .h/.cc/.cpp under `roots` (files are accepted verbatim,
// directories are walked recursively) and lints them. Paths that do not exist
// produce a `lint-io` violation rather than a crash, so CI fails loudly on a
// typo'd path. Files are scanned in sorted path order for stable output.
std::vector<Violation> LintPaths(const std::vector<std::string>& roots);

// Renders `file:line: [rule] message`, one per line.
void PrintViolations(const std::vector<Violation>& violations, std::ostream& out);

}  // namespace webcc::lint

#endif  // WEBCC_TOOLS_LINT_LINT_H_
