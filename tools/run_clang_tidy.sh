#!/usr/bin/env bash
# Runs clang-tidy over the webcc sources using the CMake compile database.
#
#   tools/run_clang_tidy.sh                 # lint src/ (what CI runs)
#   tools/run_clang_tidy.sh src/cache       # one subtree
#   tools/run_clang_tidy.sh --fix src/util  # apply suggested fixes in place
#
# Environment:
#   BUILD_DIR   build directory with compile_commands.json (default: build)
#   CLANG_TIDY  clang-tidy binary (default: clang-tidy)
#   JOBS        parallelism (default: nproc)
#
# The script (re)configures BUILD_DIR with CMAKE_EXPORT_COMPILE_COMMANDS=ON if
# the compile database is missing, so it works from a fresh checkout.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="${JOBS:-$(nproc)}"

FIX_ARGS=()
TARGETS=()
for arg in "$@"; do
  case "$arg" in
    --fix) FIX_ARGS=(--fix --fix-errors) ;;
    -h|--help)
      sed -n '2,14p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) TARGETS+=("$arg") ;;
  esac
done
if [ "${#TARGETS[@]}" -eq 0 ]; then
  TARGETS=(src)
fi

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: '$CLANG_TIDY' not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Only translation units: headers are covered through HeaderFilterRegex.
mapfile -t FILES < <(find "${TARGETS[@]}" -name '*.cc' -o -name '*.cpp' | sort)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy.sh: no sources under: ${TARGETS[*]}" >&2
  exit 2
fi

echo "clang-tidy ($("$CLANG_TIDY" --version | head -n1)) over ${#FILES[@]} files, $JOBS jobs"
printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -n 1 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "${FIX_ARGS[@]}"
echo "clang-tidy: clean"
