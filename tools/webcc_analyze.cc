// CLI entry point for webcc-analyze, the multi-pass static analyzer.
// Exit status 0 = clean, 1 = findings, 2 = usage error.
//
//   webcc-analyze src bench tools --layers=tools/analyze/layers.txt
//       --baseline=tools/analyze/baseline.txt
//       --taint-waivers=tools/analyze/taint_waivers.txt
//       --time-domains=tools/analyze/time_domains.txt
//       --dead-waivers=tools/analyze/dead_waivers.txt
//       --sarif=analyze.sarif                  # what CI and lint.analyze.tree run
//   webcc-analyze src/cache/foo.cc             # rules only, single file
//
// Without --layers the layer pass is skipped; without --baseline every
// finding is fatal. --symbols (implied by --taint-waivers) enables pass 4:
// symbol index, call-graph determinism taint, and lock discipline. --flow
// (implied by --time-domains) enables pass 5: per-function CFGs,
// flow-sensitive lock discipline, the lock-order graph, blocking-under-lock
// chains, and wall/sim time-domain checking. --dead-waivers=FILE gates the
// dead-symbol census against a waiver file (stale entries fail);
// --dead-symbols prints the advisory report to stdout. --lock-graph prints
// the acquisition-graph edges to stdout (never gating). --graph-cache=FILE
// memoizes include extraction across runs (CI persists the file keyed on
// the tree hash; the cache self-invalidates when any analyzer config file
// changes). --jobs=N lexes in parallel; output is byte-identical for
// every N.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/analyze/sarif.h"

namespace {

bool TakeFlagValue(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  webcc::analyze::AnalyzeOptions options;
  std::string sarif_path;
  std::string jobs_value;
  bool print_dead_symbols = false;
  bool print_lock_graph = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: webcc-analyze <file-or-dir>... [--layers=FILE] [--baseline=FILE]\n"
             "                     [--symbols] [--taint-waivers=FILE] [--dead-symbols]\n"
             "                     [--flow] [--time-domains=FILE] [--dead-waivers=FILE]\n"
             "                     [--lock-graph] [--sarif=FILE] [--graph-cache=FILE]\n"
             "                     [--jobs=N]\n"
             "Pass 1 lints .h/.cc/.cpp files token-wise for determinism hazards.\n"
             "Pass 2 (--layers) enforces the architecture layer DAG on src/ includes.\n"
             "Pass 3 (--baseline) suppresses acknowledged findings; stale entries fail.\n"
             "Pass 4 (--symbols, implied by --taint-waivers) builds the cross-TU symbol\n"
             "index and call graph, then checks transitive determinism taint and\n"
             "WEBCC_GUARDED_BY lock discipline; --dead-symbols prints the advisory\n"
             "defined-but-never-called report to stdout (never affects exit status);\n"
             "--dead-waivers gates that census instead (unwaived dead symbols and\n"
             "stale waivers fail).\n"
             "Pass 5 (--flow, implied by --time-domains) builds per-function CFGs and\n"
             "checks flow-sensitive lock discipline, lock-order cycles,\n"
             "blocking-under-lock call chains, and wall/sim time-domain mixing;\n"
             "--lock-graph prints the acquisition-graph edges to stdout.\n"
             "Directories named tests/ are always skipped.\n"
             "--sarif additionally writes SARIF 2.1.0 JSON for CI annotation.\n"
             "Suppress one line with: // webcc-lint: allow(<rule>) <why>\n"
             "Suppress one rule file-wide with: // webcc-lint: allow-file(<rule>) <why>\n"
             "Waive sanctioned taint in the --taint-waivers file (one function per\n"
             "line, justification required; stale waivers fail). Same contract for\n"
             "--dead-waivers entries.\n";
      return 0;
    }
    if (arg == "--symbols") {
      options.run_symbols = true;
      continue;
    }
    if (arg == "--dead-symbols") {
      options.run_symbols = true;
      print_dead_symbols = true;
      continue;
    }
    if (arg == "--flow") {
      options.run_flow = true;
      continue;
    }
    if (arg == "--lock-graph") {
      options.run_flow = true;
      print_lock_graph = true;
      continue;
    }
    if (TakeFlagValue(arg, "--layers", &options.layers_file) ||
        TakeFlagValue(arg, "--baseline", &options.baseline_file) ||
        TakeFlagValue(arg, "--graph-cache", &options.graph_cache_file) ||
        TakeFlagValue(arg, "--taint-waivers", &options.taint_waivers_file) ||
        TakeFlagValue(arg, "--time-domains", &options.time_domains_file) ||
        TakeFlagValue(arg, "--dead-waivers", &options.dead_waivers_file) ||
        TakeFlagValue(arg, "--sarif", &sarif_path)) {
      continue;
    }
    if (TakeFlagValue(arg, "--jobs", &jobs_value)) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(jobs_value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n == 0 || n > 256) {
        std::cerr << "webcc-analyze: --jobs wants an integer in [1,256], got '"
                  << jobs_value << "'\n";
        return 2;
      }
      options.jobs = static_cast<size_t>(n);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "webcc-analyze: unknown flag '" << arg << "' (try --help)\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "webcc-analyze: no paths given (try: webcc-analyze src bench tools)\n";
    return 2;
  }

  std::vector<std::string> dead_symbols;
  std::vector<std::string> lock_graph_edges;
  const std::vector<webcc::analyze::Finding> findings = webcc::analyze::AnalyzePaths(
      roots, options, print_dead_symbols ? &dead_symbols : nullptr,
      print_lock_graph ? &lock_graph_edges : nullptr);

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::trunc);
    if (!out) {
      std::cerr << "webcc-analyze: cannot write SARIF to '" << sarif_path << "'\n";
      return 2;
    }
    out << webcc::analyze::RenderSarif(findings);
  }

  if (print_dead_symbols) {
    std::cout << "# dead symbols (defined but never referenced in the scan "
                 "unit; advisory)\n";
    for (const std::string& line : dead_symbols) {
      std::cout << line << "\n";
    }
    std::cout << "# " << dead_symbols.size() << " dead symbol(s)\n";
  }

  if (print_lock_graph) {
    std::cout << "# lock-acquisition graph (A -> B: B acquired while A held; "
                 "advisory)\n";
    for (const std::string& line : lock_graph_edges) {
      std::cout << line << "\n";
    }
    std::cout << "# " << lock_graph_edges.size() << " edge(s)\n";
  }

  webcc::analyze::PrintFindings(findings, std::cerr);
  if (!findings.empty()) {
    std::cerr << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
