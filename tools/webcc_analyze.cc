// CLI entry point for webcc-analyze, the multi-pass static analyzer.
// Exit status 0 = clean, 1 = findings, 2 = usage error.
//
//   webcc-analyze src bench --layers=tools/analyze/layers.txt
//       --baseline=tools/analyze/baseline.txt
//       --sarif=analyze.sarif                  # what CI and lint.analyze.tree run
//   webcc-analyze src/cache/foo.cc             # rules only, single file
//
// Without --layers the layer pass is skipped; without --baseline every
// finding is fatal. --graph-cache=FILE memoizes include extraction across
// runs (CI persists the file keyed on the tree hash).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/analyze/sarif.h"

namespace {

bool TakeFlagValue(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  webcc::analyze::AnalyzeOptions options;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: webcc-analyze <file-or-dir>... [--layers=FILE] [--baseline=FILE]\n"
             "                     [--sarif=FILE] [--graph-cache=FILE]\n"
             "Pass 1 lints .h/.cc/.cpp files token-wise for determinism hazards.\n"
             "Pass 2 (--layers) enforces the architecture layer DAG on src/ includes.\n"
             "Pass 3 (--baseline) suppresses acknowledged findings; stale entries fail.\n"
             "--sarif additionally writes SARIF 2.1.0 JSON for CI annotation.\n"
             "Suppress one line with: // webcc-lint: allow(<rule>) <why>\n"
             "Suppress one rule file-wide with: // webcc-lint: allow-file(<rule>) <why>\n";
      return 0;
    }
    if (TakeFlagValue(arg, "--layers", &options.layers_file) ||
        TakeFlagValue(arg, "--baseline", &options.baseline_file) ||
        TakeFlagValue(arg, "--graph-cache", &options.graph_cache_file) ||
        TakeFlagValue(arg, "--sarif", &sarif_path)) {
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "webcc-analyze: unknown flag '" << arg << "' (try --help)\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "webcc-analyze: no paths given (try: webcc-analyze src bench)\n";
    return 2;
  }

  const std::vector<webcc::analyze::Finding> findings =
      webcc::analyze::AnalyzePaths(roots, options);

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::trunc);
    if (!out) {
      std::cerr << "webcc-analyze: cannot write SARIF to '" << sarif_path << "'\n";
      return 2;
    }
    out << webcc::analyze::RenderSarif(findings);
  }

  webcc::analyze::PrintFindings(findings, std::cerr);
  if (!findings.empty()) {
    std::cerr << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
