// webcc-chaos: randomized fault-schedule campaigns under the consistency
// oracle, with automatic shrinking and replayable repro artifacts.
//
//   webcc-chaos --seeds 500 --jobs 8        run a campaign
//   webcc-chaos --replay=chaos-repros/seed-1-trial-7.repro
//
// Exit status: 0 when every trial passes (or a replayed repro no longer
// violates), 1 on any confirmed violation or unreadable repro file, 2 on
// malformed flags (one-line error, same contract as webcc-sim).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/chaos/campaign.h"
#include "src/cli/args.h"
#include "src/cli/driver.h"

namespace webcc {
namespace {

constexpr const char kUsage[] = R"(webcc-chaos: randomized chaos campaigns under the consistency oracle

Usage: webcc-chaos [flags]

Campaign:
  --seeds=N              trials to run (alias: --trials)     (default: 100)
  --seed=N               campaign seed; trial i derives from
                         (seed, i), so runs are reproducible  (default: 1)
  --jobs=N               shard trials over N threads; 0 = auto, i.e. the
                         WEBCC_JOBS env var or the hardware thread count.
                         Results are identical for any N       (default: 1)
  --repro-dir=PATH       where violation artifacts are written
                         (default: chaos-repros; empty = skip)
  --no-shrink            keep violating trials as generated
  --max-shrink-runs=N    simulation budget per shrink         (default: 60)

Topology pinning (default: the generator samples single, fleet, and
hierarchy trials; pinning runs the whole campaign in one topology):
  --fleet=N              every trial is a fleet of N members (N in [2, 4096])
  --hierarchy            every trial is the two-level tree

Forced per-link faults, appended to every trial's generated schedule
(comma-separated TARGET:VALUE; same grammar and validation as webcc-sim):
  --fleet-loss-rate=M:F --fleet-jitter=M:DUR --fleet-crash=M:DUR
                         member-targeted knobs (require --fleet=N)
  --tier-loss-rate=LINK:F --tier-jitter=LINK:DUR --tier-crash=LINK:DUR
                         tier-targeted knobs, LINK = l2|l1a|l1b
                         (require --hierarchy)

Replay:
  --replay=PATH          re-run one repro artifact under the oracle and
                         report whether the violation still reproduces

Other:
  --help                 this text
)";

int RunReplay(const std::string& path, std::ostream& out, std::ostream& err) {
  const ReplayOutcome outcome = ReplayRepro(path);
  if (!outcome.parsed) {
    err << "error: " << path << ": " << outcome.error << "\n";
    return 1;
  }
  out << "replaying " << path << "\n  " << outcome.description << "\n";
  if (!outcome.violation.has_value()) {
    out << "result: PASS (the trial no longer violates)\n";
    return 0;
  }
  out << "result: VIOLATION [" << outcome.violation->invariant << "] "
      << outcome.violation->message << "\n";
  return 1;
}

int Main(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  ArgParser args(argv);
  if (!args.ok()) {
    err << "error: " << args.error() << "\n";
    return 2;
  }
  if (args.GetBool("help")) {
    out << kUsage;
    return 0;
  }

  const std::string replay = args.GetString("replay", "");

  ChaosOptions options;
  options.trials = static_cast<uint64_t>(
      args.GetInt("seeds", args.GetInt("trials", static_cast<int64_t>(options.trials))));
  options.seed =
      static_cast<uint64_t>(args.GetInt("seed", static_cast<int64_t>(options.seed)));
  options.jobs = static_cast<size_t>(args.GetInt("jobs", 1));
  options.repro_dir = args.GetString("repro-dir", options.repro_dir);
  options.shrink = !args.GetBool("no-shrink");
  options.max_shrink_runs =
      static_cast<int>(args.GetInt("max-shrink-runs", options.max_shrink_runs));

  // --fleet/--hierarchy/--fleet-*/--tier-*: the validation (and its error
  // text) is shared with webcc-sim via ParseTopologyFaultFlags.
  FaultConfig forced;
  CliTopologySelection topo;
  if (!ParseTopologyFaultFlags(args, forced, topo, err)) {
    return 2;
  }
  switch (topo.mode) {
    case CliTopology::kSingle:
      break;  // no pin: the generator samples all three topologies
    case CliTopology::kFleet:
      options.topology = Topology::kFleet;
      options.fleet_size = topo.fleet_size;
      break;
    case CliTopology::kHierarchy:
      options.topology = Topology::kHierarchy;
      break;
  }
  options.link_overrides = std::move(forced.link_overrides);

  if (!args.ok()) {
    err << "error: " << args.error() << "\n";
    return 2;
  }
  const std::vector<std::string> unused = args.UnusedFlags();
  if (!unused.empty()) {
    err << "error: unknown flag(s):";
    for (const std::string& flag : unused) {
      err << " --" << flag;
    }
    err << "\nRun with --help for usage.\n";
    return 2;
  }

  if (!replay.empty()) {
    return RunReplay(replay, out, err);
  }

  const CampaignResult result = RunChaosCampaign(options);
  out << result.Summary();
  return result.ok() ? 0 : 1;
}

}  // namespace
}  // namespace webcc

int main(int argc, char** argv) {
  // Accept both "--seeds=500" and "--seeds 500": join a valueless --flag with
  // a following non-flag token before handing off to the strict parser.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && arg.find('=') == std::string::npos && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      arg += '=';
      arg += argv[++i];
    }
    args.push_back(std::move(arg));
  }
  return webcc::Main(args, std::cout, std::cerr);
}
