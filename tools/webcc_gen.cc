// Command-line entry point for the trace generator; logic lives in
// src/cli/gen_driver.cc so it can be tested in-process.

#include <iostream>
#include <string>
#include <vector>

#include "src/cli/gen_driver.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return webcc::RunGenDriver(args, std::cout, std::cerr);
}
