// CLI entry point for the determinism lint; see tools/lint/lint.h for the
// rule catalogue. Exit status 0 = clean, 1 = violations, 2 = usage error.
//
//   webcc-lint src bench          # what CI and the ctest gate run
//   webcc-lint src/cache/foo.cc   # single file while iterating

#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: webcc-lint <file-or-dir>...\n"
                   "Scans .h/.cc/.cpp files for webcc determinism hazards.\n"
                   "Suppress one line with: // webcc-lint: allow(<rule>) <why>\n"
                   "Suppress one rule file-wide with: // webcc-lint: allow-file(<rule>) <why>\n";
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "webcc-lint: no paths given (try: webcc-lint src bench)\n";
    return 2;
  }
  const std::vector<webcc::lint::Violation> violations = webcc::lint::LintPaths(roots);
  webcc::lint::PrintViolations(violations, std::cerr);
  if (!violations.empty()) {
    std::cerr << violations.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
