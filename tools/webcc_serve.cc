// Command-line entry point; all logic lives in src/cli/serve_driver.cc so
// it can be tested in-process.

#include <iostream>
#include <string>
#include <vector>

#include "src/cli/serve_driver.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return webcc::RunServeCliDriver(args, std::cout, std::cerr);
}
